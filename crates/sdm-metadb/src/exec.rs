//! Expression evaluation and statement execution.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::eval::{self, row_truthy, row_value, CompiledPlan, PlanCell, Program};
use crate::schema::{Column, Schema};
use crate::sql::ast::{AggFunc, BinOp, Expr, Join, OrderBy, SelExpr, SelectItem, Statement};
use crate::table::{Row, Table};
use crate::undo::{UndoLog, UndoRecord};
use crate::value::{IndexKey, OrdKey, Value};
use crate::wal::record::WalAppender;

/// Result of executing a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// SELECT result: projected column names + rows.
    Rows {
        /// Projected column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Row>,
    },
    /// Row count affected by INSERT/UPDATE/DELETE, or 0 for DDL.
    Affected(usize),
}

/// Per-connection execution counters; exposed by `Database::stats` so
/// tests and benches can observe parse reuse, index usage, and row
/// volumes per query shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DbStats {
    /// SELECTs answered by a full table (or join) scan.
    pub full_scans: u64,
    /// SELECTs answered through a secondary-index probe (point, range,
    /// or key-ordered stream).
    pub index_scans: u64,
    /// SELECT plans that probed an index with a full equality key
    /// (includes MIN/MAX first/last-key peeks).
    pub plan_point_probes: u64,
    /// SELECT plans that probed an ordered index with an equality
    /// prefix plus a range (or open prefix) on the next key column.
    pub plan_range_probes: u64,
    /// SELECT plans that streamed an ordered index in key order to
    /// satisfy ORDER BY (stopping at LIMIT) instead of sorting.
    pub plan_ordered_scans: u64,
    /// ORDER BY clauses that materialized rows and sorted them.
    pub order_sorts: u64,
    /// ORDER BY clauses satisfied by an ordered index's key order —
    /// the sort that never ran.
    pub sorts_avoided: u64,
    /// Statement preparations served from the parsed-plan cache.
    pub parse_hits: u64,
    /// Statement preparations that had to lex + parse the SQL text.
    pub parse_misses: u64,
    /// Source rows visited by SELECTs (index candidates for probes,
    /// whole tables for scans, both sides for joins).
    pub rows_scanned: u64,
    /// Rows returned by SELECTs after filtering/aggregation/limit.
    pub rows_returned: u64,
    /// Successfully committed `BEGIN`…`COMMIT` transactions. Batching
    /// layers (`CachedStore`) assert on this: a scoped timestep must
    /// land all its execution inserts in exactly one transaction.
    pub transactions: u64,
    /// Statements that entered the engine as SQL **text**
    /// (`Database::prepare` / `Database::exec`), whether or not the
    /// parse was served from the plan cache. Typed statements executed
    /// through `Database::exec_stmt` never move this counter — the
    /// bench asserts it stays flat on the warmed typed hot path.
    pub sql_texts: u64,
    /// Row images replayed by `ROLLBACK`s. Transactions log row-level
    /// undo records instead of snapshotting the catalog, so after a
    /// rollback this counter equals the rows the transaction *touched*
    /// — the bench asserts it is independent of table size.
    pub tx_rows_undone: u64,
    /// Expression programs lowered to instruction lists (cache misses
    /// only: a plan served from a statement's `PlanCell` recompiles
    /// nothing and moves no counter).
    pub exprs_compiled: u64,
    /// Statement executions that row-verified at least one expression by
    /// walking the AST (compilation failed or the statement handle has
    /// no plan cell). Counted once per execution, not per row — the
    /// bench asserts it stays 0 on the warmed hot path.
    pub ast_eval_fallbacks: u64,
    /// Index probes issued by index-nested-loop joins (one per
    /// non-NULL outer join key).
    pub join_index_probes: u64,
    /// Merge joins streamed off two ordered indexes in key order.
    pub join_merge_joins: u64,
    /// Joins that fell back to building a hash table over one side —
    /// the bench asserts this stays 0 on the indexed join workload.
    pub join_hash_builds: u64,
    /// Redo records appended to the write-ahead log (durable databases
    /// only; always 0 for in-memory ones).
    pub wal_appends: u64,
    /// WAL fsyncs issued — by group-commit leaders, so under concurrent
    /// commit load this grows slower than `transactions`.
    pub wal_fsyncs: u64,
    /// Commits made durable by *another* transaction's fsync: the group
    /// commit wins (each leader's flush counts its batch size minus
    /// one).
    pub group_commit_batched: u64,
    /// Checkpoints taken (snapshot installed + log truncated).
    pub checkpoints: u64,
}

impl DbStats {
    /// Accumulate `other` into `self` field-wise. Statement execution
    /// records into a local `DbStats` and merges once at the end, so
    /// concurrent readers never serialize on the shared stats mutex
    /// mid-query.
    pub fn merge(&mut self, other: &DbStats) {
        let DbStats {
            full_scans,
            index_scans,
            plan_point_probes,
            plan_range_probes,
            plan_ordered_scans,
            order_sorts,
            sorts_avoided,
            parse_hits,
            parse_misses,
            rows_scanned,
            rows_returned,
            transactions,
            sql_texts,
            tx_rows_undone,
            exprs_compiled,
            ast_eval_fallbacks,
            join_index_probes,
            join_merge_joins,
            join_hash_builds,
            wal_appends,
            wal_fsyncs,
            group_commit_batched,
            checkpoints,
        } = other;
        self.full_scans += full_scans;
        self.index_scans += index_scans;
        self.plan_point_probes += plan_point_probes;
        self.plan_range_probes += plan_range_probes;
        self.plan_ordered_scans += plan_ordered_scans;
        self.order_sorts += order_sorts;
        self.sorts_avoided += sorts_avoided;
        self.parse_hits += parse_hits;
        self.parse_misses += parse_misses;
        self.rows_scanned += rows_scanned;
        self.rows_returned += rows_returned;
        self.transactions += transactions;
        self.sql_texts += sql_texts;
        self.tx_rows_undone += tx_rows_undone;
        self.exprs_compiled += exprs_compiled;
        self.ast_eval_fallbacks += ast_eval_fallbacks;
        self.join_index_probes += join_index_probes;
        self.join_merge_joins += join_merge_joins;
        self.join_hash_builds += join_hash_builds;
        self.wal_appends += wal_appends;
        self.wal_fsyncs += wal_fsyncs;
        self.group_commit_batched += group_commit_batched;
        self.checkpoints += checkpoints;
    }
}

/// Column-name resolution context for expression evaluation.
///
/// `Schema` resolves plain names; relations built for joins resolve
/// qualified `table.column` names too.
pub trait Resolve {
    /// Index of `name` in a row, or an error naming the problem.
    fn col_index(&self, name: &str) -> DbResult<usize>;
}

impl Resolve for Schema {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
    }
}

/// A single table with its name: resolves both `col` and `table.col`.
struct TableRel<'a> {
    table: &'a str,
    schema: &'a Schema,
}

impl Resolve for TableRel<'_> {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        match name.split_once('.') {
            None => self.schema.index_of(name),
            Some((t, c)) if t.eq_ignore_ascii_case(self.table) => self.schema.index_of(c),
            Some(_) => Err(DbError::NoSuchColumn(name.to_string())),
        }
    }
}

/// The concatenated schema of an equi-join: qualified names plus
/// unambiguous plain names.
struct JoinRel {
    /// `(qualified, plain)` per combined column.
    cols: Vec<(String, String)>,
}

impl Resolve for JoinRel {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        if name.contains('.') {
            return self
                .cols
                .iter()
                .position(|(q, _)| q.eq_ignore_ascii_case(name))
                .ok_or_else(|| DbError::NoSuchColumn(name.to_string()));
        }
        let mut hits = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (_, p))| p.eq_ignore_ascii_case(name));
        match (hits.next(), hits.next()) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(DbError::NoSuchColumn(format!(
                "ambiguous column {name} (qualify it)"
            ))),
            _ => Err(DbError::NoSuchColumn(name.to_string())),
        }
    }
}

/// Output rows of an aggregate query: resolves projected output names.
struct NamedRel {
    names: Vec<String>,
}

impl Resolve for NamedRel {
    fn col_index(&self, name: &str) -> DbResult<usize> {
        self.names
            .iter()
            .position(|n| n.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::NoSuchColumn(format!("{name} (not an output column)")))
    }
}

/// Schema fingerprint of the tables a statement's compiled slots were
/// resolved against: table names plus column names, in order. Tables
/// only change shape by drop + recreate, so a matching fingerprint
/// means every cached slot still indexes the same column.
fn schema_fingerprint(parts: &[(&str, &Schema)]) -> u64 {
    eval::fingerprint(parts.iter().flat_map(|(name, schema)| {
        std::iter::once(*name).chain(schema.columns.iter().map(|c| c.name.as_str()))
    }))
}

/// Fetch the statement's [`CompiledPlan`] from its `PlanCell` (validated
/// by fingerprint), compiling and caching on miss. Executions without a
/// cell (raw `execute` calls) still compile — the programs pay for
/// themselves after a handful of rows — but cache nothing.
fn plan_for(
    cell: Option<&PlanCell>,
    fingerprint: u64,
    stats: &mut DbStats,
    build: impl FnOnce(&mut CompiledPlan),
) -> Arc<CompiledPlan> {
    if let Some(cell) = cell {
        if let Some(plan) = cell.lookup(fingerprint) {
            if plan.fallback {
                stats.ast_eval_fallbacks += 1;
            }
            return plan;
        }
    }
    let mut plan = CompiledPlan {
        fingerprint,
        ..CompiledPlan::default()
    };
    build(&mut plan);
    stats.exprs_compiled += u64::from(plan.compiled);
    if plan.fallback {
        stats.ast_eval_fallbacks += 1;
    }
    let plan = Arc::new(plan);
    if let Some(cell) = cell {
        cell.store(&plan);
    }
    plan
}

/// Compute one aggregate over the given column values.
fn aggregate(func: AggFunc, vals: &[&Value]) -> Value {
    match func {
        AggFunc::Count => Value::Int(vals.iter().filter(|v| !v.is_null()).count() as i64),
        AggFunc::Sum => {
            let mut int_sum = 0i64;
            let mut dbl_sum = 0.0f64;
            let mut any = false;
            let mut all_int = true;
            for v in vals.iter().filter(|v| !v.is_null()) {
                any = true;
                match v {
                    Value::Int(i) => {
                        int_sum = int_sum.wrapping_add(*i);
                        dbl_sum += *i as f64;
                    }
                    Value::Double(d) => {
                        all_int = false;
                        dbl_sum += d;
                    }
                    _ => all_int = false, // text sums to 0 contribution, MySQL-ish leniency
                }
            }
            match (any, all_int) {
                (false, _) => Value::Null,
                (true, true) => Value::Int(int_sum),
                (true, false) => Value::Double(dbl_sum),
            }
        }
        AggFunc::Avg => {
            let nums: Vec<f64> = vals.iter().filter_map(|v| v.as_f64()).collect();
            if nums.is_empty() {
                Value::Null
            } else {
                Value::Double(nums.iter().sum::<f64>() / nums.len() as f64)
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<&Value> = None;
            for v in vals.iter().filter(|v| !v.is_null()) {
                best = Some(match best {
                    None => v,
                    Some(b) => match v.sql_cmp(b) {
                        Some(Ordering::Less) if func == AggFunc::Min => v,
                        Some(Ordering::Greater) if func == AggFunc::Max => v,
                        _ => b,
                    },
                });
            }
            best.cloned().unwrap_or(Value::Null)
        }
    }
}

/// Per-column constraints harvested from the top-level AND conjuncts of
/// a WHERE clause: an equality pin and/or inclusive range bounds, each
/// known without a row (literal or parameter). Strict bounds (`<`, `>`)
/// are *widened* to inclusive — probes return candidate supersets and
/// every caller re-verifies against the real predicate, so the boundary
/// rows a widened range sweeps up are filtered back out.
struct ColBounds<'a> {
    /// Plain (unqualified) column name.
    col: &'a str,
    /// `col = v` pin.
    eq: Option<Value>,
    /// Inclusive lower bound (from `>` / `>=`).
    lo: Option<Value>,
    /// Inclusive upper bound (from `<` / `<=`).
    hi: Option<Value>,
}

impl ColBounds<'_> {
    /// Whether any constraint compares against NULL — such a conjunct
    /// is unknown for every row, so the whole AND-filter matches
    /// nothing.
    fn has_null(&self) -> bool {
        [&self.eq, &self.lo, &self.hi]
            .iter()
            .any(|v| v.as_ref().is_some_and(Value::is_null))
    }
}

/// Walk the top-level AND tree collecting per-column equality pins and
/// range bounds that resolve in `rel`. Multiple bounds on one column
/// merge to the tightest comparable pair; conflicting or incomparable
/// extras stay behind in the predicate, which callers re-verify anyway.
fn collect_bounds<'a>(
    filter: &'a Expr,
    params: &[Value],
    rel: &TableRel<'_>,
    out: &mut Vec<ColBounds<'a>>,
) {
    let const_of = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Lit(v) => Some(v.clone()),
            Expr::Param(i) => params.get(*i).cloned(),
            _ => None,
        }
    };
    match filter {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            collect_bounds(lhs, params, rel, out);
            collect_bounds(rhs, params, rel, out);
        }
        Expr::Binary { op, lhs, rhs }
            if matches!(
                op,
                BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            // Normalize to `col <op> const`, flipping the comparison
            // when the column sits on the right.
            let (col, val, op) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(c), e) => match const_of(e) {
                    Some(v) => (c.as_str(), v, *op),
                    None => return,
                },
                (e, Expr::Col(c)) => match const_of(e) {
                    Some(v) => {
                        let flipped = match op {
                            BinOp::Lt => BinOp::Gt,
                            BinOp::Le => BinOp::Ge,
                            BinOp::Gt => BinOp::Lt,
                            BinOp::Ge => BinOp::Le,
                            other => *other,
                        };
                        (c.as_str(), v, flipped)
                    }
                    None => return,
                },
                _ => return,
            };
            if rel.col_index(col).is_err() {
                return; // must resolve in this table
            }
            let plain = col.rsplit('.').next().unwrap_or(col);
            let b = match out.iter_mut().find(|b| b.col.eq_ignore_ascii_case(plain)) {
                Some(b) => b,
                None => {
                    out.push(ColBounds {
                        col: plain,
                        eq: None,
                        lo: None,
                        hi: None,
                    });
                    // analyze:allow(unwrap: the push on the preceding line guarantees a last element)
                    out.last_mut().expect("just pushed")
                }
            };
            // Tightest comparable bound wins; ties and incomparable
            // pairs keep the first seen (re-verification covers the
            // rest of the predicate).
            let tighter = |cur: &mut Option<Value>, v: Value, keep_greater: bool| match cur {
                None => *cur = Some(v),
                Some(c) => {
                    if let Some(o) = v.sql_cmp(c) {
                        if (o == Ordering::Greater) == keep_greater && o != Ordering::Equal {
                            *cur = Some(v);
                        }
                    }
                }
            };
            match op {
                BinOp::Eq => {
                    if b.eq.is_none() {
                        b.eq = Some(val);
                    }
                }
                BinOp::Gt | BinOp::Ge => tighter(&mut b.lo, val, true),
                BinOp::Lt | BinOp::Le => tighter(&mut b.hi, val, false),
                // analyze:allow(panic-under-guard: the enclosing arm matches only comparison ops)
                _ => unreachable!(),
            }
        }
        _ => {}
    }
}

/// Candidate row positions chosen by the planner: borrowed straight out
/// of an index bucket (point probes) or collected by a range walk.
/// Always ascending, i.e. scan order.
enum Candidates<'c> {
    Borrowed(&'c [usize]),
    Owned(Vec<usize>),
}

impl Candidates<'_> {
    fn as_slice(&self) -> &[usize] {
        match self {
            Candidates::Borrowed(s) => s,
            Candidates::Owned(v) => v,
        }
    }
}

/// How the chosen plan restricted the candidates, for `DbStats`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PlanKind {
    /// Full-key equality probe (hash bucket or ordered point lookup).
    Point,
    /// Equality-prefix + range (or open prefix) walk of an ordered
    /// index.
    Range,
}

/// The cost-based access-path choice for one table: `None` means full
/// scan.
///
/// The planner harvests per-column bounds from the WHERE conjuncts,
/// then costs every index against them using the table's statistics —
/// `Table::len` (row count) and `Table::index_distinct_keys`
/// (cardinality). Indexes are tried most-selective-first (fewest
/// estimated rows per key); point probes cost their exact bucket
/// length, and range walks count candidates as they collect, aborting
/// as soon as they exceed the best plan so far — or the full-scan cost,
/// so a range that would sweep the whole table loses to the scan that
/// avoids the extra bookkeeping. Candidates are a superset of the
/// matching rows; callers re-verify with the full predicate.
fn plan_candidates<'c>(
    t: &'c crate::table::Table,
    rel: &TableRel<'_>,
    filter: &Option<Expr>,
    params: &[Value],
) -> Option<(Candidates<'c>, PlanKind)> {
    let f = filter.as_ref()?;
    let mut bounds = Vec::new();
    collect_bounds(f, params, rel, &mut bounds);
    if bounds.is_empty() {
        return None;
    }
    if bounds.iter().any(ColBounds::has_null) {
        // A NULL comparison is unknown everywhere: nothing matches.
        return Some((Candidates::Borrowed(&[]), PlanKind::Point));
    }
    let rows = t.len();
    let mut order: Vec<usize> = (0..t.indexes().len()).collect();
    order.sort_by_key(|&i| rows / t.index_distinct_keys(i).max(1));
    let mut best: Option<(Candidates<'c>, PlanKind)> = None;
    for i in order {
        let def = &t.indexes()[i];
        let best_len = best
            .as_ref()
            .map_or(usize::MAX, |(c, _)| c.as_slice().len());
        // Longest equality-pinned prefix of this index's columns.
        let eq_vals: Vec<&Value> = def
            .columns
            .iter()
            .map_while(|c| {
                bounds
                    .iter()
                    .find(|b| b.col.eq_ignore_ascii_case(c))
                    .and_then(|b| b.eq.as_ref())
            })
            .collect();
        let k = eq_vals.len();
        if k == def.columns.len() {
            if let Some(hits) = t.probe_point(i, &eq_vals) {
                if hits.len() < best_len {
                    best = Some((Candidates::Borrowed(hits), PlanKind::Point));
                }
            }
            continue;
        }
        if !def.ordered {
            continue; // hash indexes answer full-key equality only
        }
        // Range (or open prefix) walk on the first unpinned column.
        let (lo, hi) = bounds
            .iter()
            .find(|b| b.col.eq_ignore_ascii_case(&def.columns[k]))
            .map_or((None, None), |b| (b.lo.as_ref(), b.hi.as_ref()));
        if k == 0 && lo.is_none() && hi.is_none() {
            continue; // unrestricted: that is just a scan
        }
        let abort_at = best_len.min(rows).saturating_sub(1);
        if let Some(hits) = t.probe_range(i, &eq_vals, lo, hi, abort_at) {
            best = Some((Candidates::Owned(hits), PlanKind::Range));
        }
    }
    best
}

/// Record the chosen plan in the SELECT counters and hand back the
/// candidate list (`None` = full scan).
fn note_plan<'c>(
    plan: &'c Option<(Candidates<'c>, PlanKind)>,
    stats: &mut DbStats,
) -> Option<&'c [usize]> {
    match plan {
        Some((c, kind)) => {
            stats.index_scans += 1;
            match kind {
                PlanKind::Point => stats.plan_point_probes += 1,
                PlanKind::Range => stats.plan_range_probes += 1,
            }
            Some(c.as_slice())
        }
        None => {
            stats.full_scans += 1;
            None
        }
    }
}

/// Decompose `filter` into pure `col = <const>` conjuncts. Returns
/// `None` when any conjunct is something else (a range, OR, IS NULL,
/// arithmetic, ...) — the peek fast path then does not apply.
fn pure_eq_conjuncts<'a>(
    filter: &'a Expr,
    params: &[Value],
    rel: &TableRel<'_>,
    out: &mut Vec<(&'a str, Value)>,
) -> Option<()> {
    match filter {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            pure_eq_conjuncts(lhs, params, rel, out)?;
            pure_eq_conjuncts(rhs, params, rel, out)
        }
        Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } => {
            let const_of = |e: &Expr| -> Option<Value> {
                match e {
                    Expr::Lit(v) => Some(v.clone()),
                    Expr::Param(i) => params.get(*i).cloned(),
                    _ => None,
                }
            };
            let (col, val) = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Col(c), e) => (c.as_str(), const_of(e)?),
                (e, Expr::Col(c)) => (c.as_str(), const_of(e)?),
                _ => return None,
            };
            if rel.col_index(col).is_err() {
                return None;
            }
            out.push((col.rsplit('.').next().unwrap_or(col), val));
            Some(())
        }
        _ => None,
    }
}

/// Try to answer every aggregate item by peeking at an ordered index
/// edge (MIN/MAX) or the table length (unfiltered COUNT(*)), without
/// visiting any rows. All-or-nothing: if any item can't be peeked the
/// whole query falls back to the streaming pass, so the recorded plan
/// stats describe the real access path.
///
/// A MIN(c)/MAX(c) peek needs an ordered index whose columns are
/// exactly the equality-pinned conjunct columns followed by `c` — the
/// pinned prefix covers *all but the last* key column, so every row
/// that is SQL-equal on `c` lands in one bucket and the bucket's first
/// entry is the row a scan would have reported.
fn peek_aggregates(
    t: &crate::table::Table,
    rel: &TableRel<'_>,
    params: &[Value],
    items: &[SelectItem],
    arg_idx: &[Option<usize>],
    filter: &Option<Expr>,
    stats: &mut DbStats,
) -> Option<Vec<Value>> {
    let mut conjuncts = Vec::new();
    if let Some(f) = filter {
        pure_eq_conjuncts(f, params, rel, &mut conjuncts)?;
    }
    if conjuncts.iter().any(|(_, v)| v.is_null()) {
        return None; // `col = NULL` matches nothing; let the scan say so
    }
    let rows = t.rows();
    let mut out = Vec::with_capacity(items.len());
    let mut peeks = 0u64;
    for (it, idx) in items.iter().zip(arg_idx) {
        let SelExpr::Agg { func, .. } = &it.expr else {
            unreachable!()
        };
        let v = match (func, idx) {
            (AggFunc::Count, None) if conjuncts.is_empty() => Value::Int(t.len() as i64),
            (AggFunc::Min | AggFunc::Max, Some(c)) => {
                let agg_col = &rel.schema.columns[*c].name;
                let (i, def) = t.indexes().iter().enumerate().find(|(_, d)| {
                    d.ordered
                        && d.columns.len() == conjuncts.len() + 1
                        && d.columns
                            .last()
                            .is_some_and(|l| l.eq_ignore_ascii_case(agg_col))
                        && d.columns[..conjuncts.len()]
                            .iter()
                            .all(|dc| conjuncts.iter().any(|(cc, _)| cc.eq_ignore_ascii_case(dc)))
                })?;
                let prefix: Vec<&Value> = def.columns[..conjuncts.len()]
                    .iter()
                    .map(|dc| {
                        conjuncts
                            .iter()
                            .find(|(cc, _)| cc.eq_ignore_ascii_case(dc))
                            .map(|(_, v)| v)
                            // analyze:allow(unwrap: the prefix-match loop above only admits defs whose leading columns all appear in conjuncts)
                            .expect("prefix columns matched above")
                    })
                    .collect();
                let pos = t.peek_edge(i, &prefix, matches!(func, AggFunc::Max))?;
                peeks += 1;
                pos.map_or(Value::Null, |p| rows[p][*c].clone())
            }
            _ => return None,
        };
        out.push(v);
    }
    // All items peeked — only now touch the counters (a mixed item list
    // falls through to the streaming pass with clean stats).
    stats.index_scans += peeks;
    stats.plan_point_probes += peeks;
    stats.rows_scanned += peeks;
    Some(out)
}

/// `SELECT <aggregates only> FROM t [WHERE ...]`: one streaming pass over
/// borrowed rows (index-probed when possible). This is the `next_runid`
/// fast path — `SELECT MAX(runid)` touches each candidate row once and
/// clones nothing; when an ordered index covers the aggregate it touches
/// **no** rows and peeks the index edge instead.
#[allow(clippy::too_many_arguments)]
fn exec_simple_aggregates(
    catalog: &Catalog,
    params: &[Value],
    stats: &mut DbStats,
    items: &[SelectItem],
    table: &str,
    filter: &Option<Expr>,
    limit: Option<usize>,
    cell: Option<&PlanCell>,
) -> DbResult<Outcome> {
    let t = catalog.get(table)?;
    let rel = TableRel {
        table,
        schema: &t.schema,
    };
    let arg_idx: Vec<Option<usize>> = items
        .iter()
        .map(|it| match &it.expr {
            SelExpr::Agg { arg: Some(c), .. } => rel.col_index(c).map(Some),
            SelExpr::Agg { arg: None, .. } => Ok(None),
            SelExpr::Col(_) => unreachable!("caller checked all items are aggregates"),
        })
        .collect::<DbResult<_>>()?;
    if let Some(out) = peek_aggregates(t, &rel, params, items, &arg_idx, filter, stats) {
        let names = items.iter().map(SelectItem::output_name).collect();
        let mut rows_out = vec![out];
        if let Some(l) = limit {
            rows_out.truncate(l);
        }
        stats.rows_returned += rows_out.len() as u64;
        return Ok(Outcome::Rows {
            columns: names,
            rows: rows_out,
        });
    }
    // Compile only once the edge peek has passed: a peek-served
    // aggregate never row-verifies, so it needs no programs.
    let compiled = plan_for(
        cell,
        schema_fingerprint(&[(table, &t.schema)]),
        stats,
        |p| {
            p.filter = p.lower(filter.as_ref(), &rel);
        },
    );
    let plan = plan_candidates(t, &rel, filter, params);
    let candidates = note_plan(&plan, stats);
    let rows = t.rows();
    let visited: Vec<&Row> = match candidates {
        Some(pos) => pos.iter().map(|&p| &rows[p]).collect(),
        None => rows.iter().collect(),
    };
    stats.rows_scanned += visited.len() as u64;
    let prog = compiled.filter.as_ref();
    let mut matching: Vec<&Row> = Vec::with_capacity(visited.len());
    for row in visited {
        if let Some(f) = filter {
            if row_truthy(prog, f, &rel, row, params)? != Some(true) {
                continue;
            }
        }
        matching.push(row);
    }
    let mut out = Vec::with_capacity(items.len());
    for (it, idx) in items.iter().zip(&arg_idx) {
        let SelExpr::Agg { func, .. } = &it.expr else {
            unreachable!()
        };
        let v = match idx {
            None => Value::Int(matching.len() as i64), // COUNT(*)
            Some(i) => {
                let vals: Vec<&Value> = matching.iter().map(|r| &r[*i]).collect();
                aggregate(*func, &vals)
            }
        };
        out.push(v);
    }
    let names = items.iter().map(SelectItem::output_name).collect();
    let mut rows_out = vec![out];
    if let Some(l) = limit {
        rows_out.truncate(l);
    }
    stats.rows_returned += rows_out.len() as u64;
    Ok(Outcome::Rows {
        columns: names,
        rows: rows_out,
    })
}

/// Execute a parsed statement against the catalog.
///
/// Convenience wrapper around [`execute_with_stats`] discarding the
/// scan counters.
// analyze:allow(undo-coverage: deliberately transaction-free entry point; the Database handle owns undo threading)
pub fn execute(catalog: &mut Catalog, stmt: &Statement, params: &[Value]) -> DbResult<Outcome> {
    let mut stats = DbStats::default();
    execute_with_stats(catalog, stmt, params, &mut stats)
}

/// Execute a parsed statement, recording scan strategy in `stats`.
///
/// `BEGIN`/`COMMIT`/`ROLLBACK` are connection-level and rejected here;
/// the `Database` handle intercepts them before reaching the executor.
/// No transaction is in scope, so mutations log no undo.
// analyze:allow(undo-coverage: deliberately transaction-free entry point; the Database handle owns undo threading)
pub fn execute_with_stats(
    catalog: &mut Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
) -> DbResult<Outcome> {
    if let Statement::Select { .. } = stmt {
        return execute_read(catalog, stmt, params, stats, None);
    }
    execute_mutation(catalog, stmt, params, stats, None, None, None)
}

/// Execute a read-only statement against a **shared** catalog borrow.
///
/// This is the path the `Database` drives under `catalog.read()`:
/// SELECTs — index probes included, since the maps are maintained
/// incrementally rather than rebuilt on first probe — never need `&mut`,
/// so concurrent readers proceed in parallel.
///
/// `cell` is the statement handle's compiled-plan cache; `None` (ad-hoc
/// execution) still compiles the statement's expressions, it just
/// cannot reuse them across executions.
pub fn execute_read(
    catalog: &Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
    cell: Option<&PlanCell>,
) -> DbResult<Outcome> {
    match stmt {
        Statement::Select {
            distinct,
            items,
            table,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        } => exec_select(
            catalog, params, stats, *distinct, items, table, join, filter, group_by, having,
            order_by, *limit, cell,
        ),
        _ => Err(DbError::Tx(
            "execute_read only accepts SELECT statements".into(),
        )),
    }
}

/// Execute a mutating statement, appending row-level records to `undo`
/// when the owning transaction's log is supplied. Undo images are
/// captured by move (displaced rows, dropped tables) — a transaction
/// touching k rows logs O(k) work regardless of table size.
///
/// `wal` is the durable twin: when supplied, each mutation encodes its
/// redo record (post-images, mirroring the undo pre-images) into the
/// appender **before** it applies, and only for mutations that will
/// actually apply — every site pre-validates so the log never carries a
/// record whose mutation then failed. The `Database` hands the filled
/// buffer to the shared log under the transaction guard.
pub(crate) fn execute_mutation(
    catalog: &mut Catalog,
    stmt: &Statement,
    params: &[Value],
    stats: &mut DbStats,
    undo: Option<&mut UndoLog>,
    wal: Option<&mut WalAppender>,
    cell: Option<&PlanCell>,
) -> DbResult<Outcome> {
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|(n, t)| Column {
                        name: n.clone(),
                        ctype: *t,
                    })
                    .collect(),
            )?;
            // Redo before apply: log only when the create will happen
            // (an existing table either errors or is a no-op).
            if !catalog.contains(name) {
                if let Some(wal) = wal {
                    wal.create_table(name, &schema);
                }
            }
            let created = catalog.create_table(name, schema, *if_not_exists)?;
            if created {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::CreateTable { name: name.clone() });
                }
            }
            Ok(Outcome::Affected(0))
        }
        Statement::DropTable { name } => {
            if catalog.contains(name) {
                if let Some(wal) = wal {
                    wal.drop_table(name);
                }
            }
            let dropped = catalog.remove_table(name)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::DropTable {
                    name: name.clone(),
                    table: Box::new(dropped),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
            ordered,
        } => {
            let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
            let t = catalog.get_mut(table)?;
            // Pre-validate (mirroring `Table::create_index`) so the
            // redo record is only logged for a create that will apply;
            // invalid requests fall through to the canonical error.
            let will_create = !columns.is_empty()
                && columns.iter().all(|c| t.schema.index_of(c).is_ok())
                && (*ordered || columns.len() == 1)
                && !t
                    .indexes()
                    .iter()
                    .any(|i| i.name.eq_ignore_ascii_case(name));
            if will_create {
                if let Some(wal) = wal {
                    wal.create_index(table, name, columns, *ordered);
                }
            }
            t.create_index(name, &cols, *ordered)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::CreateIndex {
                    table: table.clone(),
                    index: name.clone(),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::DropIndex { name, table } => {
            let t = catalog.get_mut(table)?;
            let def = t
                .indexes()
                .iter()
                .find(|i| i.name.eq_ignore_ascii_case(name))
                .cloned();
            if def.is_some() {
                if let Some(wal) = wal {
                    wal.drop_index(table, name);
                }
            }
            t.drop_index(name)?;
            if let Some(undo) = undo {
                undo.push(UndoRecord::DropIndex {
                    table: table.clone(),
                    // analyze:allow(unwrap: drop_index validated an index of this name exists, and def was captured under the same name)
                    def: def.expect("drop_index succeeded, so the def existed"),
                });
            }
            Ok(Outcome::Affected(0))
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            let empty_schema = Schema::new(vec![])?;
            let empty_row: Row = vec![];
            // Evaluate expressions first (no column refs allowed in
            // VALUES — any `Expr::Col` fails compilation, and the AST
            // fallback raises the same per-row error as before).
            let t = catalog.get(table)?;
            let schema = &t.schema;
            let plan = plan_for(cell, schema_fingerprint(&[(table, schema)]), stats, |p| {
                let values: Vec<Vec<Option<Program>>> = rows
                    .iter()
                    .map(|exprs| {
                        exprs
                            .iter()
                            .map(|e| p.lower(Some(e), &empty_schema))
                            .collect()
                    })
                    .collect();
                p.values = values;
            });
            let mut prepared: Vec<Row> = Vec::with_capacity(rows.len());
            for (ri, row_exprs) in rows.iter().enumerate() {
                let progs = plan.values.get(ri);
                let vals: Vec<Value> = row_exprs
                    .iter()
                    .enumerate()
                    .map(|(ei, e)| {
                        let prog = progs.and_then(|ps| ps.get(ei)).and_then(Option::as_ref);
                        row_value(prog, e, &empty_schema, &empty_row, params)
                    })
                    .collect::<DbResult<_>>()?;
                let full = match columns {
                    None => vals,
                    Some(cols) => {
                        if cols.len() != vals.len() {
                            return Err(DbError::Arity(format!(
                                "{} columns but {} values",
                                cols.len(),
                                vals.len()
                            )));
                        }
                        let mut full = vec![Value::Null; schema.arity()];
                        for (c, v) in cols.iter().zip(vals) {
                            full[schema.index_of(c)?] = v;
                        }
                        full
                    }
                };
                prepared.push(full);
            }
            let t = catalog.get_mut(table)?;
            let n = prepared.len();
            // Validate + coerce up front, stopping at the first bad row
            // — exactly the prefix the one-at-a-time insert loop used
            // to land — so the redo record can be written before any
            // row applies and still cover only rows that will apply.
            let mut checked: Vec<Row> = Vec::with_capacity(n);
            let mut first_err = None;
            for row in prepared {
                match t.schema.check_row(row) {
                    Ok(row) => checked.push(row),
                    Err(e) => {
                        first_err = Some(e);
                        break;
                    }
                }
            }
            let appended = checked.len();
            if appended > 0 {
                if let Some(wal) = wal {
                    wal.append_rows(table, &checked);
                }
            }
            for row in checked {
                t.insert(row)?;
            }
            // Log however many rows landed, even on a mid-batch type
            // error, so a rollback removes exactly them.
            if appended > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Append {
                        table: table.clone(),
                        n: appended,
                    });
                }
            }
            match first_err {
                Some(e) => Err(e),
                None => Ok(Outcome::Affected(n)),
            }
        }
        Statement::Update {
            table,
            sets,
            filter,
        } => {
            // Phase 1 (shared borrow): pick the touched rows — through
            // an index probe when an equality conjunct allows — and
            // build the validated replacement rows.
            let t = catalog.get(table)?;
            let rel = TableRel {
                table,
                schema: &t.schema,
            };
            let schema = &t.schema;
            let set_idx: Vec<(usize, &Expr)> = sets
                .iter()
                .map(|(c, e)| Ok((schema.index_of(c)?, e)))
                .collect::<DbResult<_>>()?;
            // UPDATE expressions resolve against the plain schema (no
            // qualified names), so the programs compile the same way.
            let compiled = plan_for(cell, schema_fingerprint(&[(table, schema)]), stats, |p| {
                p.filter = p.lower(filter.as_ref(), schema);
                let sets: Vec<Option<Program>> = set_idx
                    .iter()
                    .map(|&(_, e)| p.lower(Some(e), schema))
                    .collect();
                p.sets = sets;
            });
            let plan = plan_candidates(t, &rel, filter, params);
            let candidates = plan.as_ref().map(|(c, _)| c.as_slice());
            let rows = t.rows();
            let mut updates: Vec<(usize, Row)> = Vec::new();
            let mut visit = |pos: usize, row: &Row| -> DbResult<()> {
                if let Some(f) = filter {
                    if row_truthy(compiled.filter.as_ref(), f, schema, row, params)? != Some(true) {
                        return Ok(());
                    }
                }
                // Evaluate against the pre-update row (snapshot
                // semantics: `SET a = b, b = a` swaps).
                let mut new_row = row.clone();
                for (k, &(i, e)) in set_idx.iter().enumerate() {
                    let prog = compiled.sets.get(k).and_then(Option::as_ref);
                    let v = row_value(prog, e, schema, row, params)?;
                    let col = &schema.columns[i];
                    if !col.ctype.admits(&v) {
                        return Err(DbError::Type(format!(
                            "column {} cannot store {}",
                            col.name,
                            v.type_name()
                        )));
                    }
                    new_row[i] = col.ctype.coerce(v);
                }
                updates.push((pos, new_row));
                Ok(())
            };
            match candidates {
                Some(pos) => {
                    for &p in pos {
                        visit(p, &rows[p])?;
                    }
                }
                None => {
                    for (p, row) in rows.iter().enumerate() {
                        visit(p, row)?;
                    }
                }
            }
            // Phase 2 (exclusive borrow): swap the new rows in; the
            // displaced originals are the undo images, the replacements
            // (already validated + coerced) are the redo images.
            let n = updates.len();
            if n > 0 {
                if let Some(wal) = wal {
                    wal.update_rows(table, &updates);
                }
            }
            let old = catalog.get_mut(table)?.apply_updates(updates);
            if n > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Update {
                        table: table.clone(),
                        old,
                    });
                }
            }
            Ok(Outcome::Affected(n))
        }
        Statement::Delete { table, filter } => {
            let Some(f) = filter else {
                // No WHERE: take every row in one sweep (the undo
                // record restores them at their enumerated positions).
                let t = catalog.get_mut(table)?;
                if !t.rows().is_empty() {
                    if let Some(wal) = wal {
                        wal.clear_table(table);
                    }
                }
                let removed = t.clear();
                let n = removed.len();
                if n > 0 {
                    if let Some(undo) = undo {
                        undo.push(UndoRecord::Delete {
                            table: table.clone(),
                            removed: removed.into_iter().enumerate().collect(),
                        });
                    }
                }
                return Ok(Outcome::Affected(n));
            };
            let t = catalog.get(table)?;
            let rel = TableRel {
                table,
                schema: &t.schema,
            };
            let schema = &t.schema;
            let compiled = plan_for(cell, schema_fingerprint(&[(table, schema)]), stats, |p| {
                p.filter = p.lower(Some(f), schema);
            });
            let plan = plan_candidates(t, &rel, filter, params);
            let candidates = plan.as_ref().map(|(c, _)| c.as_slice());
            let rows = t.rows();
            let hit = |p: usize| -> DbResult<Option<usize>> {
                let prog = compiled.filter.as_ref();
                Ok((row_truthy(prog, f, schema, &rows[p], params)? == Some(true)).then_some(p))
            };
            let positions: Vec<usize> = match candidates {
                Some(pos) => pos
                    .iter()
                    .filter_map(|&p| hit(p).transpose())
                    .collect::<DbResult<_>>()?,
                None => (0..rows.len())
                    .filter_map(|p| hit(p).transpose())
                    .collect::<DbResult<_>>()?,
            };
            if !positions.is_empty() {
                if let Some(wal) = wal {
                    wal.delete_rows(table, &positions);
                }
            }
            let removed = catalog.get_mut(table)?.delete_at(&positions);
            let n = removed.len();
            if n > 0 {
                if let Some(undo) = undo {
                    undo.push(UndoRecord::Delete {
                        table: table.clone(),
                        removed: positions.into_iter().zip(removed).collect(),
                    });
                }
            }
            Ok(Outcome::Affected(n))
        }
        // analyze:allow(panic-under-guard: run_statement routes SELECT to execute_read first)
        Statement::Select { .. } => unreachable!("dispatched to execute_read"),
        Statement::Begin | Statement::Commit | Statement::Rollback => Err(DbError::Tx(
            "transactions are managed by the Database connection, not the executor".into(),
        )),
    }
}

/// The SELECT pipeline: source (scan / index probe / join) → WHERE →
/// [GROUP BY + aggregates + HAVING] → ORDER BY → projection → DISTINCT
/// → LIMIT.
#[allow(clippy::too_many_arguments)]
fn exec_select(
    catalog: &Catalog,
    params: &[Value],
    stats: &mut DbStats,
    distinct: bool,
    items: &Option<Vec<SelectItem>>,
    table: &str,
    join: &Option<Join>,
    filter: &Option<Expr>,
    group_by: &[String],
    having: &Option<Expr>,
    order_by: &[OrderBy],
    limit: Option<usize>,
    cell: Option<&PlanCell>,
) -> DbResult<Outcome> {
    // ---- Streaming aggregate fast path ----
    // Plain aggregates over one table (`SELECT MAX(runid) FROM
    // run_table`, the COUNTs of report queries) accumulate over borrowed
    // rows in a single pass: no row clones, no sort, no group machinery.
    if join.is_none() && !distinct && group_by.is_empty() && having.is_none() && order_by.is_empty()
    {
        if let Some(items) = items {
            if !items.is_empty()
                && items
                    .iter()
                    .all(|it| matches!(it.expr, SelExpr::Agg { .. }))
            {
                return exec_simple_aggregates(
                    catalog, params, stats, items, table, filter, limit, cell,
                );
            }
        }
    }

    // ---- Source relation ----
    // Set when an ordered index already delivered the rows in ORDER BY
    // order (and honored LIMIT): the sort below is skipped.
    let mut ordered_by_index = false;
    type Source = (Vec<(String, String)>, Vec<Row>, Arc<CompiledPlan>);
    let (rel_cols, mut rows, compiled): Source = match join {
        None => {
            let t = catalog.get(table)?;
            let schema = &t.schema;
            let rel = TableRel { table, schema };
            let compiled = plan_for(cell, schema_fingerprint(&[(table, schema)]), stats, |p| {
                p.filter = p.lower(filter.as_ref(), &rel);
                lower_having(p, having, items);
            });
            let plan = plan_candidates(t, &rel, filter, params);
            let has_agg_items = items
                .as_ref()
                .is_some_and(|is| is.iter().any(|i| matches!(i.expr, SelExpr::Agg { .. })));
            // Index-backed ORDER BY: stream rows straight out of an
            // ordered index when one delivers the requested order, and
            // either a LIMIT makes early exit pay or no probe plan
            // beats walking keys in order anyway.
            let streamed = if !distinct
                && group_by.is_empty()
                && !has_agg_items
                && !order_by.is_empty()
                && order_by.iter().all(|o| o.desc == order_by[0].desc)
                && (limit.is_some() || plan.is_none())
            {
                let prog = compiled.filter.as_ref();
                stream_ordered_rows(t, &rel, filter, prog, params, order_by, limit, stats)?
            } else {
                None
            };
            let out = match streamed {
                Some(out) => {
                    ordered_by_index = true;
                    out
                }
                None => {
                    let candidates = note_plan(&plan, stats);
                    let mut out = Vec::new();
                    let prog = compiled.filter.as_ref();
                    match candidates {
                        Some(pos) => {
                            stats.rows_scanned += pos.len() as u64;
                            for &p in pos {
                                let row = &t.rows()[p];
                                if let Some(f) = filter {
                                    if row_truthy(prog, f, &rel, row, params)? != Some(true) {
                                        continue;
                                    }
                                }
                                out.push(row.clone());
                            }
                        }
                        None => {
                            stats.rows_scanned += t.len() as u64;
                            for row in t.rows() {
                                if let Some(f) = filter {
                                    if row_truthy(prog, f, &rel, row, params)? != Some(true) {
                                        continue;
                                    }
                                }
                                out.push(row.clone());
                            }
                        }
                    }
                    out
                }
            };
            let cols = schema
                .columns
                .iter()
                .map(|c| (format!("{table}.{}", c.name), c.name.clone()))
                .collect();
            (cols, out, compiled)
        }
        Some(j) => {
            let left = catalog.get(table)?;
            let right = catalog.get(&j.table)?;
            stats.rows_scanned += (left.len() + right.len()) as u64;
            let lschema = &left.schema;
            let rschema = &right.schema;
            let cols: Vec<(String, String)> = lschema
                .columns
                .iter()
                .map(|c| (format!("{table}.{}", c.name), c.name.clone()))
                .chain(
                    rschema
                        .columns
                        .iter()
                        .map(|c| (format!("{}.{}", j.table, c.name), c.name.clone())),
                )
                .collect();
            let rel = JoinRel { cols: cols.clone() };
            // Resolve the ON columns against each side.
            let lrel = TableRel {
                table,
                schema: lschema,
            };
            let rrel = TableRel {
                table: &j.table,
                schema: rschema,
            };
            let (lcol, rcol) = match (lrel.col_index(&j.on_left), rrel.col_index(&j.on_right)) {
                (Ok(a), Ok(b)) => (a, b),
                // Allow the ON sides in either order.
                _ => match (lrel.col_index(&j.on_right), rrel.col_index(&j.on_left)) {
                    (Ok(a), Ok(b)) => (a, b),
                    _ => {
                        return Err(DbError::NoSuchColumn(format!(
                            "ON {} = {} does not name one column from each side",
                            j.on_left, j.on_right
                        )))
                    }
                },
            };
            let compiled = plan_for(
                cell,
                schema_fingerprint(&[(table, lschema), (&j.table, rschema)]),
                stats,
                |p| {
                    p.filter = p.lower(filter.as_ref(), &rel);
                    lower_having(p, having, items);
                },
            );
            // Candidate pairs by the cheapest strategy the indexes
            // allow, canonicalized to (left, right) position order —
            // the order the original hash join emitted — so the
            // strategy choice is invisible in the result.
            let mut pairs = join_pairs(left, right, lcol, rcol, stats);
            pairs.sort_unstable();
            let prog = compiled.filter.as_ref();
            let mut out = Vec::with_capacity(pairs.len());
            for (lp, rp) in pairs {
                let l = &left.rows()[lp];
                let r = &right.rows()[rp];
                // Re-verify under SQL equality: every strategy's
                // candidates group by canonicalized keys (hash buckets,
                // ordered-key runs), which collide across numeric types
                // after rounding and group NaNs that are never equal.
                if l[lcol].sql_eq(&r[rcol]) != Some(true) {
                    continue;
                }
                let mut combined = l.clone();
                combined.extend(r.iter().cloned());
                if let Some(f) = filter {
                    if row_truthy(prog, f, &rel, &combined, params)? != Some(true) {
                        continue;
                    }
                }
                out.push(combined);
            }
            (cols, out, compiled)
        }
    };
    let rel = JoinRel {
        cols: rel_cols.clone(),
    };

    // ---- Aggregate path ----
    let has_agg = items
        .as_ref()
        .map(|is| is.iter().any(|i| matches!(i.expr, SelExpr::Agg { .. })))
        .unwrap_or(false);
    if has_agg || !group_by.is_empty() {
        let items = items.as_ref().ok_or_else(|| {
            DbError::Parse("SELECT * cannot be combined with GROUP BY / aggregates".into())
        })?;
        // Validate: plain columns must be grouping columns.
        for it in items {
            if let SelExpr::Col(c) = &it.expr {
                if !group_by.iter().any(|g| g.eq_ignore_ascii_case(c)) {
                    return Err(DbError::Parse(format!(
                        "column {c} must appear in GROUP BY or inside an aggregate"
                    )));
                }
            }
        }
        let gidx: Vec<usize> = group_by
            .iter()
            .map(|g| rel.col_index(g))
            .collect::<DbResult<_>>()?;
        // Group rows by typed key vectors, preserving first-seen order.
        let mut order: Vec<Vec<IndexKey<'static>>> = Vec::new();
        let mut groups: HashMap<Vec<IndexKey<'static>>, Vec<Row>> = HashMap::new();
        if gidx.is_empty() {
            order.push(Vec::new());
            groups.insert(Vec::new(), std::mem::take(&mut rows));
        } else {
            for row in rows.drain(..) {
                let key: Vec<IndexKey<'static>> = gidx
                    .iter()
                    .map(|&i| row[i].index_key().into_owned())
                    .collect();
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(row);
            }
        }
        let names: Vec<String> = items.iter().map(SelectItem::output_name).collect();
        let mut out_rows: Vec<Row> = Vec::with_capacity(order.len());
        for key in &order {
            let grp = &groups[key];
            let mut out = Vec::with_capacity(items.len());
            for it in items {
                match &it.expr {
                    SelExpr::Col(c) => {
                        let i = rel.col_index(c)?;
                        out.push(grp.first().map(|r| r[i].clone()).unwrap_or(Value::Null));
                    }
                    SelExpr::Agg { func, arg } => {
                        let v = match arg {
                            None => Value::Int(grp.len() as i64), // COUNT(*)
                            Some(c) => {
                                let i = rel.col_index(c)?;
                                let vals: Vec<&Value> = grp.iter().map(|r| &r[i]).collect();
                                aggregate(*func, &vals)
                            }
                        };
                        out.push(v);
                    }
                }
            }
            out_rows.push(out);
        }
        let out_rel = NamedRel {
            names: names.clone(),
        };
        if let Some(h) = having {
            let prog = compiled.having.as_ref();
            let mut kept = Vec::with_capacity(out_rows.len());
            for r in out_rows {
                if row_truthy(prog, h, &out_rel, &r, params)? == Some(true) {
                    kept.push(r);
                }
            }
            out_rows = kept;
        }
        let top_k = if distinct { None } else { limit };
        sort_rows(&mut out_rows, order_by, &out_rel, top_k, stats)?;
        finish(names, out_rows, distinct, limit, stats)
    } else {
        // ---- Plain path: sort on the source relation, then project ----
        if !ordered_by_index {
            let top_k = if distinct { None } else { limit };
            sort_rows(&mut rows, order_by, &rel, top_k, stats)?;
        }
        let (names, rows) = match items {
            None => {
                // `*`: plain names for single tables, qualified for joins.
                let names = if join.is_none() {
                    rel_cols.iter().map(|(_, p)| p.clone()).collect()
                } else {
                    rel_cols.iter().map(|(q, _)| q.clone()).collect()
                };
                (names, rows)
            }
            Some(items) => {
                let idx: Vec<usize> = items
                    .iter()
                    .map(|it| match &it.expr {
                        SelExpr::Col(c) => rel.col_index(c),
                        SelExpr::Agg { .. } => unreachable!("aggregate handled above"),
                    })
                    .collect::<DbResult<_>>()?;
                let names = items.iter().map(SelectItem::output_name).collect();
                let rows = rows
                    .into_iter()
                    .map(|r| idx.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                (names, rows)
            }
        };
        finish(names, rows, distinct, limit, stats)
    }
}

/// Lower a HAVING clause against the aggregate output columns. HAVING
/// without explicit items (`SELECT *`) is a statement error before any
/// row is evaluated, so it compiles nothing.
fn lower_having(p: &mut CompiledPlan, having: &Option<Expr>, items: &Option<Vec<SelectItem>>) {
    if let (Some(h), Some(items)) = (having, items) {
        let out_rel = NamedRel {
            names: items.iter().map(SelectItem::output_name).collect(),
        };
        p.having = p.lower(Some(h), &out_rel);
    }
}

/// Candidate row pairs of an eq-join, picked by index availability:
///
/// 1. **merge join** when both sides have an ordered index *led* by
///    their join column — stream both key orders once, cross-producting
///    runs of equal keys;
/// 2. **index-nested-loop** probing the right side's index per left row
///    (or, failing that, the left side's per right row);
/// 3. the **hash build** over the right side as the last resort.
///
/// Every strategy yields a superset of the SQL-equal pairs (keys are
/// canonicalized, so numeric types collide after rounding and NaNs
/// group); the caller re-verifies each pair under `sql_eq` and sorts
/// into (left, right) position order, making the choice invisible in
/// the result.
fn join_pairs(
    left: &Table,
    right: &Table,
    lcol: usize,
    rcol: usize,
    stats: &mut DbStats,
) -> Vec<(usize, usize)> {
    let lix = left.join_index(&left.schema.columns[lcol].name);
    let rix = right.join_index(&right.schema.columns[rcol].name);
    if let (Some((li, true)), Some((ri, true))) = (lix, rix) {
        if let (Some(lg), Some(rg)) = (left.ordered_groups(li), right.ordered_groups(ri)) {
            stats.index_scans += 1;
            stats.join_merge_joins += 1;
            return merge_pairs(lg, rg);
        }
    }
    let mut pairs = Vec::new();
    let mut buf = Vec::new();
    if let Some((ri, _)) = rix {
        stats.index_scans += 1;
        for (lp, l) in left.rows().iter().enumerate() {
            if l[lcol].is_null() {
                continue;
            }
            stats.join_index_probes += 1;
            right.probe_leading(ri, &l[lcol], &mut buf);
            pairs.extend(buf.iter().map(|&rp| (lp, rp)));
        }
        return pairs;
    }
    if let Some((li, _)) = lix {
        stats.index_scans += 1;
        for (rp, r) in right.rows().iter().enumerate() {
            if r[rcol].is_null() {
                continue;
            }
            stats.join_index_probes += 1;
            left.probe_leading(li, &r[rcol], &mut buf);
            pairs.extend(buf.iter().map(|&lp| (lp, rp)));
        }
        return pairs;
    }
    // Hash join over borrowed typed keys — no string formatted per row.
    stats.full_scans += 1;
    stats.join_hash_builds += 1;
    let mut rmap: HashMap<IndexKey<'_>, Vec<usize>> = HashMap::new();
    for (i, r) in right.rows().iter().enumerate() {
        if !r[rcol].is_null() {
            rmap.entry(r[rcol].index_key()).or_default().push(i);
        }
    }
    for (lp, l) in left.rows().iter().enumerate() {
        if l[lcol].is_null() {
            continue;
        }
        if let Some(ris) = rmap.get(&l[lcol].index_key()) {
            pairs.extend(ris.iter().map(|&rp| (lp, rp)));
        }
    }
    pairs
}

/// Merge two key-ordered `(leading key, positions)` streams: advance
/// the lesser side; on a common key, gather both sides' *runs*
/// (adjacent groups sharing the leading key — composite indexes split
/// one leading key across many tail keys) and emit their cross
/// product. NULL keys sort first and never join, so they are skipped
/// outright.
fn merge_pairs<'a>(
    lg: impl Iterator<Item = (&'a OrdKey, &'a [usize])>,
    rg: impl Iterator<Item = (&'a OrdKey, &'a [usize])>,
) -> Vec<(usize, usize)> {
    let mut lg = lg.filter(|(k, _)| **k != OrdKey::Null).peekable();
    let mut rg = rg.filter(|(k, _)| **k != OrdKey::Null).peekable();
    let mut pairs = Vec::new();
    let (mut lrun, mut rrun) = (Vec::new(), Vec::new());
    while let (Some((lk, _)), Some((rk, _))) = (lg.peek(), rg.peek()) {
        match lk.cmp(rk) {
            Ordering::Less => {
                lg.next();
            }
            Ordering::Greater => {
                rg.next();
            }
            Ordering::Equal => {
                let key = (*lk).clone();
                lrun.clear();
                rrun.clear();
                while lg.peek().is_some_and(|(k, _)| **k == key) {
                    if let Some((_, b)) = lg.next() {
                        lrun.extend_from_slice(b);
                    }
                }
                while rg.peek().is_some_and(|(k, _)| **k == key) {
                    if let Some((_, b)) = rg.next() {
                        rrun.extend_from_slice(b);
                    }
                }
                for &lp in &lrun {
                    for &rp in &rrun {
                        pairs.push((lp, rp));
                    }
                }
            }
        }
    }
    pairs
}

/// Stream the source rows of a single-table SELECT out of an ordered
/// index that already delivers the ORDER BY order, honoring LIMIT as an
/// early exit. Returns `None` when no index qualifies.
///
/// An index qualifies when its key columns are exactly an
/// equality-pinned prefix (from the WHERE conjuncts) followed by the
/// ORDER BY columns in sequence — nothing more. The exact-cover rule is
/// what makes ties deterministic: rows equal on every key column share
/// one bucket, and buckets store ascending positions, so ties come out
/// in scan order just as the position-stable sort would emit them.
/// Range bounds on the first ORDER BY column clip the walk; the full
/// predicate is still re-verified per row.
#[allow(clippy::too_many_arguments)]
fn stream_ordered_rows(
    t: &crate::table::Table,
    rel: &TableRel<'_>,
    filter: &Option<Expr>,
    prog: Option<&Program>,
    params: &[Value],
    order_by: &[OrderBy],
    limit: Option<usize>,
    stats: &mut DbStats,
) -> DbResult<Option<Vec<Row>>> {
    let desc = order_by[0].desc;
    let mut order_cols: Vec<&str> = Vec::with_capacity(order_by.len());
    for o in order_by {
        if rel.col_index(&o.column).is_err() {
            return Ok(None); // e.g. ORDER BY an output alias
        }
        order_cols.push(o.column.rsplit('.').next().unwrap_or(&o.column));
    }
    let mut bounds = Vec::new();
    if let Some(f) = filter {
        collect_bounds(f, params, rel, &mut bounds);
    }
    if bounds.iter().any(ColBounds::has_null) {
        return Ok(None); // empty result; the probe plan reports it
    }
    for (i, def) in t.indexes().iter().enumerate() {
        if !def.ordered {
            continue;
        }
        let prefix: Vec<&Value> = def
            .columns
            .iter()
            .map_while(|c| {
                bounds
                    .iter()
                    .find(|b| b.col.eq_ignore_ascii_case(c))
                    .and_then(|b| b.eq.as_ref())
            })
            .collect();
        let e = prefix.len();
        if def.columns.len() != e + order_cols.len()
            || !def.columns[e..]
                .iter()
                .zip(&order_cols)
                .all(|(dc, oc)| dc.eq_ignore_ascii_case(oc))
        {
            continue;
        }
        let (lo, hi) = bounds
            .iter()
            .find(|b| b.col.eq_ignore_ascii_case(&def.columns[e]))
            .map_or((None, None), |b| (b.lo.as_ref(), b.hi.as_ref()));
        let Some(iter) = t.stream_ordered(i, &prefix, lo, hi, desc) else {
            continue;
        };
        stats.index_scans += 1;
        stats.plan_ordered_scans += 1;
        stats.sorts_avoided += 1;
        let rows = t.rows();
        let mut out = Vec::new();
        for p in iter {
            stats.rows_scanned += 1;
            let row = &rows[p];
            if let Some(f) = filter {
                if row_truthy(prog, f, rel, row, params)? != Some(true) {
                    continue;
                }
            }
            out.push(row.clone());
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        return Ok(Some(out));
    }
    Ok(None)
}

/// Sort rows by the ORDER BY keys. When a `top_k` row budget applies
/// (LIMIT without DISTINCT), the sort is a partial selection: pick the
/// first `k` under the ordering, then sort only those — `ORDER BY ...
/// LIMIT k` stops paying for a full sort of the table.
///
/// NULLs sort first ascending (last descending), matching the ordered
/// indexes' key order, and ties are resolved by input position in both
/// the full and the top-k variants, so a sorted result is byte-for-byte
/// the one an index-backed ordered stream produces.
fn sort_rows(
    rows: &mut Vec<Row>,
    order_by: &[OrderBy],
    rel: &impl Resolve,
    top_k: Option<usize>,
    stats: &mut DbStats,
) -> DbResult<()> {
    if order_by.is_empty() {
        return Ok(());
    }
    stats.order_sorts += 1;
    let keys: Vec<(usize, bool)> = order_by
        .iter()
        .map(|o| Ok((rel.col_index(&o.column)?, o.desc)))
        .collect::<DbResult<_>>()?;
    let cmp = |a: &Row, b: &Row| {
        for &(i, desc) in &keys {
            let o = match (a[i].is_null(), b[i].is_null()) {
                (true, true) => Ordering::Equal,
                (true, false) => Ordering::Less,
                (false, true) => Ordering::Greater,
                (false, false) => a[i].sql_cmp(&b[i]).unwrap_or(Ordering::Equal),
            };
            let o = if desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    };
    match top_k {
        Some(k) if k > 0 && k < rows.len() => {
            // Tag with input position so the unstable selection stays
            // deterministic across equal keys at the cut line.
            let mut tagged: Vec<(usize, Row)> = rows.drain(..).enumerate().collect();
            let cmp2 = |a: &(usize, Row), b: &(usize, Row)| cmp(&a.1, &b.1).then(a.0.cmp(&b.0));
            tagged.select_nth_unstable_by(k - 1, cmp2);
            tagged.truncate(k);
            tagged.sort_by(cmp2);
            rows.extend(tagged.into_iter().map(|(_, r)| r));
        }
        _ => rows.sort_by(cmp),
    }
    Ok(())
}

/// DISTINCT + LIMIT + wrap-up.
fn finish(
    names: Vec<String>,
    mut rows: Vec<Row>,
    distinct: bool,
    limit: Option<usize>,
    stats: &mut DbStats,
) -> DbResult<Outcome> {
    if distinct {
        let mut seen = std::collections::HashSet::new();
        rows.retain(|r| {
            seen.insert(
                r.iter()
                    .map(|v| v.index_key().into_owned())
                    .collect::<Vec<IndexKey<'static>>>(),
            )
        });
    }
    if let Some(l) = limit {
        rows.truncate(l);
    }
    stats.rows_returned += rows.len() as u64;
    Ok(Outcome::Rows {
        columns: names,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parse;

    fn run(catalog: &mut Catalog, sql: &str, params: &[Value]) -> Outcome {
        execute(catalog, &parse(sql).unwrap(), params).unwrap()
    }

    fn rows_of(o: Outcome) -> Vec<Row> {
        match o {
            Outcome::Rows { rows, .. } => rows,
            other => panic!("expected rows, got {other:?}"),
        }
    }

    fn setup() -> Catalog {
        let mut c = Catalog::new();
        run(
            &mut c,
            "CREATE TABLE t (id INT, score DOUBLE, name TEXT)",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO t VALUES (1, 3.5, 'a'), (2, 1.0, 'b'), (3, 9.25, 'c')",
            &[],
        );
        c
    }

    #[test]
    fn select_all() {
        let mut c = setup();
        match run(&mut c, "SELECT * FROM t", &[]) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns, vec!["id", "score", "name"]);
                assert_eq!(rows.len(), 3);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn select_where_params() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT name FROM t WHERE id = ?",
            &[Value::Int(2)],
        ));
        assert_eq!(rows, vec![vec![Value::Text("b".into())]]);
    }

    #[test]
    fn select_order_desc_limit() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t ORDER BY score DESC LIMIT 2",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(3)], vec![Value::Int(1)]]);
    }

    #[test]
    fn update_with_expression() {
        let mut c = setup();
        let out = run(&mut c, "UPDATE t SET score = score + 1 WHERE id < 3", &[]);
        assert_eq!(out, Outcome::Affected(2));
        let rows = rows_of(run(&mut c, "SELECT score FROM t WHERE id = 1", &[]));
        assert_eq!(rows[0][0].as_f64(), Some(4.5));
    }

    #[test]
    fn delete_where() {
        let mut c = setup();
        let out = run(&mut c, "DELETE FROM t WHERE score > 2.0", &[]);
        assert_eq!(out, Outcome::Affected(2));
        let rows = rows_of(run(&mut c, "SELECT id FROM t", &[]));
        assert_eq!(rows, vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (4)", &[]);
        let rows = rows_of(run(&mut c, "SELECT name FROM t WHERE id = 4", &[]));
        assert!(rows[0][0].is_null());
    }

    #[test]
    fn is_null_predicates() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (9)", &[]);
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE name IS NULL", &[]));
        assert_eq!(rows, vec![vec![Value::Int(9)]]);
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t WHERE name IS NOT NULL ORDER BY id LIMIT 1",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn null_comparisons_filter_out() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (10)", &[]);
        // score IS NULL on the new row: comparison yields unknown -> excluded.
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE score > 0", &[]));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn division_by_zero_is_null() {
        let mut c = setup();
        let rows = rows_of(run(&mut c, "SELECT id FROM t WHERE id / 0 IS NULL", &[]));
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn missing_param_errors() {
        let mut c = setup();
        let err = execute(&mut c, &parse("SELECT * FROM t WHERE id = ?").unwrap(), &[]);
        assert!(matches!(err, Err(DbError::Arity(_))));
    }

    #[test]
    fn type_error_on_bad_insert() {
        let mut c = setup();
        let err = execute(
            &mut c,
            &parse("INSERT INTO t VALUES ('not an int', 0.0, 'x')").unwrap(),
            &[],
        );
        assert!(matches!(err, Err(DbError::Type(_))));
    }

    #[test]
    fn update_snapshot_semantics() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE s (a INT, b INT)", &[]);
        run(&mut c, "INSERT INTO s VALUES (1, 10)", &[]);
        // Both assignments read the pre-update row.
        run(&mut c, "UPDATE s SET a = b, b = a", &[]);
        let rows = rows_of(run(&mut c, "SELECT a, b FROM s", &[]));
        assert_eq!(rows[0], vec![Value::Int(10), Value::Int(1)]);
    }

    #[test]
    fn and_or_three_valued_logic() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (11)", &[]);
        // (score > 0 OR id = 11): unknown OR true = true.
        let rows = rows_of(run(
            &mut c,
            "SELECT id FROM t WHERE score > 0 OR id = 11",
            &[],
        ));
        assert_eq!(rows.len(), 4);
    }

    // ---- aggregates / grouping ----

    #[test]
    fn count_star_and_column() {
        let mut c = setup();
        run(&mut c, "INSERT INTO t (id) VALUES (4)", &[]); // NULL name
        let rows = rows_of(run(&mut c, "SELECT COUNT(*), COUNT(name) FROM t", &[]));
        assert_eq!(rows, vec![vec![Value::Int(4), Value::Int(3)]]);
    }

    #[test]
    fn sum_avg_min_max() {
        let mut c = setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT SUM(id), AVG(score), MIN(score), MAX(name) FROM t",
            &[],
        ));
        assert_eq!(rows[0][0], Value::Int(6));
        assert!((rows[0][1].as_f64().unwrap() - (3.5 + 1.0 + 9.25) / 3.0).abs() < 1e-12);
        assert_eq!(rows[0][2], Value::Double(1.0));
        assert_eq!(rows[0][3], Value::Text("c".into()));
    }

    #[test]
    fn aggregates_over_empty_table() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE e (x INT)", &[]);
        let rows = rows_of(run(&mut c, "SELECT COUNT(*), SUM(x), AVG(x) FROM e", &[]));
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null, Value::Null]]);
    }

    #[test]
    fn group_by_counts() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE g (ds TEXT, bytes INT)", &[]);
        run(
            &mut c,
            "INSERT INTO g VALUES ('p', 10), ('q', 20), ('p', 30), ('q', 40), ('p', 50)",
            &[],
        );
        match run(
            &mut c,
            "SELECT ds, COUNT(*) AS n, SUM(bytes) AS total FROM g GROUP BY ds ORDER BY ds",
            &[],
        ) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns, vec!["ds", "n", "total"]);
                assert_eq!(
                    rows,
                    vec![
                        vec![Value::Text("p".into()), Value::Int(3), Value::Int(90)],
                        vec![Value::Text("q".into()), Value::Int(2), Value::Int(60)],
                    ]
                );
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn having_filters_groups() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE g (ds TEXT)", &[]);
        run(&mut c, "INSERT INTO g VALUES ('p'), ('q'), ('p')", &[]);
        let rows = rows_of(run(
            &mut c,
            "SELECT ds, COUNT(*) AS n FROM g GROUP BY ds HAVING n > 1",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Text("p".into()), Value::Int(2)]]);
    }

    #[test]
    fn bare_column_outside_group_by_rejected() {
        let mut c = setup();
        let err = execute(&mut c, &parse("SELECT name, COUNT(*) FROM t").unwrap(), &[]);
        assert!(matches!(err, Err(DbError::Parse(_))));
    }

    #[test]
    fn distinct_dedups() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE d (x INT)", &[]);
        run(&mut c, "INSERT INTO d VALUES (1), (2), (1), (3), (2)", &[]);
        let rows = rows_of(run(&mut c, "SELECT DISTINCT x FROM d ORDER BY x", &[]));
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(1)],
                vec![Value::Int(2)],
                vec![Value::Int(3)]
            ]
        );
    }

    // ---- joins ----

    fn join_setup() -> Catalog {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE runs (runid INT, app TEXT)", &[]);
        run(
            &mut c,
            "CREATE TABLE execs (runid INT, ds TEXT, off INT)",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO runs VALUES (1, 'fun3d'), (2, 'rt')",
            &[],
        );
        run(
            &mut c,
            "INSERT INTO execs VALUES (1, 'p', 0), (1, 'q', 100), (2, 'nodes', 0)",
            &[],
        );
        c
    }

    #[test]
    fn inner_join_matches() {
        let mut c = join_setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT app, ds FROM runs JOIN execs ON runs.runid = execs.runid \
             WHERE app = 'fun3d' ORDER BY ds",
            &[],
        ));
        assert_eq!(
            rows,
            vec![
                vec![Value::Text("fun3d".into()), Value::Text("p".into())],
                vec![Value::Text("fun3d".into()), Value::Text("q".into())],
            ]
        );
    }

    #[test]
    fn join_star_uses_qualified_names() {
        let mut c = join_setup();
        match run(
            &mut c,
            "SELECT * FROM runs JOIN execs ON runs.runid = execs.runid",
            &[],
        ) {
            Outcome::Rows { columns, rows } => {
                assert_eq!(columns[0], "runs.runid");
                assert_eq!(columns[2], "execs.runid");
                assert_eq!(rows.len(), 3);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn ambiguous_unqualified_column_rejected() {
        let mut c = join_setup();
        let err = execute(
            &mut c,
            &parse("SELECT runid FROM runs JOIN execs ON runs.runid = execs.runid").unwrap(),
            &[],
        );
        assert!(matches!(err, Err(DbError::NoSuchColumn(m)) if m.contains("ambiguous")));
    }

    #[test]
    fn join_with_aggregates() {
        let mut c = join_setup();
        let rows = rows_of(run(
            &mut c,
            "SELECT app, COUNT(*) AS n FROM runs JOIN execs ON runs.runid = execs.runid \
             GROUP BY app ORDER BY app",
            &[],
        ));
        assert_eq!(
            rows,
            vec![
                vec![Value::Text("fun3d".into()), Value::Int(2)],
                vec![Value::Text("rt".into()), Value::Int(1)],
            ]
        );
    }

    // ---- index usage ----

    #[test]
    fn index_probe_is_used_and_correct() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE h (k INT, v TEXT)", &[]);
        for i in 0..50 {
            run(
                &mut c,
                "INSERT INTO h VALUES (?, 'x')",
                &[Value::Int(i % 10)],
            );
        }
        run(&mut c, "CREATE INDEX hk ON h (k)", &[]);
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*) FROM h WHERE k = ?").unwrap(),
            &[Value::Int(3)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(5)]]);
        assert_eq!((stats.full_scans, stats.index_scans), (0, 1));
        assert_eq!(
            stats.rows_scanned, 5,
            "probe visits only the candidate bucket"
        );
        // Non-equality predicates fall back to a scan.
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*) FROM h WHERE k > 3").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(30)]]);
        assert_eq!(stats.full_scans, 1);
    }

    #[test]
    fn index_probe_respects_extra_conjuncts() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE h (k INT, v INT)", &[]);
        run(
            &mut c,
            "INSERT INTO h VALUES (1, 10), (1, 20), (2, 30)",
            &[],
        );
        run(&mut c, "CREATE INDEX hk ON h (k)", &[]);
        let rows = rows_of(run(&mut c, "SELECT v FROM h WHERE k = 1 AND v > 15", &[]));
        assert_eq!(rows, vec![vec![Value::Int(20)]]);
    }

    // ---- streaming aggregates / top-k ----

    #[test]
    fn max_fast_path_matches_generic_answer() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE r (runid INT)", &[]);
        for i in [3, 9, 1, 7, 9, 2] {
            run(&mut c, "INSERT INTO r VALUES (?)", &[Value::Int(i)]);
        }
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT MAX(runid) FROM r").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(9)]]);
        // Same answer as the ORDER BY ... LIMIT 1 spelling.
        let out = run(
            &mut c,
            "SELECT runid FROM r ORDER BY runid DESC LIMIT 1",
            &[],
        );
        assert_eq!(rows_of(out), vec![vec![Value::Int(9)]]);
        assert_eq!((stats.rows_scanned, stats.rows_returned), (6, 1));
    }

    #[test]
    fn aggregate_fast_path_honors_filter_and_index() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE t (k INT, v INT)", &[]);
        for i in 0..30 {
            run(
                &mut c,
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i % 3), Value::Int(i)],
            );
        }
        run(&mut c, "CREATE INDEX tk ON t (k)", &[]);
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(*), MIN(v), MAX(v) FROM t WHERE k = ?").unwrap(),
            &[Value::Int(1)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            vec![vec![Value::Int(10), Value::Int(1), Value::Int(28)]]
        );
        assert_eq!(stats.index_scans, 1, "fast path still probes the index");
        assert_eq!(stats.rows_scanned, 10);
    }

    #[test]
    fn aggregate_over_empty_table_still_null() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE e (x INT)", &[]);
        let rows = rows_of(run(&mut c, "SELECT MAX(x), COUNT(*) FROM e", &[]));
        assert_eq!(rows, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn order_by_limit_partial_sort_matches_full_sort() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE t (k INT)", &[]);
        for i in [5i64, 3, 8, 1, 9, 2, 7, 4, 6, 0] {
            run(&mut c, "INSERT INTO t VALUES (?)", &[Value::Int(i)]);
        }
        let top3 = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 3", &[]));
        assert_eq!(
            top3,
            vec![
                vec![Value::Int(0)],
                vec![Value::Int(1)],
                vec![Value::Int(2)]
            ]
        );
        let bottom2 = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k DESC LIMIT 2", &[]));
        assert_eq!(bottom2, vec![vec![Value::Int(9)], vec![Value::Int(8)]]);
        // LIMIT larger than the table falls back to a plain sort.
        let all = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 99", &[]));
        assert_eq!(all.len(), 10);
        let none = rows_of(run(&mut c, "SELECT k FROM t ORDER BY k LIMIT 0", &[]));
        assert!(none.is_empty());
    }

    #[test]
    fn distinct_with_limit_dedups_before_truncating() {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE d (x INT)", &[]);
        run(
            &mut c,
            "INSERT INTO d VALUES (2), (2), (2), (1), (1), (3)",
            &[],
        );
        let rows = rows_of(run(
            &mut c,
            "SELECT DISTINCT x FROM d ORDER BY x LIMIT 2",
            &[],
        ));
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
    }

    #[test]
    fn tx_statements_rejected_at_executor() {
        let mut c = Catalog::new();
        assert!(matches!(
            execute(&mut c, &Statement::Begin, &[]),
            Err(DbError::Tx(_))
        ));
    }

    // ---- range planner / ordered indexes ----

    /// 4 runs × 25 timesteps with an ordered `(runid, ts)` composite.
    fn exec_like() -> Catalog {
        let mut c = Catalog::new();
        run(&mut c, "CREATE TABLE e (runid INT, ts INT, off INT)", &[]);
        for ts in 0..25 {
            for runid in 0..4 {
                run(
                    &mut c,
                    "INSERT INTO e VALUES (?, ?, ?)",
                    &[
                        Value::Int(runid),
                        Value::Int(ts),
                        Value::Int(runid * 1000 + ts),
                    ],
                );
            }
        }
        run(&mut c, "CREATE ORDERED INDEX e_rt ON e (runid, ts)", &[]);
        c
    }

    #[test]
    fn range_probe_walks_ordered_index() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT off FROM e WHERE runid = ? AND ts >= ? AND ts <= ?").unwrap(),
            &[Value::Int(2), Value::Int(10), Value::Int(13)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            (10..=13)
                .map(|t| vec![Value::Int(2000 + t)])
                .collect::<Vec<_>>()
        );
        assert_eq!(
            (stats.full_scans, stats.index_scans, stats.plan_range_probes),
            (0, 1, 1)
        );
        assert_eq!(stats.rows_scanned, 4, "only the window is visited");
    }

    #[test]
    fn strict_bounds_and_merging_give_exact_rows() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        // Strict bounds are widened for the probe; re-verification and
        // tightest-bound merging still yield exactly (5, 8].
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT ts FROM e WHERE runid = 1 AND ts > 2 AND ts > 5 AND ts <= 8").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            (6..=8).map(|t| vec![Value::Int(t)]).collect::<Vec<_>>()
        );
        assert_eq!(stats.plan_range_probes, 1);
    }

    #[test]
    fn full_key_equality_is_a_point_probe() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT off FROM e WHERE ts = ? AND runid = ?").unwrap(),
            &[Value::Int(7), Value::Int(3)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(3007)]]);
        assert_eq!(
            (stats.plan_point_probes, stats.plan_range_probes),
            (1, 0),
            "conjunct order does not matter for the composite key"
        );
        assert_eq!(stats.rows_scanned, 1);
    }

    #[test]
    fn null_bound_short_circuits_to_empty() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT ts FROM e WHERE runid = 1 AND ts < ?").unwrap(),
            &[Value::Null],
            &mut stats,
        )
        .unwrap();
        assert!(rows_of(out).is_empty(), "NULL comparison matches nothing");
        assert_eq!((stats.index_scans, stats.rows_scanned), (1, 0));
    }

    #[test]
    fn order_by_limit_streams_off_ordered_index() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT ts FROM e WHERE runid = ? ORDER BY ts DESC LIMIT 3").unwrap(),
            &[Value::Int(1)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            vec![
                vec![Value::Int(24)],
                vec![Value::Int(23)],
                vec![Value::Int(22)]
            ]
        );
        assert_eq!(
            (
                stats.plan_ordered_scans,
                stats.sorts_avoided,
                stats.order_sorts
            ),
            (1, 1, 0),
            "top-k streams keys backwards, no sort"
        );
        assert_eq!(stats.rows_scanned, 3, "LIMIT stops the walk");
        // A range bound on the order column clips the stream too.
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT ts FROM e WHERE runid = 1 AND ts >= 20 ORDER BY ts LIMIT 2").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(
            rows_of(out),
            vec![vec![Value::Int(20)], vec![Value::Int(21)]]
        );
        assert_eq!(stats.plan_ordered_scans, 2);
    }

    #[test]
    fn streamed_order_matches_sorted_order() {
        // Same query with and without the ordered index: identical rows
        // in identical order, including scan-order ties.
        let build = |indexed: bool| {
            let mut c = Catalog::new();
            run(&mut c, "CREATE TABLE s (k INT, tag TEXT)", &[]);
            for (k, tag) in [(2, "a"), (1, "b"), (2, "c"), (1, "d"), (2, "e")] {
                run(
                    &mut c,
                    "INSERT INTO s VALUES (?, ?)",
                    &[Value::Int(k), Value::Text(tag.into())],
                );
            }
            if indexed {
                run(&mut c, "CREATE ORDERED INDEX sk ON s (k)", &[]);
            }
            c
        };
        for sql in [
            "SELECT tag FROM s ORDER BY k LIMIT 3",
            "SELECT tag FROM s ORDER BY k DESC LIMIT 3",
            "SELECT tag FROM s ORDER BY k",
        ] {
            let mut stats = DbStats::default();
            let a = rows_of(
                execute_with_stats(&mut build(true), &parse(sql).unwrap(), &[], &mut stats)
                    .unwrap(),
            );
            assert_eq!(stats.sorts_avoided, 1, "indexed run streams: {sql}");
            let b = rows_of(run(&mut build(false), sql, &[]));
            assert_eq!(a, b, "stream/sort divergence for: {sql}");
        }
    }

    #[test]
    fn min_max_peek_reads_index_edges_without_rows() {
        let mut c = exec_like();
        // NULLs are skipped by MIN even though they sort first.
        run(
            &mut c,
            "INSERT INTO e VALUES (1, NULL, NULL), (9, NULL, NULL)",
            &[],
        );
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT MIN(ts), MAX(ts) FROM e WHERE runid = ?").unwrap(),
            &[Value::Int(1)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(0), Value::Int(24)]]);
        assert_eq!(
            (stats.plan_point_probes, stats.rows_scanned),
            (2, 2),
            "one edge peek per aggregate, no bucket sweep"
        );
        // An all-NULL bucket peeks to NULL, like the scan would report.
        let out = run(&mut c, "SELECT MAX(ts) FROM e WHERE runid = 9", &[]);
        assert_eq!(rows_of(out), vec![vec![Value::Null]]);
        // Unfiltered MAX peeks the index tail (run_table's AllocMax).
        run(&mut c, "CREATE ORDERED INDEX e_ts ON e (ts)", &[]);
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT MAX(ts) FROM e").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(24)]]);
        assert_eq!(stats.rows_scanned, 1);
    }

    #[test]
    fn peek_falls_back_when_any_item_is_not_peekable() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        // SUM can't peek, so the whole item list takes the generic pass.
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT MAX(ts), SUM(off) FROM e WHERE runid = 0").unwrap(),
            &[],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(24), Value::Int(300)]]);
        assert_eq!(stats.rows_scanned, 25, "generic pass visits the bucket");
    }

    #[test]
    fn prefix_probe_without_range_bounds_scans_the_prefix() {
        let mut c = exec_like();
        let mut stats = DbStats::default();
        let out = execute_with_stats(
            &mut c,
            &parse("SELECT COUNT(off) FROM e WHERE runid = ?").unwrap(),
            &[Value::Int(2)],
            &mut stats,
        )
        .unwrap();
        assert_eq!(rows_of(out), vec![vec![Value::Int(25)]]);
        assert_eq!(
            (stats.full_scans, stats.plan_range_probes),
            (0, 1),
            "leading-column equality rides the composite as a prefix walk"
        );
        assert_eq!(stats.rows_scanned, 25);
    }
}
