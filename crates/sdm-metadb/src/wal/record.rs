//! WAL record encoding and decoding.
//!
//! Every record is one self-delimiting **frame**:
//!
//! ```text
//! [u32 len][u32 crc][payload]        (all integers little-endian)
//! payload = [u64 txid][u8 kind][kind-specific body]
//! ```
//!
//! `len` is the payload length and `crc` is CRC-32 (IEEE) over the
//! payload, so recovery can walk a byte stream frame by frame and stop
//! exactly at the first torn or corrupted record: a crash mid-append
//! leaves either a short frame (fewer than `len` bytes follow) or a
//! checksum mismatch, never a silently half-applied record.
//!
//! Record kinds mirror the `crate::undo::UndoRecord` shapes — they
//! are the *redo* twins. Data records carry post-images (the rows an
//! INSERT appended, the replacement rows of an UPDATE, the positions a
//! DELETE removed), because recovery replays forward from a snapshot;
//! the undo log keeps the pre-images for in-memory `ROLLBACK`. `Commit`
//! and `Abort` are transaction terminators: recovery applies a
//! transaction's buffered records only when it sees the `Commit`.
//!
//! Encoding is borrow-based: [`WalAppender`] writes frames straight
//! from the executor's borrowed rows into a per-statement byte buffer —
//! capturing redo never clones a row image.

use crate::schema::{ColType, Column, Schema};
use crate::table::Row;
use crate::value::Value;

/// Record kinds (the `u8` after the txid).
const KIND_APPEND: u8 = 1;
const KIND_UPDATE: u8 = 2;
const KIND_DELETE: u8 = 3;
const KIND_CLEAR: u8 = 4;
const KIND_CREATE_TABLE: u8 = 5;
const KIND_DROP_TABLE: u8 = 6;
const KIND_CREATE_INDEX: u8 = 7;
const KIND_DROP_INDEX: u8 = 8;
const KIND_COMMIT: u8 = 9;
const KIND_ABORT: u8 = 10;

// ------------------------------------------------------------------ crc32

/// CRC-32 (IEEE 802.3) lookup table, built at compile time — no
/// dependency, no runtime init.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        // analyze:allow(panic-under-guard: index is masked to 0..=255 and the table has 256 entries)
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// --------------------------------------------------------------- encoding

/// Per-statement redo capture: the executor appends one frame per
/// mutation **before** applying it, and the `Database` hands the filled
/// buffer to the shared WAL under the transaction guard — so frames of
/// different transactions never interleave in the log.
#[derive(Debug)]
pub struct WalAppender {
    txid: u64,
    buf: Vec<u8>,
    records: u64,
}

impl WalAppender {
    /// A fresh appender for transaction `txid`.
    pub(crate) fn new(txid: u64) -> Self {
        Self {
            txid,
            buf: Vec::new(),
            records: 0,
        }
    }

    /// The transaction id frames are stamped with.
    pub(crate) fn txid(&self) -> u64 {
        self.txid
    }

    /// How many frames have been appended.
    pub(crate) fn records(&self) -> u64 {
        self.records
    }

    /// Surrender the encoded frames.
    pub(crate) fn into_buf(self) -> Vec<u8> {
        self.buf
    }

    /// Open a frame: reserve the `[len][crc]` header and write the
    /// payload prefix. Returns the header offset for [`Self::finish`].
    fn begin(&mut self, kind: u8) -> usize {
        let at = self.buf.len();
        self.buf.extend_from_slice(&[0u8; 8]);
        self.buf.extend_from_slice(&self.txid.to_le_bytes());
        self.buf.push(kind);
        at
    }

    /// Close the frame opened at `at`: patch `len` and `crc`.
    fn finish(&mut self, at: usize) {
        let len = (self.buf.len() - at - 8) as u32;
        // analyze:allow(panic-under-guard: begin() reserved 8 bytes at `at`, so the slice exists)
        let crc = crc32(&self.buf[at + 8..]);
        // analyze:allow(panic-under-guard: begin() reserved 8 bytes at `at`, so the slice exists)
        self.buf[at..at + 4].copy_from_slice(&len.to_le_bytes());
        // analyze:allow(panic-under-guard: begin() reserved 8 bytes at `at`, so the slice exists)
        self.buf[at + 4..at + 8].copy_from_slice(&crc.to_le_bytes());
        self.records += 1;
    }

    /// INSERT appended `rows` to `table`.
    pub(crate) fn append_rows(&mut self, table: &str, rows: &[Row]) {
        let at = self.begin(KIND_APPEND);
        put_str(&mut self.buf, table);
        put_u32(&mut self.buf, rows.len() as u32);
        for row in rows {
            put_row(&mut self.buf, row);
        }
        self.finish(at);
    }

    /// UPDATE replaced the rows at the given positions with post-images.
    pub(crate) fn update_rows(&mut self, table: &str, news: &[(usize, Row)]) {
        let at = self.begin(KIND_UPDATE);
        put_str(&mut self.buf, table);
        put_u32(&mut self.buf, news.len() as u32);
        for (pos, row) in news {
            put_u64(&mut self.buf, *pos as u64);
            put_row(&mut self.buf, row);
        }
        self.finish(at);
    }

    /// DELETE removed the rows at `positions` (ascending).
    pub(crate) fn delete_rows(&mut self, table: &str, positions: &[usize]) {
        let at = self.begin(KIND_DELETE);
        put_str(&mut self.buf, table);
        put_u32(&mut self.buf, positions.len() as u32);
        for pos in positions {
            put_u64(&mut self.buf, *pos as u64);
        }
        self.finish(at);
    }

    /// DELETE without WHERE emptied `table`.
    pub(crate) fn clear_table(&mut self, table: &str) {
        let at = self.begin(KIND_CLEAR);
        put_str(&mut self.buf, table);
        self.finish(at);
    }

    /// CREATE TABLE `name` with `schema`.
    pub(crate) fn create_table(&mut self, name: &str, schema: &Schema) {
        let at = self.begin(KIND_CREATE_TABLE);
        put_str(&mut self.buf, name);
        put_u32(&mut self.buf, schema.columns.len() as u32);
        for col in &schema.columns {
            put_str(&mut self.buf, &col.name);
            self.buf.push(match col.ctype {
                ColType::Int => 0,
                ColType::Double => 1,
                ColType::Text => 2,
            });
        }
        self.finish(at);
    }

    /// DROP TABLE `name`.
    pub(crate) fn drop_table(&mut self, name: &str) {
        let at = self.begin(KIND_DROP_TABLE);
        put_str(&mut self.buf, name);
        self.finish(at);
    }

    /// CREATE INDEX `index` on `table`.
    pub(crate) fn create_index(
        &mut self,
        table: &str,
        index: &str,
        columns: &[String],
        ordered: bool,
    ) {
        let at = self.begin(KIND_CREATE_INDEX);
        put_str(&mut self.buf, table);
        put_str(&mut self.buf, index);
        put_u32(&mut self.buf, columns.len() as u32);
        for c in columns {
            put_str(&mut self.buf, c);
        }
        self.buf.push(u8::from(ordered));
        self.finish(at);
    }

    /// DROP INDEX `index` on `table`.
    pub(crate) fn drop_index(&mut self, table: &str, index: &str) {
        let at = self.begin(KIND_DROP_INDEX);
        put_str(&mut self.buf, table);
        put_str(&mut self.buf, index);
        self.finish(at);
    }

    /// The transaction committed: everything before this frame is
    /// durable once the frame reaches disk.
    pub(crate) fn commit(&mut self) {
        let at = self.begin(KIND_COMMIT);
        self.finish(at);
    }

    /// The transaction rolled back: recovery discards its records.
    pub(crate) fn abort(&mut self) {
        let at = self.begin(KIND_ABORT);
        self.finish(at);
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        match v {
            Value::Null => buf.push(0),
            Value::Int(i) => {
                buf.push(1);
                buf.extend_from_slice(&i.to_le_bytes());
            }
            Value::Double(d) => {
                buf.push(2);
                buf.extend_from_slice(&d.to_bits().to_le_bytes());
            }
            Value::Text(s) => {
                buf.push(3);
                put_str(buf, s);
            }
        }
    }
}

// --------------------------------------------------------------- decoding

/// One decoded redo record (the owned twin of what [`WalAppender`]
/// encoded), applied by `Catalog::apply_redo`.
#[derive(Debug, Clone, PartialEq)]
pub enum Replay {
    /// Append `rows` to `table`.
    Append {
        /// Target table.
        table: String,
        /// Post-image rows, in insertion order.
        rows: Vec<Row>,
    },
    /// Replace the rows at the given positions with post-images.
    Update {
        /// Target table.
        table: String,
        /// `(position, post-image)` pairs.
        news: Vec<(usize, Row)>,
    },
    /// Remove the rows at `positions` (ascending).
    Delete {
        /// Target table.
        table: String,
        /// Ascending original positions.
        positions: Vec<usize>,
    },
    /// Remove every row of `table`.
    Clear {
        /// Target table.
        table: String,
    },
    /// Create `name` with `schema`.
    CreateTable {
        /// Created table name.
        name: String,
        /// Its column schema.
        schema: Schema,
    },
    /// Drop `name`.
    DropTable {
        /// Dropped table name.
        name: String,
    },
    /// Create `index` on `table`.
    CreateIndex {
        /// Owning table.
        table: String,
        /// Index name.
        index: String,
        /// Indexed columns, in key order.
        columns: Vec<String>,
        /// Ordered (BTree) or hash index.
        ordered: bool,
    },
    /// Drop `index` from `table`.
    DropIndex {
        /// Owning table.
        table: String,
        /// Index name.
        index: String,
    },
    /// Transaction terminator: apply the buffered records.
    Commit,
    /// Transaction terminator: discard the buffered records.
    Abort,
}

/// A decoded frame: the transaction it belongs to plus its record.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Stamping transaction id.
    pub txid: u64,
    /// The decoded record.
    pub replay: Replay,
}

/// Walk `bytes` frame by frame. Returns the decoded frames plus the
/// number of bytes consumed by *valid* frames — decoding stops at the
/// first short frame, checksum mismatch, or malformed payload (the torn
/// tail a crash mid-append leaves behind), and the caller discards
/// everything from that offset on.
pub fn decode_all(bytes: &[u8]) -> (Vec<Frame>, usize) {
    let mut frames = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len =
            u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]) as usize;
        let crc = u32::from_le_bytes([bytes[at + 4], bytes[at + 5], bytes[at + 6], bytes[at + 7]]);
        let Some(end) = (at + 8).checked_add(len) else {
            break;
        };
        if end > bytes.len() {
            break; // short frame: torn tail
        }
        let payload = &bytes[at + 8..end];
        if crc32(payload) != crc {
            break; // corrupted frame
        }
        let Some(frame) = decode_payload(payload) else {
            break; // CRC-valid but structurally malformed: stop cleanly
        };
        frames.push(frame);
        at = end;
    }
    (frames, at)
}

/// Decode one frame payload (`[txid][kind][body]`).
fn decode_payload(payload: &[u8]) -> Option<Frame> {
    let mut cur = Cursor {
        data: payload,
        pos: 0,
    };
    let txid = cur.u64()?;
    let kind = cur.u8()?;
    let replay = match kind {
        KIND_APPEND => {
            let table = cur.string()?;
            let n = cur.u32()? as usize;
            let mut rows = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                rows.push(cur.row()?);
            }
            Replay::Append { table, rows }
        }
        KIND_UPDATE => {
            let table = cur.string()?;
            let n = cur.u32()? as usize;
            let mut news = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let pos = cur.u64()? as usize;
                news.push((pos, cur.row()?));
            }
            Replay::Update { table, news }
        }
        KIND_DELETE => {
            let table = cur.string()?;
            let n = cur.u32()? as usize;
            let mut positions = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                positions.push(cur.u64()? as usize);
            }
            Replay::Delete { table, positions }
        }
        KIND_CLEAR => Replay::Clear {
            table: cur.string()?,
        },
        KIND_CREATE_TABLE => {
            let name = cur.string()?;
            let n = cur.u32()? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let col = cur.string()?;
                let ctype = match cur.u8()? {
                    0 => ColType::Int,
                    1 => ColType::Double,
                    2 => ColType::Text,
                    _ => return None,
                };
                columns.push(Column { name: col, ctype });
            }
            let schema = Schema::new(columns).ok()?;
            Replay::CreateTable { name, schema }
        }
        KIND_DROP_TABLE => Replay::DropTable {
            name: cur.string()?,
        },
        KIND_CREATE_INDEX => {
            let table = cur.string()?;
            let index = cur.string()?;
            let n = cur.u32()? as usize;
            let mut columns = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                columns.push(cur.string()?);
            }
            let ordered = cur.u8()? != 0;
            Replay::CreateIndex {
                table,
                index,
                columns,
                ordered,
            }
        }
        KIND_DROP_INDEX => Replay::DropIndex {
            table: cur.string()?,
            index: cur.string()?,
        },
        KIND_COMMIT => Replay::Commit,
        KIND_ABORT => Replay::Abort,
        _ => return None,
    };
    // A frame with trailing garbage is malformed: the encoder writes
    // payloads exactly.
    if cur.pos != payload.len() {
        return None;
    }
    Some(Frame { txid, replay })
}

/// Bounds-checked little-endian reader over a frame payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.data.len() {
            return None;
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn row(&mut self) -> Option<Row> {
        let n = self.u32()? as usize;
        let mut row = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let v = match self.u8()? {
                0 => Value::Null,
                1 => {
                    let s = self.take(8)?;
                    Value::Int(i64::from_le_bytes([
                        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
                    ]))
                }
                2 => {
                    let s = self.take(8)?;
                    Value::Double(f64::from_bits(u64::from_le_bytes([
                        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
                    ])))
                }
                3 => Value::Text(self.string()?),
                _ => return None,
            };
            row.push(v);
        }
        Some(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column {
                name: "a".into(),
                ctype: ColType::Int,
            },
            Column {
                name: "b".into(),
                ctype: ColType::Text,
            },
        ])
        .unwrap()
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_kind_round_trips() {
        let mut w = WalAppender::new(42);
        w.create_table("t", &schema());
        w.append_rows(
            "t",
            &[
                vec![Value::Int(1), Value::Text("x".into())],
                vec![Value::Null, Value::Double(2.5)],
            ],
        );
        w.update_rows("t", &[(0, vec![Value::Int(9), Value::Null])]);
        w.delete_rows("t", &[1, 3, 7]);
        w.clear_table("t");
        w.create_index("t", "ta", &["a".into(), "b".into()], true);
        w.drop_index("t", "ta");
        w.drop_table("t");
        w.commit();
        w.abort();
        assert_eq!(w.records(), 10);
        let bytes = w.into_buf();
        let (frames, consumed) = decode_all(&bytes);
        assert_eq!(consumed, bytes.len());
        assert_eq!(frames.len(), 10);
        assert!(frames.iter().all(|f| f.txid == 42));
        assert!(matches!(
            &frames[1].replay,
            Replay::Append { table, rows } if table == "t" && rows.len() == 2
        ));
        assert!(matches!(
            &frames[3].replay,
            Replay::Delete { positions, .. } if positions == &[1, 3, 7]
        ));
        assert_eq!(frames[8].replay, Replay::Commit);
        assert_eq!(frames[9].replay, Replay::Abort);
    }

    #[test]
    fn truncation_at_every_byte_discards_only_the_tail() {
        let mut w = WalAppender::new(7);
        w.append_rows("t", &[vec![Value::Int(1)]]);
        w.commit();
        w.append_rows("t", &[vec![Value::Int(2)]]);
        w.commit();
        let bytes = w.into_buf();
        let (all, _) = decode_all(&bytes);
        assert_eq!(all.len(), 4);
        for cut in 0..bytes.len() {
            let (frames, consumed) = decode_all(&bytes[..cut]);
            assert!(consumed <= cut);
            // Every decoded frame is one of the originally encoded
            // prefix frames, in order.
            assert_eq!(frames[..], all[..frames.len()]);
        }
    }

    #[test]
    fn bitflip_anywhere_is_detected() {
        let mut w = WalAppender::new(7);
        w.append_rows("t", &[vec![Value::Text("payload".into())]]);
        w.commit();
        let bytes = w.into_buf();
        let (clean, _) = decode_all(&bytes);
        assert_eq!(clean.len(), 2);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let (frames, _) = decode_all(&corrupt);
            // A flipped byte may truncate the stream early but must
            // never yield a frame that differs from the originals.
            for (f, c) in frames.iter().zip(&clean) {
                if f != c {
                    // The flip landed in the length prefix and resynced
                    // onto a byte range that still checksums? CRC-32
                    // makes that astronomically unlikely; treat it as a
                    // failure.
                    panic!("corrupted frame decoded as valid: {f:?}");
                }
            }
        }
    }

    #[test]
    fn empty_stream_decodes_empty() {
        let (frames, consumed) = decode_all(&[]);
        assert!(frames.is_empty());
        assert_eq!(consumed, 0);
    }
}
