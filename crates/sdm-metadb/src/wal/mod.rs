//! Durability: write-ahead log, group commit, checkpoint, recovery.
//!
//! The paper's metadata lived in a MySQL server precisely so it
//! survived across runs; this module gives the embedded reproduction
//! the same property. The design is append-before-apply over the
//! in-memory catalog (the Bitcask shape named in the ROADMAP):
//!
//! * **Append before apply.** Every mutation encodes its redo record
//!   ([`record::WalAppender`], post-images mirroring the undo log's
//!   pre-images) *before* the catalog changes, and the frames reach the
//!   shared log buffer while the transaction guard is held — frames of
//!   different transactions never interleave.
//! * **Group commit.** A committing thread calls `Wal::sync_to` after
//!   releasing the transaction slot. The first thread in becomes the
//!   *leader*: it drains the buffer and fsyncs once while later
//!   committers queue on the sync lock; when they get it, the leader's
//!   fsync usually already covers their LSN and they return without
//!   touching storage. One fsync, many commits.
//! * **Checkpoint.** [`crate::Database::checkpoint`] quiesces, writes
//!   `"<last_tx>\n<catalog JSON>"` via atomic temp+fsync+rename, and
//!   only *then* deletes sealed segments — a crash anywhere in between
//!   leaves a recoverable (snapshot, log) pair.
//! * **Recovery.** `Wal::open` loads the newest valid snapshot and
//!   replays committed transactions in log order, skipping anything the
//!   snapshot already covers (`txid <= snapshot_last_tx`) and
//!   discarding the torn tail after the last valid CRC. Uncommitted and
//!   aborted transactions are never applied.
//!
//! A failed sync **poisons** the WAL (the PostgreSQL rule): once an
//! fsync fails the kernel may have dropped the dirty pages, so claiming
//! durability for anything after it would be a lie. Subsequent commits
//! error; the in-memory state stays intact for inspection.
//!
//! Lock placement: `wal_sync` (rank [`crate::db::LOCK_RANK_WAL_SYNC`])
//! then `wal_buf` (rank [`crate::db::LOCK_RANK_WAL_BUF`]) sit between
//! the catalog lock and the leaf mutexes — a committer appends under
//! the transaction guard and syncs after releasing it, so the fsync is
//! never inside any other lock's critical section.

pub mod record;
pub mod storage;

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::db::{LOCK_RANK_WAL_BUF, LOCK_RANK_WAL_SYNC};
use crate::error::{DbError, DbResult};
use record::Replay;
use storage::WalStorage;

/// What recovery found when the database opened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// Last transaction the loaded snapshot already covered.
    pub snapshot_last_tx: u64,
    /// Committed transactions replayed from the log.
    pub replayed_txs: u64,
    /// Redo records applied during replay.
    pub replayed_records: u64,
    /// Records discarded: uncommitted tails, aborted transactions, and
    /// committed work the snapshot already covered.
    pub discarded_records: u64,
    /// Bytes of torn/corrupt log tail discarded after the last valid
    /// frame (per segment).
    pub torn_bytes: u64,
    /// Highest committed transaction id visible after recovery.
    pub last_committed_tx: u64,
}

/// The un-synced tail of the log: everything appended but not yet
/// drained to storage.
#[derive(Debug, Default)]
struct WalBuf {
    buf: Vec<u8>,
    /// LSN = total bytes appended since open; `next_lsn` is the LSN the
    /// next appended byte will get.
    next_lsn: u64,
    /// Commit frames sitting in `buf` — the group-commit batch size.
    pending_commits: u64,
}

/// The storage side, serialized by the `wal_sync` mutex: the leader of
/// a group commit holds it across append+fsync.
#[derive(Debug)]
struct SyncTail {
    storage: Box<dyn WalStorage>,
    /// Everything at LSN < `durable_lsn` has been fsync'd.
    durable_lsn: u64,
    /// A sync failed: durability can no longer be promised (see module
    /// docs); every later commit errors.
    poisoned: bool,
}

/// The write-ahead log: record buffer, group-commit writer, and the
/// recovery bookkeeping from open.
#[derive(Debug)]
pub struct Wal {
    wal_sync: Mutex<SyncTail>,
    wal_buf: Mutex<WalBuf>,
    next_txid: AtomicU64,
    last_committed: AtomicU64,
    recovery: RecoveryInfo,
}

impl Wal {
    /// Open a log, running recovery: load the snapshot, replay
    /// committed transactions, and return the WAL (positioned on a
    /// fresh segment) together with the recovered catalog.
    pub(crate) fn open(storage: Box<dyn WalStorage>) -> DbResult<(Self, Catalog)> {
        let (mut catalog, snapshot_last_tx) = match storage.read_snapshot()? {
            Some(bytes) => decode_snapshot(&bytes)?,
            None => (Catalog::default(), 0),
        };
        let mut info = RecoveryInfo {
            snapshot_last_tx,
            last_committed_tx: snapshot_last_tx,
            ..RecoveryInfo::default()
        };
        let mut max_txid = snapshot_last_tx;
        for segment in storage.read_segments()? {
            let (frames, consumed) = record::decode_all(&segment);
            info.torn_bytes += (segment.len() - consumed) as u64;
            // Records of the transaction currently being read, buffered
            // until its terminator decides their fate. One transaction
            // never spans segments (the log only rotates at quiesce
            // points), so a segment end discards any open tail.
            let mut pending: Vec<Replay> = Vec::new();
            let mut pending_txid = 0u64;
            for frame in frames {
                max_txid = max_txid.max(frame.txid);
                if frame.txid != pending_txid && !pending.is_empty() {
                    // Defensive: a new transaction began while another
                    // was unterminated — drop the orphan.
                    info.discarded_records += pending.len() as u64;
                    pending.clear();
                }
                pending_txid = frame.txid;
                match frame.replay {
                    Replay::Commit => {
                        if frame.txid > snapshot_last_tx {
                            info.replayed_records += pending.len() as u64;
                            for rec in pending.drain(..) {
                                catalog.apply_redo(rec)?;
                            }
                            info.replayed_txs += 1;
                            info.last_committed_tx = info.last_committed_tx.max(frame.txid);
                        } else {
                            info.discarded_records += pending.len() as u64;
                            pending.clear();
                        }
                    }
                    Replay::Abort => {
                        info.discarded_records += pending.len() as u64;
                        pending.clear();
                    }
                    rec => {
                        if frame.txid > snapshot_last_tx {
                            pending.push(rec);
                        } else {
                            info.discarded_records += 1;
                        }
                    }
                }
            }
            info.discarded_records += pending.len() as u64;
        }
        let wal = Self {
            wal_sync: Mutex::new(SyncTail {
                storage,
                durable_lsn: 0,
                poisoned: false,
            })
            .with_rank(LOCK_RANK_WAL_SYNC),
            wal_buf: Mutex::new(WalBuf::default()).with_rank(LOCK_RANK_WAL_BUF),
            next_txid: AtomicU64::new(max_txid + 1),
            last_committed: AtomicU64::new(info.last_committed_tx),
            recovery: info,
        };
        Ok((wal, catalog))
    }

    /// What recovery found at open.
    pub(crate) fn recovery_info(&self) -> RecoveryInfo {
        self.recovery
    }

    /// Allocate the next transaction id (monotonic across reopens:
    /// recovery seeds the counter past every id seen in the log).
    pub(crate) fn begin_tx(&self) -> u64 {
        self.next_txid.fetch_add(1, Ordering::Relaxed)
    }

    /// Highest transaction id whose COMMIT was appended.
    pub(crate) fn note_committed(&self, txid: u64) {
        self.last_committed.fetch_max(txid, Ordering::Relaxed);
    }

    /// Highest committed transaction id (recovered or since appended).
    pub(crate) fn last_committed(&self) -> u64 {
        self.last_committed.load(Ordering::Relaxed)
    }

    /// Total bytes appended since open (bench bookkeeping).
    pub(crate) fn appended_bytes(&self) -> u64 {
        self.wal_buf.lock().next_lsn
    }

    /// Append encoded frames to the log buffer, returning the LSN a
    /// subsequent `Wal::sync_to` must reach to make them durable.
    /// `commits` is how many COMMIT frames `bytes` carries (the
    /// group-commit batch accounting).
    pub(crate) fn append_bytes(&self, bytes: &[u8], commits: u64) -> u64 {
        let mut buf = self.wal_buf.lock();
        buf.buf.extend_from_slice(bytes);
        buf.next_lsn += bytes.len() as u64;
        buf.pending_commits += commits;
        buf.next_lsn
    }

    /// Drain the buffer to storage and fsync once, under an already
    /// held sync lock. Returns `(fsyncs, commits batched)` — batched is
    /// the number of commits beyond the first that this single fsync
    /// made durable.
    fn flush_pending(&self, tail: &mut SyncTail) -> DbResult<(u64, u64)> {
        let (bytes, upto, commits) = {
            let mut buf = self.wal_buf.lock();
            if buf.next_lsn == tail.durable_lsn {
                return Ok((0, 0));
            }
            (
                std::mem::take(&mut buf.buf),
                buf.next_lsn,
                std::mem::replace(&mut buf.pending_commits, 0),
            )
        };
        if let Err(e) = tail
            .storage
            .append(&bytes)
            .and_then(|()| tail.storage.sync())
        {
            tail.poisoned = true;
            return Err(e);
        }
        tail.durable_lsn = upto;
        Ok((1, commits.saturating_sub(1)))
    }

    /// Make everything up to `lsn` durable — the group-commit entry
    /// point. The first committer in becomes the leader and fsyncs for
    /// everyone queued behind it; a follower whose LSN the leader
    /// already covered returns `(0, 0)` without touching storage.
    pub(crate) fn sync_to(&self, lsn: u64) -> DbResult<(u64, u64)> {
        let mut tail = self.wal_sync.lock();
        let mut fsyncs = 0;
        let mut batched = 0;
        while tail.durable_lsn < lsn {
            if tail.poisoned {
                return Err(DbError::Persist(
                    "wal poisoned by an earlier sync failure; commits are no longer durable".into(),
                ));
            }
            let (f, b) = self.flush_pending(&mut tail)?;
            fsyncs += f;
            batched += b;
        }
        Ok((fsyncs, batched))
    }

    /// Seal the current segment and start a fresh one (checkpoint step:
    /// called at a quiesce point, under the transaction guard).
    pub(crate) fn rotate(&self) -> DbResult<()> {
        let mut tail = self.wal_sync.lock();
        if tail.poisoned {
            return Err(DbError::Persist(
                "wal poisoned by an earlier sync failure; checkpoint aborted".into(),
            ));
        }
        self.flush_pending(&mut tail)?;
        tail.storage.rotate()
    }

    /// Install a checkpoint snapshot, then — only on success — delete
    /// the sealed segments it covers. A failed install leaves every
    /// segment in place: recovery still has the old snapshot plus the
    /// full log, so nothing committed is lost.
    pub(crate) fn install_snapshot(&self, doc: &[u8]) -> DbResult<()> {
        let mut tail = self.wal_sync.lock();
        if tail.poisoned {
            return Err(DbError::Persist(
                "wal poisoned by an earlier sync failure; checkpoint aborted".into(),
            ));
        }
        tail.storage.install_snapshot(doc)?;
        tail.storage.drop_sealed()
    }
}

/// Encode a checkpoint snapshot: `"<last_tx>\n<catalog JSON>"`.
pub(crate) fn encode_snapshot(last_tx: u64, catalog: &Catalog) -> DbResult<Vec<u8>> {
    let json = serde_json::to_string(catalog)
        .map_err(|e| DbError::Persist(format!("snapshot encode: {e}")))?;
    Ok(format!("{last_tx}\n{json}").into_bytes())
}

/// Decode a checkpoint snapshot into the catalog (indexes rebuilt) and
/// the last transaction it covers.
fn decode_snapshot(bytes: &[u8]) -> DbResult<(Catalog, u64)> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| DbError::Persist("snapshot is not valid UTF-8".into()))?;
    let (head, json) = text
        .split_once('\n')
        .ok_or_else(|| DbError::Persist("snapshot missing its txid header".into()))?;
    let last_tx = head
        .trim()
        .parse::<u64>()
        .map_err(|_| DbError::Persist("snapshot header is not a transaction id".into()))?;
    let mut catalog: Catalog = serde_json::from_str(json)
        .map_err(|e| DbError::Persist(format!("snapshot decode: {e}")))?;
    catalog.rebuild_indexes();
    Ok((catalog, last_tx))
}

#[cfg(test)]
mod tests {
    use super::record::WalAppender;
    use super::storage::{MemStorage, WalFaults};
    use super::*;
    use crate::schema::{ColType, Column, Schema};
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![Column {
            name: "a".into(),
            ctype: ColType::Int,
        }])
        .unwrap()
    }

    /// Encode one committed transaction: CREATE TABLE t + one row.
    fn tx_bytes(txid: u64, v: i64) -> Vec<u8> {
        let mut w = WalAppender::new(txid);
        if txid == 1 {
            w.create_table("t", &schema());
        }
        w.append_rows("t", &[vec![Value::Int(v)]]);
        w.commit();
        w.into_buf()
    }

    #[test]
    fn open_empty_storage_is_a_fresh_database() {
        let (storage, _h) = MemStorage::new();
        let (wal, catalog) = Wal::open(Box::new(storage)).unwrap();
        assert!(catalog.table_names().is_empty());
        assert_eq!(wal.recovery_info(), RecoveryInfo::default());
        assert_eq!(wal.begin_tx(), 1);
        assert_eq!(wal.begin_tx(), 2);
    }

    #[test]
    fn committed_transactions_replay_and_txids_stay_monotonic() {
        let (storage, h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let t1 = wal.begin_tx();
        let lsn = wal.append_bytes(&tx_bytes(t1, 7), 1);
        wal.note_committed(t1);
        wal.sync_to(lsn).unwrap();

        let (storage, _h2) = MemStorage::from_persisted(h.persisted());
        let (wal2, catalog) = Wal::open(Box::new(storage)).unwrap();
        assert_eq!(catalog.get("t").unwrap().rows(), &[vec![Value::Int(7)]]);
        let info = wal2.recovery_info();
        assert_eq!(info.replayed_txs, 1);
        assert_eq!(info.replayed_records, 2);
        assert_eq!(info.last_committed_tx, t1);
        assert!(wal2.begin_tx() > t1, "txids never repeat across reopens");
    }

    #[test]
    fn uncommitted_tail_is_discarded_not_applied() {
        let (storage, h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let t1 = wal.begin_tx();
        wal.append_bytes(&tx_bytes(t1, 7), 1);
        // Transaction 2 never commits: its frames reach the log but no
        // terminator does.
        let t2 = wal.begin_tx();
        let mut w = WalAppender::new(t2);
        w.append_rows("t", &[vec![Value::Int(99)]]);
        let lsn = wal.append_bytes(&w.into_buf(), 0);
        wal.sync_to(lsn).unwrap();

        let (storage, _h2) = MemStorage::from_persisted(h.persisted());
        let (wal2, catalog) = Wal::open(Box::new(storage)).unwrap();
        assert_eq!(catalog.get("t").unwrap().rows(), &[vec![Value::Int(7)]]);
        assert_eq!(wal2.recovery_info().discarded_records, 1);
    }

    #[test]
    fn aborted_transactions_never_resurrect() {
        let (storage, h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let t1 = wal.begin_tx();
        wal.append_bytes(&tx_bytes(t1, 7), 1);
        let t2 = wal.begin_tx();
        let mut w = WalAppender::new(t2);
        w.append_rows("t", &[vec![Value::Int(99)]]);
        w.abort();
        let lsn = wal.append_bytes(&w.into_buf(), 0);
        wal.sync_to(lsn).unwrap();

        let (storage, _h2) = MemStorage::from_persisted(h.persisted());
        let (_wal2, catalog) = Wal::open(Box::new(storage)).unwrap();
        assert_eq!(catalog.get("t").unwrap().rows(), &[vec![Value::Int(7)]]);
    }

    #[test]
    fn group_commit_accounting_is_deterministic() {
        // Three commits buffered before anyone syncs: the leader's one
        // fsync covers all three — 1 fsync, 2 batched.
        let (storage, _h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let mut last = 0;
        for v in 0..3 {
            let txid = wal.begin_tx();
            last = wal.append_bytes(&tx_bytes(txid, v), 1);
        }
        assert_eq!(wal.sync_to(last).unwrap(), (1, 2));
        // Already durable: a follower arriving late does nothing.
        assert_eq!(wal.sync_to(last).unwrap(), (0, 0));
    }

    #[test]
    fn sync_failure_poisons_the_wal() {
        let (storage, _h) = MemStorage::with_faults(WalFaults::none().fail_sync_after(0));
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let txid = wal.begin_tx();
        let lsn = wal.append_bytes(&tx_bytes(txid, 1), 1);
        assert!(wal.sync_to(lsn).is_err());
        // Every later durability request fails too — no silent recovery
        // after a lost fsync.
        let txid = wal.begin_tx();
        let lsn = wal.append_bytes(&tx_bytes(txid, 2), 1);
        assert!(wal.sync_to(lsn).is_err());
        assert!(wal.rotate().is_err());
        assert!(wal.install_snapshot(b"0\n{}").is_err());
    }

    #[test]
    fn snapshot_round_trip_and_replay_gating() {
        let (storage, h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let t1 = wal.begin_tx();
        let lsn = wal.append_bytes(&tx_bytes(t1, 7), 1);
        wal.sync_to(lsn).unwrap();

        // Checkpoint: snapshot covering t1, then a post-snapshot tx.
        let (storage, h2) = MemStorage::from_persisted(h.persisted());
        let (wal2, catalog) = Wal::open(Box::new(storage)).unwrap();
        wal2.rotate().unwrap();
        wal2.install_snapshot(&encode_snapshot(t1, &catalog).unwrap())
            .unwrap();
        let t2 = wal2.begin_tx();
        let lsn = wal2.append_bytes(&tx_bytes(t2, 8), 1);
        wal2.sync_to(lsn).unwrap();

        let (storage, _h3) = MemStorage::from_persisted(h2.persisted());
        let (wal3, catalog) = Wal::open(Box::new(storage)).unwrap();
        assert_eq!(
            catalog.get("t").unwrap().rows(),
            &[vec![Value::Int(7)], vec![Value::Int(8)]]
        );
        let info = wal3.recovery_info();
        assert_eq!(info.snapshot_last_tx, t1);
        assert_eq!(info.replayed_txs, 1, "only the post-snapshot tx replays");
        assert_eq!(info.last_committed_tx, t2);
    }

    #[test]
    fn torn_snapshot_install_keeps_old_snapshot_and_segments() {
        let (storage, h) = MemStorage::new();
        let (wal, _catalog) = Wal::open(Box::new(storage)).unwrap();
        let t1 = wal.begin_tx();
        let lsn = wal.append_bytes(&tx_bytes(t1, 7), 1);
        wal.sync_to(lsn).unwrap();

        // Reopen, then checkpoint into a storage whose snapshot install
        // crashes before the rename.
        let (storage, h2) = MemStorage::from_persisted(h.persisted());
        let (wal2, catalog2) = Wal::open(Box::new(storage)).unwrap();
        wal2.rotate().unwrap();
        h2.set_faults(WalFaults::none().torn_snapshot());
        let doc = encode_snapshot(t1, &catalog2).unwrap();
        assert!(wal2.install_snapshot(&doc).is_err());
        // drop_sealed must NOT have run: the old (absent) snapshot and
        // the full log both survive.
        let p = h2.persisted();
        assert!(p.snapshot.is_none());
        assert_eq!(p.segments.len(), 1);

        let (storage, _h3) = MemStorage::from_persisted(p);
        let (_wal3, recovered) = Wal::open(Box::new(storage)).unwrap();
        assert_eq!(
            recovered.get("t").unwrap().rows(),
            &[vec![Value::Int(7)]],
            "old snapshot + full log still recover every committed tx"
        );
    }
}
