//! WAL storage backends: real fsync'd files and a fault-injectable
//! in-memory twin.
//!
//! The [`WalStorage`] trait is the narrow waist between the group-commit
//! writer and the bytes' resting place: append to the open segment,
//! `sync` it durable, `rotate` to a fresh segment at a checkpoint, and
//! install/read the snapshot atomically. Two backends implement it:
//!
//! * [`FileStorage`] — `std::fs` files under one directory
//!   (`wal-NNNNNN.log` segments + `snapshot.db`), synced with
//!   `sync_data`, snapshot installed by temp + fsync + rename (a crash
//!   mid-install never destroys the previous snapshot).
//! * [`MemStorage`] — an in-memory twin with a [`WalFaults`] plan in
//!   the style of `sdm-pfs`'s `FaultPlan`: crash-at-byte-N (appends
//!   tear mid-frame and the sync fails), sync failures after a count,
//!   and torn snapshot installs. The crash tests drive random workloads
//!   through it and recover from every byte prefix of what "survived".
//!
//! Every durability-bearing filesystem call in `sdm-metadb` lives in
//! this file or `persist.rs` — machine-checked by `sdm-analyze` rule
//! `wal-ordering`.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DbError, DbResult};

/// Where WAL bytes rest. Methods take `&mut self`: the caller (the
/// group-commit writer) serializes access behind its sync lock.
pub trait WalStorage: Send + std::fmt::Debug {
    /// Append `bytes` to the open segment (no durability implied).
    fn append(&mut self, bytes: &[u8]) -> DbResult<()>;
    /// Make everything appended so far durable (the fsync).
    fn sync(&mut self) -> DbResult<()>;
    /// Seal the open segment and start a fresh one (checkpoint step 2).
    fn rotate(&mut self) -> DbResult<()>;
    /// Delete sealed segments — only called *after* a snapshot covering
    /// them was durably installed (checkpoint step 4).
    fn drop_sealed(&mut self) -> DbResult<()>;
    /// All surviving segments, oldest first (recovery input).
    fn read_segments(&self) -> DbResult<Vec<Vec<u8>>>;
    /// The installed snapshot, if any (recovery input).
    fn read_snapshot(&self) -> DbResult<Option<Vec<u8>>>;
    /// Atomically replace the snapshot: after this returns, recovery
    /// sees either the old snapshot or the new one, never a torn mix.
    fn install_snapshot(&mut self, bytes: &[u8]) -> DbResult<()>;
}

// ------------------------------------------------------------------ files

/// Write `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over `path`, fsync the directory. A crash at any point
/// leaves either the old file or the new one, never a torn mix — this
/// is both the checkpoint-install primitive and the fix for
/// `Database::save`'s old non-atomic whole-file write.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp_name = path.file_name().unwrap_or_default().to_os_string();
    tmp_name.push(".tmp");
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => PathBuf::from(&tmp_name),
    };
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    if let Some(d) = dir {
        // Make the rename itself durable: fsync the directory entry.
        File::open(d)?.sync_all()?;
    }
    Ok(())
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> DbError {
    DbError::Persist(format!("{what} {}: {e}", path.display()))
}

/// File-backed WAL storage: one directory holding `wal-NNNNNN.log`
/// segments plus `snapshot.db`. Opening always starts a *fresh* segment
/// (numbered after the newest survivor), so a torn tail left by a crash
/// stays quarantined at the end of its own segment — recovery skips it
/// there and never appends fresh records after garbage.
#[derive(Debug)]
pub struct FileStorage {
    dir: PathBuf,
    /// Sequence number of the open segment (created lazily on first
    /// append, so re-opening a database without writing leaves no empty
    /// files behind).
    seq: u64,
    file: Option<File>,
}

const SNAPSHOT_NAME: &str = "snapshot.db";

impl FileStorage {
    /// Open (or create) the WAL directory.
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| io_err("create wal dir", &dir, e))?;
        let seq = Self::segment_seqs(&dir)?.last().copied().unwrap_or(0) + 1;
        Ok(Self {
            dir,
            seq,
            file: None,
        })
    }

    fn segment_path(dir: &Path, seq: u64) -> PathBuf {
        dir.join(format!("wal-{seq:06}.log"))
    }

    /// Sorted sequence numbers of the existing segment files.
    fn segment_seqs(dir: &Path) -> DbResult<Vec<u64>> {
        let mut seqs = Vec::new();
        let entries = fs::read_dir(dir).map_err(|e| io_err("read wal dir", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read wal dir", dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = name
                .strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();
        Ok(seqs)
    }
}

impl WalStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> DbResult<()> {
        let path = Self::segment_path(&self.dir, self.seq);
        if self.file.is_none() {
            let f = OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_err("open wal segment", &path, e))?;
            self.file = Some(f);
        }
        // analyze:allow(unwrap: the branch above just filled the slot)
        let f = self.file.as_mut().expect("segment file open");
        f.write_all(bytes)
            .map_err(|e| io_err("append wal segment", &path, e))
    }

    fn sync(&mut self) -> DbResult<()> {
        if let Some(f) = &self.file {
            let path = Self::segment_path(&self.dir, self.seq);
            f.sync_data()
                .map_err(|e| io_err("sync wal segment", &path, e))?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> DbResult<()> {
        self.sync()?;
        self.file = None;
        self.seq += 1;
        Ok(())
    }

    fn drop_sealed(&mut self) -> DbResult<()> {
        for seq in Self::segment_seqs(&self.dir)? {
            if seq < self.seq {
                let path = Self::segment_path(&self.dir, seq);
                fs::remove_file(&path).map_err(|e| io_err("remove wal segment", &path, e))?;
            }
        }
        Ok(())
    }

    fn read_segments(&self) -> DbResult<Vec<Vec<u8>>> {
        let mut segments = Vec::new();
        for seq in Self::segment_seqs(&self.dir)? {
            let path = Self::segment_path(&self.dir, seq);
            segments.push(fs::read(&path).map_err(|e| io_err("read wal segment", &path, e))?);
        }
        Ok(segments)
    }

    fn read_snapshot(&self) -> DbResult<Option<Vec<u8>>> {
        let path = self.dir.join(SNAPSHOT_NAME);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read snapshot", &path, e)),
        }
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> DbResult<()> {
        let path = self.dir.join(SNAPSHOT_NAME);
        write_atomic(&path, bytes).map_err(|e| io_err("install snapshot", &path, e))
    }
}

// ----------------------------------------------------------------- memory

/// Crash/fault plan for [`MemStorage`], in the builder style of
/// `sdm-pfs`'s `FaultPlan`: construct one, chain the faults to inject,
/// and hand it to [`MemStorage::with_faults`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WalFaults {
    /// Total append budget: bytes beyond this tear off mid-frame and
    /// the append reports the crash.
    crash_after_bytes: Option<u64>,
    /// Syncs after this many successful ones fail (the fsync that never
    /// returned).
    fail_sync_after: Option<u64>,
    /// Snapshot installs "crash before the rename": the old snapshot
    /// survives and the install errors.
    torn_snapshot: bool,
}

impl WalFaults {
    /// No injected faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Tear the log after `n` total appended bytes: the overflowing
    /// append writes only the bytes that fit (a torn frame) and fails.
    pub fn crash_after_bytes(mut self, n: u64) -> Self {
        self.crash_after_bytes = Some(n);
        self
    }

    /// Let `n` syncs succeed, then fail every one after.
    pub fn fail_sync_after(mut self, n: u64) -> Self {
        self.fail_sync_after = Some(n);
        self
    }

    /// Snapshot installs keep the old snapshot and report failure — the
    /// crash landing between writing the temp file and the rename.
    pub fn torn_snapshot(mut self) -> Self {
        self.torn_snapshot = true;
        self
    }
}

/// Everything a [`MemStorage`] has "persisted": what recovery would see
/// after a crash at this instant.
#[derive(Debug, Clone, Default)]
pub struct MemPersisted {
    /// The installed snapshot, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Sealed segments followed by the open segment, oldest first.
    pub segments: Vec<Vec<u8>>,
}

impl MemPersisted {
    /// All segment bytes concatenated — the single byte stream the
    /// cut-at-every-offset crash tests slice.
    pub fn log_bytes(&self) -> Vec<u8> {
        self.segments.concat()
    }
}

#[derive(Debug, Default)]
struct MemInner {
    sealed: Vec<Vec<u8>>,
    current: Vec<u8>,
    snapshot: Option<Vec<u8>>,
    faults: WalFaults,
    appended: u64,
    syncs: u64,
    crashed: bool,
}

/// Fault-injectable in-memory [`WalStorage`]. State is shared with a
/// [`MemHandle`] so tests can photograph "what survived the crash" and
/// rebuild a storage from any mutilation of it.
#[derive(Debug)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

/// Test-side handle onto a [`MemStorage`]'s shared state.
#[derive(Debug, Clone)]
pub struct MemHandle {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// An empty storage with no faults.
    pub fn new() -> (Self, MemHandle) {
        Self::with_faults(WalFaults::none())
    }

    /// An empty storage with the given fault plan.
    pub fn with_faults(faults: WalFaults) -> (Self, MemHandle) {
        let inner = Arc::new(Mutex::new(MemInner {
            faults,
            ..MemInner::default()
        }));
        (
            Self {
                inner: Arc::clone(&inner),
            },
            MemHandle { inner },
        )
    }

    /// Reconstruct a storage from a crash survivor's persisted state
    /// (the recovery side of a crash test). The surviving segments are
    /// sealed; appends go to a fresh segment, as after a real reopen.
    pub fn from_persisted(p: MemPersisted) -> (Self, MemHandle) {
        let inner = Arc::new(Mutex::new(MemInner {
            sealed: p.segments,
            snapshot: p.snapshot,
            ..MemInner::default()
        }));
        (
            Self {
                inner: Arc::clone(&inner),
            },
            MemHandle { inner },
        )
    }
}

impl MemHandle {
    /// Photograph the persisted state (snapshot + segments) as recovery
    /// would find it after a crash right now.
    pub fn persisted(&self) -> MemPersisted {
        let inner = self.inner.lock();
        let mut segments = inner.sealed.clone();
        if !inner.current.is_empty() {
            segments.push(inner.current.clone());
        }
        MemPersisted {
            snapshot: inner.snapshot.clone(),
            segments,
        }
    }

    /// Total bytes in the log right now (cut-point bookkeeping).
    pub fn log_len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.sealed.iter().map(|s| s.len() as u64).sum::<u64>() + inner.current.len() as u64
    }

    /// Swap the fault plan — lets a test set up cleanly and only then
    /// arm the fault.
    pub fn set_faults(&self, faults: WalFaults) {
        self.inner.lock().faults = faults;
    }
}

impl WalStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DbError::Persist("wal storage crashed (injected)".into()));
        }
        if let Some(cap) = inner.faults.crash_after_bytes {
            let room = cap.saturating_sub(inner.appended) as usize;
            if bytes.len() > room {
                // Torn write: the prefix reaches "disk", the rest — and
                // the acknowledgement — never do.
                let kept = bytes[..room].to_vec();
                inner.current.extend_from_slice(&kept);
                inner.appended += room as u64;
                inner.crashed = true;
                return Err(DbError::Persist(format!(
                    "wal append tore after {cap} bytes (injected)"
                )));
            }
        }
        inner.appended += bytes.len() as u64;
        inner.current.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DbError::Persist("wal storage crashed (injected)".into()));
        }
        if let Some(n) = inner.faults.fail_sync_after {
            if inner.syncs >= n {
                inner.crashed = true;
                return Err(DbError::Persist(format!("wal sync {n} failed (injected)")));
            }
        }
        inner.syncs += 1;
        Ok(())
    }

    fn rotate(&mut self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DbError::Persist("wal storage crashed (injected)".into()));
        }
        // An empty open segment seals to nothing, matching the file
        // backend's lazy segment creation.
        if !inner.current.is_empty() {
            let current = std::mem::take(&mut inner.current);
            inner.sealed.push(current);
        }
        Ok(())
    }

    fn drop_sealed(&mut self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DbError::Persist("wal storage crashed (injected)".into()));
        }
        inner.sealed.clear();
        Ok(())
    }

    fn read_segments(&self) -> DbResult<Vec<Vec<u8>>> {
        let inner = self.inner.lock();
        let mut segments = inner.sealed.clone();
        if !inner.current.is_empty() {
            segments.push(inner.current.clone());
        }
        Ok(segments)
    }

    fn read_snapshot(&self) -> DbResult<Option<Vec<u8>>> {
        Ok(self.inner.lock().snapshot.clone())
    }

    fn install_snapshot(&mut self, bytes: &[u8]) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DbError::Persist("wal storage crashed (injected)".into()));
        }
        if inner.faults.torn_snapshot {
            inner.crashed = true;
            return Err(DbError::Persist(
                "snapshot install crashed before rename (injected)".into(),
            ));
        }
        inner.snapshot = Some(bytes.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_storage_round_trips_segments_and_snapshot() {
        let dir = tempfile::tempdir().unwrap();
        let mut s = FileStorage::open(dir.path()).unwrap();
        assert!(s.read_snapshot().unwrap().is_none());
        assert!(s.read_segments().unwrap().is_empty());
        s.append(b"abc").unwrap();
        s.append(b"def").unwrap();
        s.sync().unwrap();
        s.install_snapshot(b"snap1").unwrap();
        assert_eq!(s.read_snapshot().unwrap().as_deref(), Some(&b"snap1"[..]));
        assert_eq!(s.read_segments().unwrap(), vec![b"abcdef".to_vec()]);

        // Reopen: the old segment survives; appends go to a new one.
        let mut s2 = FileStorage::open(dir.path()).unwrap();
        s2.append(b"ghi").unwrap();
        s2.sync().unwrap();
        assert_eq!(
            s2.read_segments().unwrap(),
            vec![b"abcdef".to_vec(), b"ghi".to_vec()]
        );
        // Rotate + drop_sealed keeps only segments at/after the open one.
        s2.rotate().unwrap();
        s2.install_snapshot(b"snap2").unwrap();
        s2.drop_sealed().unwrap();
        assert!(s2.read_segments().unwrap().is_empty());
        assert_eq!(s2.read_snapshot().unwrap().as_deref(), Some(&b"snap2"[..]));
    }

    #[test]
    fn file_snapshot_install_is_atomic_over_existing() {
        let dir = tempfile::tempdir().unwrap();
        let mut s = FileStorage::open(dir.path()).unwrap();
        s.install_snapshot(b"old").unwrap();
        s.install_snapshot(b"new").unwrap();
        assert_eq!(s.read_snapshot().unwrap().as_deref(), Some(&b"new"[..]));
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(dir.path())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
    }

    #[test]
    fn mem_crash_after_bytes_tears_the_append() {
        let (mut s, h) = MemStorage::with_faults(WalFaults::none().crash_after_bytes(5));
        s.append(b"abc").unwrap();
        assert!(s.append(b"defg").is_err());
        // 5-byte budget: "abc" + the first 2 bytes of the torn append.
        assert_eq!(h.persisted().log_bytes(), b"abcde".to_vec());
        // Everything after the crash fails too.
        assert!(s.sync().is_err());
        assert!(s.append(b"x").is_err());
    }

    #[test]
    fn mem_sync_failure_after_count() {
        let (mut s, _h) = MemStorage::with_faults(WalFaults::none().fail_sync_after(2));
        s.append(b"a").unwrap();
        s.sync().unwrap();
        s.sync().unwrap();
        assert!(s.sync().is_err());
    }

    #[test]
    fn mem_torn_snapshot_keeps_the_old_one() {
        let (mut s, h) = MemStorage::new();
        s.install_snapshot(b"old").unwrap();
        let (mut s2, h2) = MemStorage::from_persisted(h.persisted());
        h2.set_faults(WalFaults::none().torn_snapshot());
        assert!(s2.install_snapshot(b"new").is_err());
        assert_eq!(h2.persisted().snapshot.as_deref(), Some(&b"old"[..]));
    }

    #[test]
    fn mem_reconstruction_seals_survivor_segments() {
        let (mut s, h) = MemStorage::new();
        s.append(b"one").unwrap();
        s.rotate().unwrap();
        s.append(b"two").unwrap();
        let p = h.persisted();
        assert_eq!(p.segments, vec![b"one".to_vec(), b"two".to_vec()]);
        let (mut s2, h2) = MemStorage::from_persisted(p);
        s2.append(b"three").unwrap();
        assert_eq!(
            h2.persisted().segments,
            vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
        );
    }
}
