//! Row storage and secondary indexes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::Value;

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A secondary-index definition (`CREATE INDEX name ON t (column)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Indexed column name.
    pub column: String,
}

/// Lazily built hash indexes: column → (value key → row positions).
///
/// The cache is rebuilt whenever the table's mutation `version` moves —
/// simpler than incremental maintenance and equivalent for SDM's
/// read-mostly metadata tables. Skipped by serde; a freshly loaded
/// table rebuilds on first use.
#[derive(Debug, Clone, Default)]
struct IndexCache {
    built_at: u64,
    maps: HashMap<String, HashMap<String, Vec<usize>>>,
}

/// A heap table: schema plus rows in insertion order, with optional
/// secondary hash indexes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    rows: Vec<Row>,
    /// Declared secondary indexes (definitions persist; the hash maps
    /// themselves rebuild lazily).
    #[serde(default)]
    indexes: Vec<IndexDef>,
    /// Mutation counter; bumped by anything that may change rows.
    #[serde(skip)]
    version: u64,
    #[serde(skip)]
    cache: IndexCache,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            version: 1,
            cache: IndexCache::default(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate, coerce, and append a row.
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        let row = self.schema.check_row(row)?;
        self.rows.push(row);
        self.version += 1;
        Ok(())
    }

    /// All rows, insertion-ordered.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable row access for UPDATE. Conservatively invalidates the
    /// index cache (the caller may rewrite anything).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        self.version += 1;
        &mut self.rows
    }

    /// Delete rows matching `pred`; returns how many were removed.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| !pred(r));
        self.version += 1;
        before - self.rows.len()
    }

    /// Declare a secondary index. Errors if the column is unknown or the
    /// name is taken.
    pub fn create_index(&mut self, name: &str, column: &str) -> DbResult<()> {
        self.schema.index_of(column)?;
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
        {
            return Err(DbError::IndexExists(name.to_string()));
        }
        self.indexes.push(IndexDef {
            name: name.to_string(),
            column: column.to_string(),
        });
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        let before = self.indexes.len();
        self.indexes.retain(|i| !i.name.eq_ignore_ascii_case(name));
        if self.indexes.len() == before {
            return Err(DbError::NoSuchIndex(name.to_string()));
        }
        self.cache.maps.clear();
        Ok(())
    }

    /// Declared index definitions.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Whether some index covers `column`.
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexes
            .iter()
            .any(|i| i.column.eq_ignore_ascii_case(column))
    }

    /// Equality probe through an index on `column`: positions of rows
    /// whose column ≈ `value` (candidates share a hash bucket under SQL
    /// equality; callers re-verify with the real predicate). `None` if
    /// no index covers `column`; NULL probes return no rows.
    pub fn index_lookup(&mut self, column: &str, value: &Value) -> Option<Vec<usize>> {
        if !self.has_index_on(column) {
            return None;
        }
        if value.is_null() {
            return Some(Vec::new());
        }
        self.ensure_cache();
        let key = column.to_ascii_lowercase();
        Some(
            self.cache.maps[&key]
                .get(&value.index_key())
                .cloned()
                .unwrap_or_default(),
        )
    }

    fn ensure_cache(&mut self) {
        if self.cache.built_at == self.version
            && self
                .indexes
                .iter()
                .all(|i| self.cache.maps.contains_key(&i.column.to_ascii_lowercase()))
        {
            return;
        }
        self.cache.maps.clear();
        for def in &self.indexes {
            let col = self
                .schema
                .index_of(&def.column)
                .expect("index column validated at creation");
            let mut map: HashMap<String, Vec<usize>> = HashMap::new();
            for (pos, row) in self.rows.iter().enumerate() {
                if row[col].is_null() {
                    continue; // NULL never matches an equality probe
                }
                map.entry(row[col].index_key()).or_default().push(pos);
            }
            self.cache.maps.insert(def.column.to_ascii_lowercase(), map);
        }
        self.cache.built_at = self.version;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column};

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                Column {
                    name: "k".into(),
                    ctype: ColType::Int,
                },
                Column {
                    name: "v".into(),
                    ctype: ColType::Text,
                },
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::from("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][1].as_str(), Some("b"));
    }

    #[test]
    fn insert_validates() {
        let mut t = table();
        assert!(t
            .insert(vec![Value::from("bad"), Value::from("a")])
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn delete_where_counts() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::from("x")]).unwrap();
        }
        let n = t.delete_where(|r| r[0].as_i64().unwrap() % 2 == 0);
        assert_eq!(n, 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_lookup_finds_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i % 3), Value::from("x")]).unwrap();
        }
        t.create_index("ik", "k").unwrap();
        let hits = t.index_lookup("k", &Value::Int(1)).unwrap();
        assert_eq!(hits, vec![1, 4, 7]);
        // Unindexed column: no index answer.
        assert!(t.index_lookup("v", &Value::from("x")).is_none());
    }

    #[test]
    fn index_tracks_mutations() {
        let mut t = table();
        t.insert(vec![Value::Int(7), Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
        t.insert(vec![Value::Int(7), Value::from("b")]).unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 2);
        t.delete_where(|r| r[1].as_str() == Some("a"));
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
    }

    #[test]
    fn index_cross_type_numeric_probe() {
        let mut t = table();
        t.insert(vec![Value::Int(2), Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        // SQL: 2 = 2.0, so a Double probe must find the Int row.
        assert_eq!(t.index_lookup("k", &Value::Double(2.0)).unwrap(), vec![0]);
    }

    #[test]
    fn null_probe_returns_nothing() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        assert!(t.index_lookup("k", &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", "k").unwrap();
        assert!(matches!(
            t.create_index("i", "v"),
            Err(DbError::IndexExists(_))
        ));
        assert!(matches!(
            t.create_index("j", "nope"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn drop_index_removes() {
        let mut t = table();
        t.create_index("i", "k").unwrap();
        t.drop_index("i").unwrap();
        assert!(t.index_lookup("k", &Value::Int(0)).is_none());
        assert!(matches!(t.drop_index("i"), Err(DbError::NoSuchIndex(_))));
    }
}
