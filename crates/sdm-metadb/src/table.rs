//! Row storage and secondary indexes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::{IndexKey, Value};

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A secondary-index definition (`CREATE INDEX name ON t (column)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Indexed column name.
    pub column: String,
}

/// One maintained secondary index: the resolved column position plus the
/// hash map from canonical key to **ascending** row positions.
///
/// The maps are maintained *incrementally*: INSERT appends the new
/// position to its bucket, DELETE drops removed positions and shifts the
/// survivors, UPDATE moves a position between buckets only when the
/// indexed cell actually changed. Nothing ever rebuilds a whole map on
/// the read path, and [`Table::index_lookup`] takes `&self` — probes run
/// under a shared lock. Buckets stay in ascending row order so an index
/// probe returns rows in the same order a full scan would.
///
/// NULL cells are never indexed (`NULL = x` is unknown, so an equality
/// probe can never return them).
#[derive(Debug, Clone, Default)]
struct IndexMap {
    col: usize,
    /// Buckets for numeric keys (canonical `f64` bits).
    num: HashMap<u64, Vec<usize>>,
    /// Buckets for text keys; probed through `Borrow<str>`, so a text
    /// probe never clones the probe string.
    text: HashMap<String, Vec<usize>>,
}

impl IndexMap {
    /// Build from scratch over `rows` (index creation and snapshot
    /// load — never the mutation path).
    fn build(col: usize, rows: &[Row]) -> Self {
        let mut m = IndexMap {
            col,
            ..IndexMap::default()
        };
        for (pos, row) in rows.iter().enumerate() {
            m.note_append(pos, row);
        }
        m
    }

    /// Borrowed bucket for a probe value (`None` for NULL and misses).
    fn bucket(&self, key: &IndexKey<'_>) -> Option<&Vec<usize>> {
        match key {
            IndexKey::Null => None,
            IndexKey::Num(b) => self.num.get(b),
            IndexKey::Text(s) => self.text.get(s.as_ref()),
        }
    }

    /// Remove `pos` from the bucket of `key`, dropping the bucket when
    /// it empties.
    fn remove_entry(&mut self, key: IndexKey<'_>, pos: usize) {
        let bucket = match &key {
            IndexKey::Null => return,
            IndexKey::Num(b) => self.num.get_mut(b),
            IndexKey::Text(s) => self.text.get_mut(s.as_ref()),
        };
        let Some(bucket) = bucket else { return };
        if let Ok(at) = bucket.binary_search(&pos) {
            bucket.remove(at);
        }
        if bucket.is_empty() {
            match key {
                IndexKey::Null => {}
                IndexKey::Num(b) => {
                    self.num.remove(&b);
                }
                IndexKey::Text(s) => {
                    self.text.remove(s.as_ref());
                }
            }
        }
    }

    /// Insert `pos` into the bucket of `key` at its sorted position
    /// (buckets stay ascending so probes return rows in scan order).
    fn insert_entry(&mut self, key: IndexKey<'_>, pos: usize) {
        let bucket = match key {
            IndexKey::Null => return,
            IndexKey::Num(b) => self.num.entry(b).or_default(),
            IndexKey::Text(s) => self.text.entry(s.into_owned()).or_default(),
        };
        let at = bucket.partition_point(|&q| q < pos);
        bucket.insert(at, pos);
    }

    /// All buckets, for position-shift passes.
    fn buckets_mut(&mut self) -> impl Iterator<Item = &mut Vec<usize>> {
        self.num.values_mut().chain(self.text.values_mut())
    }

    /// Record `row` appended at `pos` (which exceeds every indexed
    /// position, so pushing keeps the bucket ascending).
    fn note_append(&mut self, pos: usize, row: &Row) {
        let v = &row[self.col];
        match v.index_key() {
            IndexKey::Null => {}
            IndexKey::Num(b) => self.num.entry(b).or_default().push(pos),
            IndexKey::Text(s) => self.text.entry(s.into_owned()).or_default().push(pos),
        }
    }

    /// Forget the entry for `row` at `pos` (undo of an append; `pos` is
    /// the largest indexed position, sitting at its bucket's tail).
    fn forget_tail(&mut self, pos: usize, row: &Row) {
        self.remove_entry(row[self.col].index_key(), pos);
    }

    /// Drop `deleted` (ascending row positions) from every bucket and
    /// shift the surviving positions down past them. One pass per
    /// bucket entry — O(index entries + deleted), never a rebuild.
    fn note_delete(&mut self, deleted: &[usize]) {
        for bucket in self.buckets_mut() {
            let mut w = 0;
            for r in 0..bucket.len() {
                let p = bucket[r];
                match deleted.binary_search(&p) {
                    Ok(_) => {} // this row was deleted
                    Err(rank) => {
                        bucket[w] = p - rank; // rank = deleted positions below p
                        w += 1;
                    }
                }
            }
            bucket.truncate(w);
        }
        self.num.retain(|_, b| !b.is_empty());
        self.text.retain(|_, b| !b.is_empty());
    }

    /// Undo of [`IndexMap::note_delete`]: shift survivors back up past
    /// the re-inserted ascending `positions`, then index the restored
    /// rows. The two-pointer walk relies on buckets and `positions`
    /// both being ascending.
    fn note_insert_at(&mut self, entries: &[(usize, Row)]) {
        for bucket in self.buckets_mut() {
            let mut j = 0usize; // entries consumed so far for this bucket
            for p in bucket.iter_mut() {
                let mut f = *p + j;
                while j < entries.len() && entries[j].0 <= f {
                    j += 1;
                    f = *p + j;
                }
                *p = f;
            }
        }
        for (pos, row) in entries {
            self.insert_entry(row[self.col].index_key(), *pos);
        }
    }

    /// Move `pos` between buckets when an UPDATE changed the indexed
    /// cell. No-op when old and new key agree.
    fn note_update(&mut self, pos: usize, old: &Value, new: &Value) {
        let (old_key, new_key) = (old.index_key(), new.index_key());
        if old_key == new_key {
            return;
        }
        self.remove_entry(old_key, pos);
        self.insert_entry(new_key, pos);
    }
}

/// A heap table: schema plus rows in insertion order, with optional
/// secondary hash indexes maintained incrementally (`maps` parallels
/// `indexes`).
///
/// The maps are skipped by serde; the catalog rebuilds them on snapshot
/// load, before a loaded table serves its first probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    rows: Vec<Row>,
    /// Declared secondary indexes (definitions persist; the hash maps
    /// themselves are rebuilt on load).
    #[serde(default)]
    indexes: Vec<IndexDef>,
    #[serde(skip)]
    maps: Vec<IndexMap>,
}

/// Empty candidate list for probes that miss (a borrowed `&[]`).
const NO_ROWS: &[usize] = &[];

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            maps: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate, coerce, and append a row, patching each index map in
    /// place (O(#indexes), independent of table size).
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        let row = self.schema.check_row(row)?;
        let pos = self.rows.len();
        for m in &mut self.maps {
            m.note_append(pos, &row);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Undo of the last `n` [`Table::insert`]s: truncate the appended
    /// rows and pop their index entries. O(n · #indexes).
    pub(crate) fn undo_append(&mut self, n: usize) {
        for _ in 0..n {
            let pos = self.rows.len() - 1;
            let row = &self.rows[pos];
            for m in &mut self.maps {
                m.forget_tail(pos, row);
            }
            self.rows.pop();
        }
    }

    /// All rows, insertion-ordered.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Remove the rows at `positions` (ascending, deduplicated),
    /// returning them in the same order. Index maps are patched in
    /// place; untouched rows keep their relative order.
    pub fn delete_at(&mut self, positions: &[usize]) -> Vec<Row> {
        if positions.is_empty() {
            return Vec::new();
        }
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut removed = Vec::with_capacity(positions.len());
        let mut next = 0; // index into positions
        let mut w = 0;
        for r in 0..self.rows.len() {
            if next < positions.len() && positions[next] == r {
                removed.push(std::mem::take(&mut self.rows[r]));
                next += 1;
            } else {
                self.rows.swap(w, r);
                w += 1;
            }
        }
        self.rows.truncate(w);
        for m in &mut self.maps {
            m.note_delete(positions);
        }
        removed
    }

    /// Undo of [`Table::delete_at`]: restore `entries` (ascending by
    /// original position) to exactly where they were.
    pub(crate) fn insert_at(&mut self, entries: Vec<(usize, Row)>) {
        if entries.is_empty() {
            return;
        }
        for m in &mut self.maps {
            m.note_insert_at(&entries);
        }
        let mut merged = Vec::with_capacity(self.rows.len() + entries.len());
        let mut old = std::mem::take(&mut self.rows).into_iter();
        let mut entries = entries.into_iter().peekable();
        loop {
            if entries.peek().is_some_and(|(p, _)| *p == merged.len()) {
                merged.push(entries.next().expect("peeked").1);
            } else if let Some(row) = old.next() {
                merged.push(row);
            } else if let Some((_, row)) = entries.next() {
                merged.push(row); // restores past the current tail
            } else {
                break;
            }
        }
        self.rows = merged;
    }

    /// Delete rows matching `pred`; returns how many were removed.
    /// A predicate that matches nothing performs no index work at all.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let positions: Vec<usize> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| pred(r).then_some(i))
            .collect();
        self.delete_at(&positions).len()
    }

    /// Remove every row, returning them (DELETE without WHERE; the
    /// caller keeps the rows for undo).
    pub fn clear(&mut self) -> Vec<Row> {
        for m in &mut self.maps {
            m.num.clear();
            m.text.clear();
        }
        std::mem::take(&mut self.rows)
    }

    /// Replace the rows at the given positions with pre-validated,
    /// pre-coerced replacements, returning the displaced originals
    /// (the UPDATE undo records). Index maps are patched only for
    /// cells that actually changed.
    pub fn apply_updates(&mut self, updates: Vec<(usize, Row)>) -> Vec<(usize, Row)> {
        let mut old_rows = Vec::with_capacity(updates.len());
        for (pos, new_row) in updates {
            let old_row = std::mem::replace(&mut self.rows[pos], new_row);
            for m in &mut self.maps {
                m.note_update(pos, &old_row[m.col], &self.rows[pos][m.col]);
            }
            old_rows.push((pos, old_row));
        }
        old_rows
    }

    /// Declare a secondary index; its map is built once here (O(rows))
    /// and patched incrementally from then on. Errors if the column is
    /// unknown or the name is taken.
    pub fn create_index(&mut self, name: &str, column: &str) -> DbResult<()> {
        let col = self.schema.index_of(column)?;
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
        {
            return Err(DbError::IndexExists(name.to_string()));
        }
        self.indexes.push(IndexDef {
            name: name.to_string(),
            column: column.to_string(),
        });
        self.maps.push(IndexMap::build(col, &self.rows));
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        match self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
        {
            None => Err(DbError::NoSuchIndex(name.to_string())),
            Some(i) => {
                self.indexes.remove(i);
                self.maps.remove(i);
                Ok(())
            }
        }
    }

    /// Declared index definitions.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Whether some index covers `column`.
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexes
            .iter()
            .any(|i| i.column.eq_ignore_ascii_case(column))
    }

    /// Equality probe through an index on `column`: **borrowed**
    /// ascending positions of rows whose column ≈ `value` (candidates
    /// share a hash bucket under SQL equality; callers re-verify with
    /// the real predicate). `None` if no index covers `column`; NULL
    /// probes return no rows. Takes `&self` — the whole SELECT pipeline
    /// runs under a shared catalog lock, and the hot path allocates
    /// nothing.
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<&[usize]> {
        let i = self
            .indexes
            .iter()
            .position(|ix| ix.column.eq_ignore_ascii_case(column))?;
        Some(
            self.maps[i]
                .bucket(&value.index_key())
                .map_or(NO_ROWS, Vec::as_slice),
        )
    }

    /// Rebuild every index map from the rows (snapshot load: serde
    /// skips the maps).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.maps = self
            .indexes
            .iter()
            .map(|def| {
                let col = self
                    .schema
                    .index_of(&def.column)
                    .expect("index column validated at creation");
                IndexMap::build(col, &self.rows)
            })
            .collect();
    }

    /// Test/debug invariant: every patched map equals a from-scratch
    /// rebuild (same buckets, same ascending positions).
    #[cfg(test)]
    fn maps_match_rebuild(&self) -> bool {
        self.maps.iter().all(|m| {
            let fresh = IndexMap::build(m.col, &self.rows);
            m.num == fresh.num && m.text == fresh.text
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column};

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                Column {
                    name: "k".into(),
                    ctype: ColType::Int,
                },
                Column {
                    name: "v".into(),
                    ctype: ColType::Text,
                },
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::from("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][1].as_str(), Some("b"));
    }

    #[test]
    fn insert_validates() {
        let mut t = table();
        assert!(t
            .insert(vec![Value::from("bad"), Value::from("a")])
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn delete_where_counts() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::from("x")]).unwrap();
        }
        let n = t.delete_where(|r| r[0].as_i64().unwrap() % 2 == 0);
        assert_eq!(n, 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_lookup_finds_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i % 3), Value::from("x")]).unwrap();
        }
        t.create_index("ik", "k").unwrap();
        let hits = t.index_lookup("k", &Value::Int(1)).unwrap();
        assert_eq!(hits, &[1, 4, 7]);
        // Unindexed column: no index answer.
        assert!(t.index_lookup("v", &Value::from("x")).is_none());
        // Probe miss: empty borrowed slice, not None.
        assert_eq!(t.index_lookup("k", &Value::Int(99)), Some(NO_ROWS));
    }

    #[test]
    fn index_tracks_mutations() {
        let mut t = table();
        t.insert(vec![Value::Int(7), Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
        t.insert(vec![Value::Int(7), Value::from("b")]).unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 2);
        t.delete_where(|r| r[1].as_str() == Some("a"));
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
        assert!(t.maps_match_rebuild());
    }

    #[test]
    fn index_cross_type_numeric_probe() {
        let mut t = table();
        t.insert(vec![Value::Int(2), Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        // SQL: 2 = 2.0, so a Double probe must find the Int row.
        assert_eq!(t.index_lookup("k", &Value::Double(2.0)).unwrap(), &[0]);
    }

    #[test]
    fn null_probe_returns_nothing() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.create_index("ik", "k").unwrap();
        assert!(t.index_lookup("k", &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", "k").unwrap();
        assert!(matches!(
            t.create_index("i", "v"),
            Err(DbError::IndexExists(_))
        ));
        assert!(matches!(
            t.create_index("j", "nope"),
            Err(DbError::NoSuchColumn(_))
        ));
    }

    #[test]
    fn drop_index_removes() {
        let mut t = table();
        t.create_index("i", "k").unwrap();
        t.drop_index("i").unwrap();
        assert!(t.index_lookup("k", &Value::Int(0)).is_none());
        assert!(matches!(t.drop_index("i"), Err(DbError::NoSuchIndex(_))));
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        // A deterministic mixed workload: inserts, point updates,
        // range deletes, undo of each — after every step the patched
        // maps must equal a from-scratch rebuild.
        let mut t = table();
        t.create_index("ik", "k").unwrap();
        t.create_index("iv", "v").unwrap();
        for i in 0..40 {
            let v = if i % 5 == 0 {
                Value::Null
            } else {
                Value::from(format!("s{}", i % 4))
            };
            t.insert(vec![Value::Int(i % 7), v]).unwrap();
            assert!(t.maps_match_rebuild(), "after insert {i}");
        }
        // Point updates that move keys between buckets (and to NULL).
        let updates: Vec<(usize, Row)> = vec![
            (3, vec![Value::Int(100), Value::from("moved")]),
            (10, vec![Value::Null, Value::Null]),
            (11, vec![Value::Int(11 % 7), Value::from("s0")]),
        ];
        let old = t.apply_updates(updates);
        assert!(t.maps_match_rebuild(), "after updates");
        // Undo the updates by applying the old rows back.
        t.apply_updates(old);
        assert!(t.maps_match_rebuild(), "after update undo");
        // Delete a scattered set, check, then restore it.
        let positions: Vec<usize> = vec![0, 1, 7, 13, 14, 15, 39];
        let removed = t.delete_at(&positions);
        assert_eq!(removed.len(), positions.len());
        assert!(t.maps_match_rebuild(), "after delete");
        let entries: Vec<(usize, Row)> = positions.into_iter().zip(removed).collect();
        t.insert_at(entries);
        assert_eq!(t.len(), 40);
        assert!(t.maps_match_rebuild(), "after delete undo");
        // Undo a batch of appends.
        for i in 0..4 {
            t.insert(vec![Value::Int(i), Value::from("tail")]).unwrap();
        }
        t.undo_append(4);
        assert_eq!(t.len(), 40);
        assert!(t.maps_match_rebuild(), "after append undo");
        // Clear drops everything.
        let all = t.clear();
        assert_eq!(all.len(), 40);
        assert!(t.maps_match_rebuild(), "after clear");
    }

    #[test]
    fn rebuild_indexes_restores_maps() {
        let mut t = table();
        for i in 0..6 {
            t.insert(vec![Value::Int(i % 2), Value::from("x")]).unwrap();
        }
        t.create_index("ik", "k").unwrap();
        t.maps.clear(); // simulate a deserialized table
        t.rebuild_indexes();
        assert_eq!(t.index_lookup("k", &Value::Int(0)).unwrap(), &[0, 2, 4]);
    }

    #[test]
    fn negative_zero_probe_finds_positive_zero_rows() {
        let mut t = Table::new(
            Schema::new(vec![Column {
                name: "d".into(),
                ctype: ColType::Double,
            }])
            .unwrap(),
        );
        t.insert(vec![Value::Double(-0.0)]).unwrap();
        t.insert(vec![Value::Double(0.0)]).unwrap();
        t.create_index("id", "d").unwrap();
        // SQL: -0.0 = 0.0, so either probe must return both rows.
        assert_eq!(t.index_lookup("d", &Value::Double(0.0)).unwrap(), &[0, 1]);
        assert_eq!(t.index_lookup("d", &Value::Double(-0.0)).unwrap(), &[0, 1]);
        assert_eq!(t.index_lookup("d", &Value::Int(0)).unwrap(), &[0, 1]);
    }
}
