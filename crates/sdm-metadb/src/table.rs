//! Row storage and secondary indexes.
//!
//! Two index shapes share one maintenance discipline:
//!
//! * **hash** indexes (`IndexMap`) — single-column, equality-only
//!   buckets keyed by [`IndexKey`];
//! * **ordered** indexes (`OrdIndex`) — `BTreeMap`-backed, one or more
//!   columns, keyed by composite [`OrdKey`] vectors whose total order
//!   agrees with [`Value::sql_cmp`]. These answer point probes,
//!   half-open and closed range probes, prefix ranges, key-ordered
//!   streams (index-backed ORDER BY), and first/last-key peeks
//!   (MIN/MAX).
//!
//! Every probe returns *candidates*: rows whose keys match under the
//! canonical key encoding. Callers re-verify candidates against the
//! real predicate, which is what keeps NULL, NaN, and cross-type rows
//! correct when a key range sweeps them up.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::value::{IndexKey, OrdKey, Value};

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A secondary-index definition
/// (`CREATE [ORDERED] INDEX name ON t (c1, c2, ...)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexDef {
    /// Index name, unique within the table.
    pub name: String,
    /// Indexed column names, outermost key first.
    pub columns: Vec<String>,
    /// Ordered (`BTreeMap`, range-capable) vs hash (equality-only).
    pub ordered: bool,
}

/// One maintained secondary index: the resolved column position plus the
/// hash map from canonical key to **ascending** row positions.
///
/// The maps are maintained *incrementally*: INSERT appends the new
/// position to its bucket, DELETE drops removed positions and shifts the
/// survivors, UPDATE moves a position between buckets only when the
/// indexed cell actually changed. Nothing ever rebuilds a whole map on
/// the read path, and [`Table::index_lookup`] takes `&self` — probes run
/// under a shared lock. Buckets stay in ascending row order so an index
/// probe returns rows in the same order a full scan would.
///
/// NULL cells are never indexed (`NULL = x` is unknown, so an equality
/// probe can never return them).
#[derive(Debug, Clone, Default, PartialEq)]
struct IndexMap {
    col: usize,
    /// Buckets for numeric keys (canonical `f64` bits).
    num: HashMap<u64, Vec<usize>>,
    /// Buckets for text keys; probed through `Borrow<str>`, so a text
    /// probe never clones the probe string.
    text: HashMap<String, Vec<usize>>,
}

impl IndexMap {
    /// Build from scratch over `rows` (index creation and snapshot
    /// load — never the mutation path).
    fn build(col: usize, rows: &[Row]) -> Self {
        let mut m = IndexMap {
            col,
            ..IndexMap::default()
        };
        for (pos, row) in rows.iter().enumerate() {
            m.note_append(pos, row);
        }
        m
    }

    /// Borrowed bucket for a probe value (`None` for NULL and misses).
    fn bucket(&self, key: &IndexKey<'_>) -> Option<&Vec<usize>> {
        match key {
            IndexKey::Null => None,
            IndexKey::Num(b) => self.num.get(b),
            IndexKey::Text(s) => self.text.get(s.as_ref()),
        }
    }

    /// Remove `pos` from the bucket of `key`, dropping the bucket when
    /// it empties.
    fn remove_entry(&mut self, key: IndexKey<'_>, pos: usize) {
        let bucket = match &key {
            IndexKey::Null => return,
            IndexKey::Num(b) => self.num.get_mut(b),
            IndexKey::Text(s) => self.text.get_mut(s.as_ref()),
        };
        let Some(bucket) = bucket else { return };
        if let Ok(at) = bucket.binary_search(&pos) {
            bucket.remove(at);
        }
        if bucket.is_empty() {
            match key {
                IndexKey::Null => {}
                IndexKey::Num(b) => {
                    self.num.remove(&b);
                }
                IndexKey::Text(s) => {
                    self.text.remove(s.as_ref());
                }
            }
        }
    }

    /// Insert `pos` into the bucket of `key` at its sorted position
    /// (buckets stay ascending so probes return rows in scan order).
    fn insert_entry(&mut self, key: IndexKey<'_>, pos: usize) {
        let bucket = match key {
            IndexKey::Null => return,
            IndexKey::Num(b) => self.num.entry(b).or_default(),
            IndexKey::Text(s) => self.text.entry(s.into_owned()).or_default(),
        };
        let at = bucket.partition_point(|&q| q < pos);
        bucket.insert(at, pos);
    }

    /// All buckets, for position-shift passes.
    fn buckets_mut(&mut self) -> impl Iterator<Item = &mut Vec<usize>> {
        self.num.values_mut().chain(self.text.values_mut())
    }

    /// Record `row` appended at `pos` (which exceeds every indexed
    /// position, so pushing keeps the bucket ascending).
    fn note_append(&mut self, pos: usize, row: &Row) {
        let v = &row[self.col];
        match v.index_key() {
            IndexKey::Null => {}
            IndexKey::Num(b) => self.num.entry(b).or_default().push(pos),
            IndexKey::Text(s) => self.text.entry(s.into_owned()).or_default().push(pos),
        }
    }

    /// Forget the entry for `row` at `pos` (undo of an append; `pos` is
    /// the largest indexed position, sitting at its bucket's tail).
    fn forget_tail(&mut self, pos: usize, row: &Row) {
        self.remove_entry(row[self.col].index_key(), pos);
    }

    /// Drop `deleted` (ascending row positions) from every bucket and
    /// shift the surviving positions down past them. One pass per
    /// bucket entry — O(index entries + deleted), never a rebuild.
    fn note_delete(&mut self, deleted: &[usize]) {
        for bucket in self.buckets_mut() {
            shift_down(bucket, deleted);
        }
        self.num.retain(|_, b| !b.is_empty());
        self.text.retain(|_, b| !b.is_empty());
    }

    /// Undo of [`IndexMap::note_delete`]: shift survivors back up past
    /// the re-inserted ascending `positions`, then index the restored
    /// rows. The two-pointer walk relies on buckets and `positions`
    /// both being ascending.
    fn note_insert_at(&mut self, entries: &[(usize, Row)]) {
        for bucket in self.buckets_mut() {
            shift_up(bucket, entries);
        }
        for (pos, row) in entries {
            self.insert_entry(row[self.col].index_key(), *pos);
        }
    }

    /// Move `pos` between buckets when an UPDATE changed the indexed
    /// cell. No-op when old and new key agree.
    fn note_update(&mut self, pos: usize, old: &Value, new: &Value) {
        let (old_key, new_key) = (old.index_key(), new.index_key());
        if old_key == new_key {
            return;
        }
        self.remove_entry(old_key, pos);
        self.insert_entry(new_key, pos);
    }
}

/// Drop `deleted` positions from an ascending bucket and shift the
/// survivors down past them (one pass; `rank` = deleted positions below
/// the survivor).
fn shift_down(bucket: &mut Vec<usize>, deleted: &[usize]) {
    let mut w = 0;
    for r in 0..bucket.len() {
        let p = bucket[r];
        match deleted.binary_search(&p) {
            Ok(_) => {} // this row was deleted
            Err(rank) => {
                bucket[w] = p - rank;
                w += 1;
            }
        }
    }
    bucket.truncate(w);
}

/// Undo of [`shift_down`]: shift survivors back up past the
/// re-inserted ascending `entries` (two-pointer walk; both sides
/// ascending).
fn shift_up(bucket: &mut [usize], entries: &[(usize, Row)]) {
    let mut j = 0usize; // entries consumed so far for this bucket
    for p in bucket.iter_mut() {
        let mut f = *p + j;
        while j < entries.len() && entries[j].0 <= f {
            j += 1;
            f = *p + j;
        }
        *p = f;
    }
}

/// An ordered secondary index: resolved column positions plus a
/// `BTreeMap` from composite [`OrdKey`] to **ascending** row positions.
///
/// Unlike [`IndexMap`], *every* row is indexed — including rows whose
/// key columns are NULL ([`OrdKey::Null`] sorts first). A prefix probe
/// for `(runid = 5)` on a `(runid, timestep)` index must see rows whose
/// `timestep` is NULL, or the index would hide rows a full scan finds.
/// Equality and range probes never *produce* NULL bounds (the planner
/// answers those with an empty set), so NULL-keyed rows only surface
/// through prefix/unbounded scans, where re-verification decides.
///
/// Maintenance mirrors the hash index exactly: same incremental
/// patches, same ascending-bucket invariant, same rebuild on snapshot
/// load.
#[derive(Debug, Clone, PartialEq)]
struct OrdIndex {
    cols: Vec<usize>,
    map: BTreeMap<Vec<OrdKey>, Vec<usize>>,
}

impl OrdIndex {
    fn build(cols: Vec<usize>, rows: &[Row]) -> Self {
        let mut o = OrdIndex {
            cols,
            map: BTreeMap::new(),
        };
        for (pos, row) in rows.iter().enumerate() {
            o.note_append(pos, row);
        }
        o
    }

    /// The composite key of `row`.
    fn key_of(&self, row: &Row) -> Vec<OrdKey> {
        self.cols.iter().map(|&c| row[c].ord_key()).collect()
    }

    /// `BTreeMap` bounds covering exactly the keys that extend `prefix`
    /// with a component in `[lo, hi]` (inclusive; callers widen strict
    /// bounds and re-verify). Relies on [`OrdKey::successor`] to turn
    /// inclusive upper bounds into exclusive ends, which keeps keys
    /// with further tail columns inside the range.
    #[allow(clippy::type_complexity)]
    fn bounds(
        prefix: &[OrdKey],
        lo: Option<&OrdKey>,
        hi: Option<&OrdKey>,
    ) -> Option<(Bound<Vec<OrdKey>>, Bound<Vec<OrdKey>>)> {
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return None; // empty range; BTreeMap::range would panic
            }
        }
        let mut start = prefix.to_vec();
        if let Some(l) = lo {
            start.push(l.clone());
        }
        let end = match hi {
            Some(h) => {
                let mut e = prefix.to_vec();
                e.push(h.successor());
                Bound::Excluded(e)
            }
            None if prefix.is_empty() => Bound::Unbounded,
            None => {
                let mut e = prefix.to_vec();
                // analyze:allow(unwrap: the empty-prefix case was peeled off by the arm above)
                let last = e.pop().expect("nonempty prefix").successor();
                e.push(last);
                Bound::Excluded(e)
            }
        };
        Some((Bound::Included(start), end))
    }

    /// Key-ordered buckets whose keys extend `prefix` with component
    /// `prefix.len()` in `[lo, hi]`.
    fn scan(
        &self,
        prefix: &[OrdKey],
        lo: Option<&OrdKey>,
        hi: Option<&OrdKey>,
    ) -> std::collections::btree_map::Range<'_, Vec<OrdKey>, Vec<usize>> {
        match Self::bounds(prefix, lo, hi) {
            Some((s, e)) => self.map.range((s, e)),
            // lo > hi: an empty, non-panicking range.
            None => self.map.range((
                Bound::Included(prefix.to_vec()),
                Bound::Excluded(prefix.to_vec()),
            )),
        }
    }

    fn note_append(&mut self, pos: usize, row: &Row) {
        self.map.entry(self.key_of(row)).or_default().push(pos);
    }

    fn forget_tail(&mut self, pos: usize, row: &Row) {
        self.remove_entry(self.key_of(row), pos);
    }

    fn remove_entry(&mut self, key: Vec<OrdKey>, pos: usize) {
        let Some(bucket) = self.map.get_mut(&key) else {
            return;
        };
        if let Ok(at) = bucket.binary_search(&pos) {
            bucket.remove(at);
        }
        if bucket.is_empty() {
            self.map.remove(&key);
        }
    }

    fn insert_entry(&mut self, key: Vec<OrdKey>, pos: usize) {
        let bucket = self.map.entry(key).or_default();
        let at = bucket.partition_point(|&q| q < pos);
        bucket.insert(at, pos);
    }

    fn note_delete(&mut self, deleted: &[usize]) {
        for bucket in self.map.values_mut() {
            shift_down(bucket, deleted);
        }
        self.map.retain(|_, b| !b.is_empty());
    }

    fn note_insert_at(&mut self, entries: &[(usize, Row)]) {
        for bucket in self.map.values_mut() {
            shift_up(bucket, entries);
        }
        for (pos, row) in entries {
            self.insert_entry(self.key_of(row), *pos);
        }
    }

    fn note_update(&mut self, pos: usize, old: &Row, new: &Row) {
        let (old_key, new_key) = (self.key_of(old), self.key_of(new));
        if old_key == new_key {
            return;
        }
        self.remove_entry(old_key, pos);
        self.insert_entry(new_key, pos);
    }
}

/// A maintained secondary index of either shape, dispatching the shared
/// incremental-maintenance protocol.
#[derive(Debug, Clone, PartialEq)]
enum IndexStore {
    Hash(IndexMap),
    Ordered(OrdIndex),
}

impl IndexStore {
    fn note_append(&mut self, pos: usize, row: &Row) {
        match self {
            IndexStore::Hash(m) => m.note_append(pos, row),
            IndexStore::Ordered(o) => o.note_append(pos, row),
        }
    }

    fn forget_tail(&mut self, pos: usize, row: &Row) {
        match self {
            IndexStore::Hash(m) => m.forget_tail(pos, row),
            IndexStore::Ordered(o) => o.forget_tail(pos, row),
        }
    }

    fn note_delete(&mut self, deleted: &[usize]) {
        match self {
            IndexStore::Hash(m) => m.note_delete(deleted),
            IndexStore::Ordered(o) => o.note_delete(deleted),
        }
    }

    fn note_insert_at(&mut self, entries: &[(usize, Row)]) {
        match self {
            IndexStore::Hash(m) => m.note_insert_at(entries),
            IndexStore::Ordered(o) => o.note_insert_at(entries),
        }
    }

    fn note_update(&mut self, pos: usize, old: &Row, new: &Row) {
        match self {
            IndexStore::Hash(m) => m.note_update(pos, &old[m.col], &new[m.col]),
            IndexStore::Ordered(o) => o.note_update(pos, old, new),
        }
    }

    fn clear(&mut self) {
        match self {
            IndexStore::Hash(m) => {
                m.num.clear();
                m.text.clear();
            }
            IndexStore::Ordered(o) => o.map.clear(),
        }
    }

    /// Number of distinct keys — the cardinality statistic the planner
    /// divides row counts by. O(1).
    fn distinct_keys(&self) -> usize {
        match self {
            IndexStore::Hash(m) => m.num.len() + m.text.len(),
            IndexStore::Ordered(o) => o.map.len(),
        }
    }
}

/// A heap table: schema plus rows in insertion order, with optional
/// secondary indexes (hash or ordered) maintained incrementally
/// (`maps` parallels `indexes`).
///
/// The maps are skipped by serde; the catalog rebuilds them on snapshot
/// load, before a loaded table serves its first probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// The table's schema.
    pub schema: Schema,
    rows: Vec<Row>,
    /// Declared secondary indexes (definitions persist; the maps
    /// themselves are rebuilt on load).
    #[serde(default)]
    indexes: Vec<IndexDef>,
    #[serde(skip)]
    maps: Vec<IndexStore>,
}

/// Empty candidate list for probes that miss (a borrowed `&[]`).
const NO_ROWS: &[usize] = &[];

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            maps: Vec::new(),
        }
    }

    /// Number of rows — the planner's per-table row-count statistic.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate, coerce, and append a row, patching each index map in
    /// place (O(#indexes · log rows), independent of table size).
    pub fn insert(&mut self, row: Row) -> DbResult<()> {
        let row = self.schema.check_row(row)?;
        let pos = self.rows.len();
        for m in &mut self.maps {
            m.note_append(pos, &row);
        }
        self.rows.push(row);
        Ok(())
    }

    /// Undo of the last `n` [`Table::insert`]s: truncate the appended
    /// rows and pop their index entries. O(n · #indexes).
    pub(crate) fn undo_append(&mut self, n: usize) {
        for _ in 0..n {
            let pos = self.rows.len() - 1;
            let row = &self.rows[pos];
            for m in &mut self.maps {
                m.forget_tail(pos, row);
            }
            self.rows.pop();
        }
    }

    /// All rows, insertion-ordered.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Remove the rows at `positions` (ascending, deduplicated),
    /// returning them in the same order. Index maps are patched in
    /// place; untouched rows keep their relative order.
    pub fn delete_at(&mut self, positions: &[usize]) -> Vec<Row> {
        if positions.is_empty() {
            return Vec::new();
        }
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        let mut removed = Vec::with_capacity(positions.len());
        let mut next = 0; // index into positions
        let mut w = 0;
        for r in 0..self.rows.len() {
            if next < positions.len() && positions[next] == r {
                removed.push(std::mem::take(&mut self.rows[r]));
                next += 1;
            } else {
                self.rows.swap(w, r);
                w += 1;
            }
        }
        self.rows.truncate(w);
        for m in &mut self.maps {
            m.note_delete(positions);
        }
        removed
    }

    /// Undo of [`Table::delete_at`]: restore `entries` (ascending by
    /// original position) to exactly where they were.
    pub(crate) fn insert_at(&mut self, entries: Vec<(usize, Row)>) {
        if entries.is_empty() {
            return;
        }
        for m in &mut self.maps {
            m.note_insert_at(&entries);
        }
        let mut merged = Vec::with_capacity(self.rows.len() + entries.len());
        let mut old = std::mem::take(&mut self.rows).into_iter();
        let mut entries = entries.into_iter().peekable();
        loop {
            if entries.peek().is_some_and(|(p, _)| *p == merged.len()) {
                // analyze:allow(unwrap: peek returned Some on the line above)
                merged.push(entries.next().expect("peeked").1);
            } else if let Some(row) = old.next() {
                merged.push(row);
            } else if let Some((_, row)) = entries.next() {
                merged.push(row); // restores past the current tail
            } else {
                break;
            }
        }
        self.rows = merged;
    }

    /// Delete rows matching `pred`; returns how many were removed.
    /// A predicate that matches nothing performs no index work at all.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> usize {
        let positions: Vec<usize> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| pred(r).then_some(i))
            .collect();
        self.delete_at(&positions).len()
    }

    /// Remove every row, returning them (DELETE without WHERE; the
    /// caller keeps the rows for undo).
    pub fn clear(&mut self) -> Vec<Row> {
        for m in &mut self.maps {
            m.clear();
        }
        std::mem::take(&mut self.rows)
    }

    /// Replace the rows at the given positions with pre-validated,
    /// pre-coerced replacements, returning the displaced originals
    /// (the UPDATE undo records). Index maps are patched only for
    /// cells that actually changed.
    pub fn apply_updates(&mut self, updates: Vec<(usize, Row)>) -> Vec<(usize, Row)> {
        let mut old_rows = Vec::with_capacity(updates.len());
        for (pos, new_row) in updates {
            let old_row = std::mem::replace(&mut self.rows[pos], new_row);
            for m in &mut self.maps {
                m.note_update(pos, &old_row, &self.rows[pos]);
            }
            old_rows.push((pos, old_row));
        }
        old_rows
    }

    /// Declare a secondary index; its map is built once here (O(rows))
    /// and patched incrementally from then on. Hash indexes take
    /// exactly one column; ordered indexes take one or more. Errors if
    /// a column is unknown or the name is taken.
    pub fn create_index(&mut self, name: &str, columns: &[&str], ordered: bool) -> DbResult<()> {
        let cols = columns
            .iter()
            .map(|c| self.schema.index_of(c))
            .collect::<DbResult<Vec<usize>>>()?;
        if cols.is_empty() {
            return Err(DbError::Arity(format!("index {name} names no columns")));
        }
        if !ordered && cols.len() != 1 {
            return Err(DbError::Arity(format!(
                "hash index {name} must name exactly one column; \
                 declare it ORDERED for a composite key"
            )));
        }
        if self
            .indexes
            .iter()
            .any(|i| i.name.eq_ignore_ascii_case(name))
        {
            return Err(DbError::IndexExists(name.to_string()));
        }
        self.indexes.push(IndexDef {
            name: name.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            ordered,
        });
        self.maps.push(if ordered {
            IndexStore::Ordered(OrdIndex::build(cols, &self.rows))
        } else {
            IndexStore::Hash(IndexMap::build(cols[0], &self.rows))
        });
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        match self
            .indexes
            .iter()
            .position(|i| i.name.eq_ignore_ascii_case(name))
        {
            None => Err(DbError::NoSuchIndex(name.to_string())),
            Some(i) => {
                self.indexes.remove(i);
                self.maps.remove(i);
                Ok(())
            }
        }
    }

    /// Declared index definitions.
    pub fn indexes(&self) -> &[IndexDef] {
        &self.indexes
    }

    /// Whether some index can probe `column` (it is an index's leading
    /// key column).
    pub fn has_index_on(&self, column: &str) -> bool {
        self.indexes
            .iter()
            .any(|i| i.columns[0].eq_ignore_ascii_case(column))
    }

    /// Distinct-key count of index `i` — the per-index cardinality
    /// statistic (`rows / distinct` estimates bucket size). O(1).
    pub fn index_distinct_keys(&self, i: usize) -> usize {
        self.maps[i].distinct_keys()
    }

    /// Equality probe through a *single-column* index on `column`:
    /// **borrowed** ascending positions of rows whose column ≈ `value`
    /// (candidates share a key under SQL equality; callers re-verify
    /// with the real predicate). `None` if no single-column index
    /// covers `column`; NULL probes return no rows. Takes `&self` — the
    /// whole SELECT pipeline runs under a shared catalog lock.
    pub fn index_lookup(&self, column: &str, value: &Value) -> Option<&[usize]> {
        let i = self
            .indexes
            .iter()
            .position(|ix| ix.columns.len() == 1 && ix.columns[0].eq_ignore_ascii_case(column))?;
        Some(match &self.maps[i] {
            IndexStore::Hash(m) => m.bucket(&value.index_key()).map_or(NO_ROWS, Vec::as_slice),
            IndexStore::Ordered(o) => {
                if value.is_null() {
                    NO_ROWS // NULL = x is unknown; never a point match
                } else {
                    o.map
                        .get(&vec![value.ord_key()])
                        .map_or(NO_ROWS, Vec::as_slice)
                }
            }
        })
    }

    /// The index best placed to drive an eq-join on `column`: an
    /// *ordered* index led by `column` when one exists (its key order
    /// makes it merge-joinable), else a hash index on exactly `column`.
    /// Returns `(index position, ordered)`.
    pub fn join_index(&self, column: &str) -> Option<(usize, bool)> {
        let mut hash = None;
        for (i, def) in self.indexes.iter().enumerate() {
            if !def.columns[0].eq_ignore_ascii_case(column) {
                continue;
            }
            if def.ordered {
                return Some((i, true));
            }
            if hash.is_none() {
                hash = Some((i, false));
            }
        }
        hash
    }

    /// Key-ordered `(leading key component, bucket)` pairs of ordered
    /// index `i` — the merge-join streaming surface. A composite index
    /// splits one leading key across many adjacent groups (one per
    /// distinct tail combination), so consumers gather *runs* of equal
    /// leading keys. `None` when index `i` is a hash index.
    pub fn ordered_groups(
        &self,
        i: usize,
    ) -> Option<impl Iterator<Item = (&OrdKey, &[usize])> + '_> {
        let IndexStore::Ordered(o) = &self.maps[i] else {
            return None;
        };
        Some(o.map.iter().map(|(k, b)| (&k[0], b.as_slice())))
    }

    /// Equality probe on the *leading* key column of index `i`,
    /// appending the ascending candidate positions into `buf` (cleared
    /// first; reusable across probes, so a nested-loop join allocates
    /// nothing per outer row once warm). Candidates share a
    /// canonicalized key — callers re-verify under SQL equality. NULL
    /// probes match nothing.
    pub fn probe_leading(&self, i: usize, value: &Value, buf: &mut Vec<usize>) {
        buf.clear();
        if value.is_null() {
            return;
        }
        match &self.maps[i] {
            IndexStore::Hash(m) => {
                if let Some(b) = m.bucket(&value.index_key()) {
                    buf.extend_from_slice(b);
                }
            }
            IndexStore::Ordered(o) => {
                let key = value.ord_key();
                for (_, b) in o.scan(&[], Some(&key), Some(&key)) {
                    buf.extend_from_slice(b);
                }
                // Buckets stream in key order; positions ascend within
                // each bucket but not across the tail keys of a
                // composite index, so restore global scan order.
                buf.sort_unstable();
            }
        }
    }

    /// Full-key equality probe through index `i`: borrowed ascending
    /// positions for the composite key `vals` (one value per index
    /// column). `None` when the arity doesn't match the index.
    pub fn probe_point(&self, i: usize, vals: &[&Value]) -> Option<&[usize]> {
        match &self.maps[i] {
            IndexStore::Hash(m) => {
                let [v] = vals else { return None };
                Some(m.bucket(&v.index_key()).map_or(NO_ROWS, Vec::as_slice))
            }
            IndexStore::Ordered(o) => {
                if vals.len() != o.cols.len() {
                    return None;
                }
                if vals.iter().any(|v| v.is_null()) {
                    return Some(NO_ROWS); // NULL = x matches nothing
                }
                let key: Vec<OrdKey> = vals.iter().map(|v| v.ord_key()).collect();
                Some(o.map.get(&key).map_or(NO_ROWS, Vec::as_slice))
            }
        }
    }

    /// Range probe through ordered index `i`: positions of rows whose
    /// leading `prefix.len()` key columns equal `prefix` and whose next
    /// key column lies in `[lo, hi]` (inclusive; either side may be
    /// open — callers widen strict bounds and re-verify). Returns
    /// **ascending** positions, i.e. scan order. Collection aborts and
    /// returns `None` once more than `abort_at` candidates accumulate —
    /// the cost-based planner passes the best plan found so far.
    /// Also `None` when index `i` is not ordered or the prefix is too
    /// long.
    pub fn probe_range(
        &self,
        i: usize,
        prefix: &[&Value],
        lo: Option<&Value>,
        hi: Option<&Value>,
        abort_at: usize,
    ) -> Option<Vec<usize>> {
        let IndexStore::Ordered(o) = &self.maps[i] else {
            return None;
        };
        if prefix.len() >= o.cols.len() && (lo.is_some() || hi.is_some()) {
            return None;
        }
        let pkeys: Vec<OrdKey> = prefix.iter().map(|v| v.ord_key()).collect();
        let (lok, hik) = (lo.map(Value::ord_key), hi.map(Value::ord_key));
        let mut out = Vec::new();
        for (_, bucket) in o.scan(&pkeys, lok.as_ref(), hik.as_ref()) {
            out.extend_from_slice(bucket);
            if out.len() > abort_at {
                return None;
            }
        }
        out.sort_unstable();
        Some(out)
    }

    /// Key-ordered position stream through ordered index `i`: rows
    /// whose leading key columns equal `prefix`, with the next key
    /// column optionally bounded to `[lo, hi]`, in ascending
    /// (`desc = false`) or descending key order. Ties (equal keys)
    /// always stream in ascending row position — the order a stable
    /// sort of the scan would produce. This is the index-backed
    /// ORDER BY path: the caller stops at LIMIT instead of sorting.
    pub fn stream_ordered(
        &self,
        i: usize,
        prefix: &[&Value],
        lo: Option<&Value>,
        hi: Option<&Value>,
        desc: bool,
    ) -> Option<Box<dyn Iterator<Item = usize> + '_>> {
        let IndexStore::Ordered(o) = &self.maps[i] else {
            return None;
        };
        let pkeys: Vec<OrdKey> = prefix.iter().map(|v| v.ord_key()).collect();
        let (lok, hik) = (lo.map(Value::ord_key), hi.map(Value::ord_key));
        let range = o.scan(&pkeys, lok.as_ref(), hik.as_ref());
        Some(if desc {
            Box::new(range.rev().flat_map(|(_, b)| b.iter().copied()))
        } else {
            Box::new(range.flat_map(|(_, b)| b.iter().copied()))
        })
    }

    /// First/last-key peek through ordered index `i`: the position of a
    /// row holding the MIN (`max = false`) or MAX (`max = true`) of the
    /// index's *last* key column among rows whose leading columns equal
    /// `prefix`. Only defined when `prefix` covers all but the last
    /// index column, so every SQL-equal extremum shares one bucket and
    /// the returned position is the scan-first row bearing it — exactly
    /// what a streaming MIN/MAX aggregate would keep.
    ///
    /// NULL keys are skipped on both ends (aggregates ignore NULL); the
    /// canonical NaN key is skipped too (`NaN < x` and `NaN > x` are
    /// unknown, so NaN can never be a comparison-won extremum). Outer
    /// `None` means the peek doesn't apply; inner `None` means no
    /// qualifying row (the aggregate is NULL).
    pub fn peek_edge(&self, i: usize, prefix: &[&Value], max: bool) -> Option<Option<usize>> {
        let IndexStore::Ordered(o) = &self.maps[i] else {
            return None;
        };
        if prefix.len() + 1 != o.cols.len() {
            return None;
        }
        if prefix.iter().any(|v| v.is_null()) {
            return Some(None); // NULL prefix equality matches nothing
        }
        let pkeys: Vec<OrdKey> = prefix.iter().map(|v| v.ord_key()).collect();
        let k = pkeys.len();
        if max {
            for (key, bucket) in o.scan(&pkeys, None, None).rev() {
                if key[k].is_nan() {
                    continue;
                }
                if key[k] == OrdKey::Null {
                    return Some(None); // only NULL keys left below
                }
                return Some(Some(bucket[0]));
            }
        } else {
            for (key, bucket) in o.scan(&pkeys, None, None) {
                if key[k] == OrdKey::Null {
                    continue;
                }
                if key[k].is_nan() {
                    return Some(None); // only NaN keys left above
                }
                return Some(Some(bucket[0]));
            }
        }
        Some(None)
    }

    /// Rebuild every index map from the rows (snapshot load: serde
    /// skips the maps).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.maps = self
            .indexes
            .iter()
            .map(|def| {
                let cols: Vec<usize> = def
                    .columns
                    .iter()
                    .map(|c| {
                        self.schema
                            .index_of(c)
                            // analyze:allow(unwrap: create_index validated every column name against the schema)
                            .expect("index column validated at creation")
                    })
                    .collect();
                if def.ordered {
                    IndexStore::Ordered(OrdIndex::build(cols, &self.rows))
                } else {
                    IndexStore::Hash(IndexMap::build(cols[0], &self.rows))
                }
            })
            .collect();
    }

    /// Test/debug invariant: every patched map equals a from-scratch
    /// rebuild (same buckets, same ascending positions).
    #[cfg(test)]
    fn maps_match_rebuild(&self) -> bool {
        self.maps.iter().all(|m| match m {
            IndexStore::Hash(h) => {
                let fresh = IndexMap::build(h.col, &self.rows);
                h.num == fresh.num && h.text == fresh.text
            }
            IndexStore::Ordered(o) => {
                let fresh = OrdIndex::build(o.cols.clone(), &self.rows);
                o.map == fresh.map
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column};

    fn table() -> Table {
        Table::new(
            Schema::new(vec![
                Column {
                    name: "k".into(),
                    ctype: ColType::Int,
                },
                Column {
                    name: "v".into(),
                    ctype: ColType::Text,
                },
            ])
            .unwrap(),
        )
    }

    #[test]
    fn insert_and_scan() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.insert(vec![Value::Int(2), Value::from("b")]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[1][1].as_str(), Some("b"));
    }

    #[test]
    fn insert_validates() {
        let mut t = table();
        assert!(t
            .insert(vec![Value::from("bad"), Value::from("a")])
            .is_err());
        assert!(t.is_empty());
    }

    #[test]
    fn delete_where_counts() {
        let mut t = table();
        for i in 0..5 {
            t.insert(vec![Value::Int(i), Value::from("x")]).unwrap();
        }
        let n = t.delete_where(|r| r[0].as_i64().unwrap() % 2 == 0);
        assert_eq!(n, 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_lookup_finds_rows() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i % 3), Value::from("x")]).unwrap();
        }
        t.create_index("ik", &["k"], false).unwrap();
        let hits = t.index_lookup("k", &Value::Int(1)).unwrap();
        assert_eq!(hits, &[1, 4, 7]);
        // Unindexed column: no index answer.
        assert!(t.index_lookup("v", &Value::from("x")).is_none());
        // Probe miss: empty borrowed slice, not None.
        assert_eq!(t.index_lookup("k", &Value::Int(99)), Some(NO_ROWS));
    }

    #[test]
    fn ordered_single_column_lookup_matches_hash() {
        let mut t = table();
        for i in 0..10 {
            t.insert(vec![Value::Int(i % 3), Value::from("x")]).unwrap();
        }
        t.create_index("ok", &["k"], true).unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(1)).unwrap(), &[1, 4, 7]);
        assert_eq!(t.index_lookup("k", &Value::Int(99)), Some(NO_ROWS));
        assert!(t.index_lookup("k", &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn index_tracks_mutations() {
        let mut t = table();
        t.insert(vec![Value::Int(7), Value::from("a")]).unwrap();
        t.create_index("ik", &["k"], false).unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
        t.insert(vec![Value::Int(7), Value::from("b")]).unwrap();
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 2);
        t.delete_where(|r| r[1].as_str() == Some("a"));
        assert_eq!(t.index_lookup("k", &Value::Int(7)).unwrap().len(), 1);
        assert!(t.maps_match_rebuild());
    }

    #[test]
    fn index_cross_type_numeric_probe() {
        let mut t = table();
        t.insert(vec![Value::Int(2), Value::from("a")]).unwrap();
        t.create_index("ik", &["k"], false).unwrap();
        // SQL: 2 = 2.0, so a Double probe must find the Int row.
        assert_eq!(t.index_lookup("k", &Value::Double(2.0)).unwrap(), &[0]);
    }

    #[test]
    fn null_probe_returns_nothing() {
        let mut t = table();
        t.insert(vec![Value::Null, Value::from("a")]).unwrap();
        t.create_index("ik", &["k"], false).unwrap();
        assert!(t.index_lookup("k", &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = table();
        t.create_index("i", &["k"], false).unwrap();
        assert!(matches!(
            t.create_index("i", &["v"], false),
            Err(DbError::IndexExists(_))
        ));
        assert!(matches!(
            t.create_index("j", &["nope"], false),
            Err(DbError::NoSuchColumn(_))
        ));
        // Hash indexes are single-column; composites must be ordered.
        assert!(matches!(
            t.create_index("j", &["k", "v"], false),
            Err(DbError::Arity(_))
        ));
        assert!(matches!(
            t.create_index("j", &[], true),
            Err(DbError::Arity(_))
        ));
    }

    #[test]
    fn drop_index_removes() {
        let mut t = table();
        t.create_index("i", &["k"], false).unwrap();
        t.drop_index("i").unwrap();
        assert!(t.index_lookup("k", &Value::Int(0)).is_none());
        assert!(matches!(t.drop_index("i"), Err(DbError::NoSuchIndex(_))));
    }

    #[test]
    fn incremental_maintenance_matches_rebuild() {
        // A deterministic mixed workload: inserts, point updates,
        // range deletes, undo of each — after every step the patched
        // maps must equal a from-scratch rebuild. An ordered composite
        // index rides along with the two hash indexes so both shapes
        // face the same workload.
        let mut t = table();
        t.create_index("ik", &["k"], false).unwrap();
        t.create_index("iv", &["v"], false).unwrap();
        t.create_index("okv", &["k", "v"], true).unwrap();
        for i in 0..40 {
            let v = if i % 5 == 0 {
                Value::Null
            } else {
                Value::from(format!("s{}", i % 4))
            };
            t.insert(vec![Value::Int(i % 7), v]).unwrap();
            assert!(t.maps_match_rebuild(), "after insert {i}");
        }
        // Point updates that move keys between buckets (and to NULL).
        let updates: Vec<(usize, Row)> = vec![
            (3, vec![Value::Int(100), Value::from("moved")]),
            (10, vec![Value::Null, Value::Null]),
            (11, vec![Value::Int(11 % 7), Value::from("s0")]),
        ];
        let old = t.apply_updates(updates);
        assert!(t.maps_match_rebuild(), "after updates");
        // Undo the updates by applying the old rows back.
        t.apply_updates(old);
        assert!(t.maps_match_rebuild(), "after update undo");
        // Delete a scattered set, check, then restore it.
        let positions: Vec<usize> = vec![0, 1, 7, 13, 14, 15, 39];
        let removed = t.delete_at(&positions);
        assert_eq!(removed.len(), positions.len());
        assert!(t.maps_match_rebuild(), "after delete");
        let entries: Vec<(usize, Row)> = positions.into_iter().zip(removed).collect();
        t.insert_at(entries);
        assert_eq!(t.len(), 40);
        assert!(t.maps_match_rebuild(), "after delete undo");
        // Undo a batch of appends.
        for i in 0..4 {
            t.insert(vec![Value::Int(i), Value::from("tail")]).unwrap();
        }
        t.undo_append(4);
        assert_eq!(t.len(), 40);
        assert!(t.maps_match_rebuild(), "after append undo");
        // Clear drops everything.
        let all = t.clear();
        assert_eq!(all.len(), 40);
        assert!(t.maps_match_rebuild(), "after clear");
    }

    #[test]
    fn rebuild_indexes_restores_maps() {
        let mut t = table();
        for i in 0..6 {
            t.insert(vec![Value::Int(i % 2), Value::from("x")]).unwrap();
        }
        t.create_index("ik", &["k"], false).unwrap();
        t.create_index("okv", &["k", "v"], true).unwrap();
        t.maps.clear(); // simulate a deserialized table
        t.rebuild_indexes();
        assert_eq!(t.index_lookup("k", &Value::Int(0)).unwrap(), &[0, 2, 4]);
        assert_eq!(
            t.probe_point(1, &[&Value::Int(1), &Value::from("x")])
                .unwrap(),
            &[1, 3, 5]
        );
    }

    #[test]
    fn negative_zero_probe_finds_positive_zero_rows() {
        let mut t = Table::new(
            Schema::new(vec![Column {
                name: "d".into(),
                ctype: ColType::Double,
            }])
            .unwrap(),
        );
        t.insert(vec![Value::Double(-0.0)]).unwrap();
        t.insert(vec![Value::Double(0.0)]).unwrap();
        t.create_index("id", &["d"], false).unwrap();
        t.create_index("od", &["d"], true).unwrap();
        // SQL: -0.0 = 0.0, so either probe must return both rows.
        assert_eq!(t.index_lookup("d", &Value::Double(0.0)).unwrap(), &[0, 1]);
        assert_eq!(t.index_lookup("d", &Value::Double(-0.0)).unwrap(), &[0, 1]);
        assert_eq!(t.index_lookup("d", &Value::Int(0)).unwrap(), &[0, 1]);
        // The ordered index collapses them into one key as well.
        assert_eq!(t.probe_point(1, &[&Value::Int(0)]).unwrap(), &[0, 1]);
        assert_eq!(
            t.probe_range(
                1,
                &[],
                Some(&Value::Double(-0.0)),
                Some(&Value::Int(0)),
                usize::MAX
            ),
            Some(vec![0, 1])
        );
    }

    /// A (runid, timestep)-shaped table for range/stream tests.
    fn composite_table() -> Table {
        let mut t = Table::new(
            Schema::new(vec![
                Column {
                    name: "runid".into(),
                    ctype: ColType::Int,
                },
                Column {
                    name: "ts".into(),
                    ctype: ColType::Int,
                },
            ])
            .unwrap(),
        );
        // Interleave runs so positions don't follow key order.
        for ts in 0..12 {
            for run in 0..3 {
                t.insert(vec![Value::Int(run), Value::Int(ts)]).unwrap();
            }
        }
        t.create_index("o_run_ts", &["runid", "ts"], true).unwrap();
        t
    }

    #[test]
    fn range_probe_shapes() {
        let t = composite_table();
        let one = Value::Int(1);
        let scan = |lo: Option<&Value>, hi: Option<&Value>| {
            t.probe_range(0, &[&one], lo, hi, usize::MAX).unwrap()
        };
        let expect = |pred: &dyn Fn(i64) -> bool| -> Vec<usize> {
            t.rows()
                .iter()
                .enumerate()
                .filter(|(_, r)| r[0].as_i64() == Some(1) && pred(r[1].as_i64().unwrap()))
                .map(|(i, _)| i)
                .collect()
        };
        // Closed, half-open both sides, and unbounded (prefix) ranges.
        assert_eq!(
            scan(Some(&Value::Int(3)), Some(&Value::Int(7))),
            expect(&|ts| (3..=7).contains(&ts))
        );
        assert_eq!(scan(Some(&Value::Int(9)), None), expect(&|ts| ts >= 9));
        assert_eq!(scan(None, Some(&Value::Int(2))), expect(&|ts| ts <= 2));
        assert_eq!(scan(None, None), expect(&|_| true));
        // Inverted range: empty, not a panic.
        assert_eq!(
            scan(Some(&Value::Int(7)), Some(&Value::Int(3))),
            Vec::<usize>::new()
        );
        // Cross-type bounds land between integers.
        assert_eq!(
            scan(Some(&Value::Double(2.5)), Some(&Value::Double(4.5))),
            expect(&|ts| ts == 3 || ts == 4)
        );
        // Cost abort: more candidates than `abort_at` returns None.
        assert!(t.probe_range(0, &[&one], None, None, 3).is_none());
    }

    #[test]
    fn full_key_point_probe_and_distinct_stats() {
        let t = composite_table();
        let hits = t.probe_point(0, &[&Value::Int(2), &Value::Int(5)]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(t.rows()[hits[0]], vec![Value::Int(2), Value::Int(5)]);
        // 3 runs × 12 timesteps = 36 distinct composite keys.
        assert_eq!(t.index_distinct_keys(0), 36);
        // NULL in a point key matches nothing.
        assert_eq!(
            t.probe_point(0, &[&Value::Null, &Value::Int(5)]).unwrap(),
            NO_ROWS
        );
    }

    #[test]
    fn stream_ordered_yields_key_order_and_scan_order_ties() {
        let mut t = composite_table();
        // A duplicate key: ties must stream in ascending position.
        t.insert(vec![Value::Int(1), Value::Int(5)]).unwrap();
        let one = Value::Int(1);
        let asc: Vec<usize> = t
            .stream_ordered(0, &[&one], None, None, false)
            .unwrap()
            .collect();
        let ts_of = |p: usize| t.rows()[p][1].as_i64().unwrap();
        assert!(asc
            .windows(2)
            .all(|w| { ts_of(w[0]) < ts_of(w[1]) || (ts_of(w[0]) == ts_of(w[1]) && w[0] < w[1]) }));
        assert_eq!(asc.len(), 13);
        let desc: Vec<usize> = t
            .stream_ordered(0, &[&one], None, None, true)
            .unwrap()
            .collect();
        assert!(desc
            .windows(2)
            .all(|w| { ts_of(w[0]) > ts_of(w[1]) || (ts_of(w[0]) == ts_of(w[1]) && w[0] < w[1]) }));
        // Bounded stream honors the range.
        let bounded: Vec<usize> = t
            .stream_ordered(0, &[&one], Some(&Value::Int(4)), Some(&Value::Int(6)), true)
            .unwrap()
            .collect();
        assert!(bounded.iter().all(|&p| (4..=6).contains(&ts_of(p))));
    }

    #[test]
    fn prefix_probe_includes_null_tail_rows() {
        let mut t = composite_table();
        // A row whose tail key column is NULL must still be found by a
        // prefix probe on runid — a full scan would return it.
        t.insert(vec![Value::Int(1), Value::Null]).unwrap();
        let pos = t.len() - 1;
        let hits = t
            .probe_range(0, &[&Value::Int(1)], None, None, usize::MAX)
            .unwrap();
        assert!(hits.contains(&pos));
        // But a bounded range never reports it (ts <= 2 is unknown for
        // NULL): OrdKey::Null sorts below every numeric bound.
        let bounded = t
            .probe_range(0, &[&Value::Int(1)], Some(&Value::Int(0)), None, usize::MAX)
            .unwrap();
        assert!(!bounded.contains(&pos));
    }

    #[test]
    fn peek_edge_min_max() {
        let t = composite_table();
        // MAX(ts) within runid = 0: the row (0, 11).
        let at = t.peek_edge(0, &[&Value::Int(0)], true).unwrap().unwrap();
        assert_eq!(t.rows()[at], vec![Value::Int(0), Value::Int(11)]);
        // MIN(ts) within runid = 2: the row (2, 0).
        let at = t.peek_edge(0, &[&Value::Int(2)], false).unwrap().unwrap();
        assert_eq!(t.rows()[at], vec![Value::Int(2), Value::Int(0)]);
        // Missing prefix: no qualifying row.
        assert_eq!(t.peek_edge(0, &[&Value::Int(99)], true), Some(None));
        // Wrong prefix arity: the peek does not apply.
        assert!(t.peek_edge(0, &[], true).is_none());
    }

    #[test]
    fn peek_edge_skips_null_and_nan() {
        let mut t = Table::new(
            Schema::new(vec![Column {
                name: "d".into(),
                ctype: ColType::Double,
            }])
            .unwrap(),
        );
        t.insert(vec![Value::Null]).unwrap();
        t.insert(vec![Value::Double(f64::NAN)]).unwrap();
        t.insert(vec![Value::Double(2.5)]).unwrap();
        t.insert(vec![Value::Double(-1.0)]).unwrap();
        t.create_index("od", &["d"], true).unwrap();
        let min = t.peek_edge(0, &[], false).unwrap().unwrap();
        assert_eq!(t.rows()[min][0], Value::Double(-1.0));
        let max = t.peek_edge(0, &[], true).unwrap().unwrap();
        assert_eq!(t.rows()[max][0], Value::Double(2.5));
        // Only NULL and NaN left: both peeks report "no qualifying row".
        let mut t2 = t.clone();
        t2.rebuild_indexes();
        t2.delete_where(|r| matches!(r[0], Value::Double(d) if d.is_finite()));
        assert_eq!(t2.peek_edge(0, &[], false), Some(None));
        assert_eq!(t2.peek_edge(0, &[], true), Some(None));
    }

    #[test]
    fn text_range_probe() {
        let mut t = table();
        for (i, name) in ["alpha", "beta", "delta", "gamma"].iter().enumerate() {
            t.insert(vec![Value::Int(i as i64), Value::from(*name)])
                .unwrap();
        }
        t.create_index("ov", &["v"], true).unwrap();
        let hits = t
            .probe_range(
                0,
                &[],
                Some(&Value::from("beta")),
                Some(&Value::from("delta")),
                usize::MAX,
            )
            .unwrap();
        assert_eq!(hits, vec![1, 2]);
        // A numeric bound never sweeps text keys (disjoint key classes).
        let none = t
            .probe_range(
                0,
                &[],
                Some(&Value::Int(0)),
                Some(&Value::Int(100)),
                usize::MAX,
            )
            .unwrap();
        assert!(none.is_empty());
    }
}
