//! Snapshot persistence.
//!
//! The paper's metadata lived in a MySQL server and survived across runs —
//! that persistence is exactly what makes history files usable in
//! *subsequent* runs. Here the catalog serializes to JSON on the real
//! filesystem.

use std::path::Path;

use crate::catalog::Catalog;
use crate::db::Database;
use crate::error::{DbError, DbResult};

impl Database {
    /// Write a snapshot of all tables to `path` — atomically: the JSON
    /// goes to a temp file in the same directory, is fsync'd, and is
    /// renamed over `path`, so a crash mid-save can never destroy the
    /// previous snapshot (readers see the old file or the new one,
    /// never a torn mix).
    pub fn save(&self, path: impl AsRef<Path>) -> DbResult<()> {
        let snapshot = self.catalog_snapshot();
        let json = serde_json::to_string(&snapshot)
            .map_err(|e| DbError::Persist(format!("serialize: {e}")))?;
        crate::wal::storage::write_atomic(path.as_ref(), json.as_bytes())
            .map_err(|e| DbError::Persist(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Load a database from a snapshot written by [`Database::save`].
    pub fn load(path: impl AsRef<Path>) -> DbResult<Database> {
        let json = std::fs::read_to_string(path.as_ref())
            .map_err(|e| DbError::Persist(format!("read {}: {e}", path.as_ref().display())))?;
        let catalog: Catalog = serde_json::from_str(&json)
            .map_err(|e| DbError::Persist(format!("deserialize: {e}")))?;
        let db = Database::new();
        db.install_catalog(catalog);
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn save_load_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("meta.json");
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT, b TEXT, c DOUBLE)", &[])
            .unwrap();
        db.exec(
            "INSERT INTO t VALUES (?, ?, ?)",
            &[Value::Int(7), Value::from("seven"), Value::Double(7.5)],
        )
        .unwrap();
        db.save(&path).unwrap();

        let db2 = Database::load(&path).unwrap();
        let rs = db2.exec("SELECT a, b, c FROM t", &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![
                Value::Int(7),
                Value::Text("seven".into()),
                Value::Double(7.5)
            ]]
        );
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(matches!(
            Database::load("/nonexistent/nope.json"),
            Err(DbError::Persist(_))
        ));
    }

    #[test]
    fn load_corrupt_file_errors() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("bad.json");
        std::fs::write(&path, "{ not json").unwrap();
        assert!(matches!(Database::load(&path), Err(DbError::Persist(_))));
    }

    #[test]
    fn indexes_rebuild_after_load() {
        // Index *definitions* persist; the maps do not. A loaded
        // database must rebuild them before its first probe — and keep
        // them incrementally maintained afterwards.
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("ix.json");
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for i in 0..20 {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(i % 4)])
                .unwrap();
        }
        db.exec("CREATE INDEX tk ON t (k)", &[]).unwrap();
        db.save(&path).unwrap();

        let db2 = Database::load(&path).unwrap();
        db2.reset_stats();
        let rs = db2.exec("SELECT COUNT(*) FROM t WHERE k = 2", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5)));
        let stats = db2.stats();
        assert_eq!(stats.index_scans, 1, "loaded index must answer probes");
        assert_eq!(stats.rows_scanned, 5);
        // Maps stay maintained across post-load mutations.
        db2.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
        let rs = db2.exec("SELECT COUNT(*) FROM t WHERE k = 2", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(6)));
    }

    #[test]
    fn save_is_atomic_over_an_existing_snapshot() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("meta.json");
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.save(&path).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.save(&path).unwrap();
        // The rename left no temp litter behind — only the snapshot.
        let mut names: Vec<String> = std::fs::read_dir(dir.path())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        assert_eq!(names, vec!["meta.json"]);
        let db2 = Database::load(&path).unwrap();
        assert_eq!(
            db2.exec("SELECT COUNT(*) FROM t", &[]).unwrap().scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn null_values_survive_round_trip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("n.json");
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT, b TEXT)", &[]).unwrap();
        db.exec("INSERT INTO t (a) VALUES (1)", &[]).unwrap();
        db.save(&path).unwrap();
        let db2 = Database::load(&path).unwrap();
        let rs = db2.exec("SELECT b FROM t", &[]).unwrap();
        assert!(rs.rows[0][0].is_null());
    }
}
