//! Typed statements: relational operations as **values**, not SQL text.
//!
//! The metadata control plane above this crate used to push SQL strings
//! through the store — a seam that cannot be routed to a shard, cached
//! by key, or type-checked. This module replaces that seam. A table is
//! described once by a static [`TableDesc`] (via the [`Relation`] trait,
//! usually written with the [`relation!`](crate::relation) macro), DDL
//! is *generated* from the descriptor, and queries are built fluently —
//!
//! ```
//! use sdm_metadb::stmt::{param, Query, Relation, TypedColumn};
//! use sdm_metadb::{Database, Value};
//!
//! sdm_metadb::relation! {
//!     /// One `pets` row.
//!     pub struct PetRow in "pets" as PetCol {
//!         /// Pet id.
//!         pub id: i64 => Id,
//!         /// Display name.
//!         pub name: String => Name,
//!     }
//!     indexes { "pets_id" on id }
//! }
//!
//! let db = Database::new();
//! db.exec_stmt(&PetRow::TABLE.create_table(), &[]).unwrap();
//! for ix in PetRow::TABLE.create_indexes() {
//!     db.exec_stmt(&ix, &[]).unwrap();
//! }
//! db.exec_stmt(
//!     &sdm_metadb::stmt::Insert::<PetRow>::prepared(),
//!     &PetRow { id: 1, name: "rex".into() }.into_row(),
//! )
//! .unwrap();
//!
//! // Compiled once; executed many times with fresh parameters.
//! let by_id = Query::<PetRow>::filter(PetCol::Id.eq(param(0))).compile();
//! let rs = db.exec_stmt(&by_id, &[Value::Int(1)]).unwrap();
//! assert_eq!(rs.rows[0][1].as_str(), Some("rex"));
//! ```
//!
//! A compiled [`Stmt`] *is* the plan: it holds the executable AST behind
//! an `Arc`, so holders (`OnceLock` slots, statics via
//! [`stmt_once!`](crate::stmt_once)) replay it with zero SQL-text
//! formatting, hashing, or parsing on the hot path —
//! [`crate::DbStats::sql_texts`] stays flat while typed statements run.
//! [`Stmt::parse`] and [`Stmt::to_sql`] bridge to the stringly world for
//! deprecated veneers, debugging, and benchmarks that model parse-per-
//! call engines.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::error::DbResult;
use crate::eval::PlanCell;
use crate::schema::ColType;
use crate::sql::ast::{AggFunc, BinOp, Expr, Join, OrderBy, SelExpr, SelectItem, Statement};
use crate::sql::parse;
use crate::value::Value;

// ---------------------------------------------------------------------
// Descriptors
// ---------------------------------------------------------------------

/// Static description of one column of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColDesc {
    /// Column name as it appears in the table.
    pub name: &'static str,
    /// Declared type.
    pub ctype: ColType,
}

/// Static description of one secondary index of a relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexSpec {
    /// Index name, unique within the table.
    pub name: &'static str,
    /// Indexed columns, outermost key first. Hash indexes take exactly
    /// one; ordered indexes take one or more.
    pub columns: &'static [&'static str],
    /// Ordered (`BTreeMap`-backed, range/prefix-capable) vs hash
    /// (equality-only).
    pub ordered: bool,
}

/// Static descriptor of a metadata table: the single source of truth
/// its DDL, typed columns, and queries are all derived from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableDesc {
    /// Table name.
    pub name: &'static str,
    /// Columns in declaration order.
    pub columns: &'static [ColDesc],
    /// Declared secondary indexes (the hot lookup columns).
    pub indexes: &'static [IndexSpec],
}

impl TableDesc {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// `CREATE TABLE IF NOT EXISTS` statement generated from the
    /// descriptor — no hand-written DDL string.
    pub fn create_table(&self) -> Stmt {
        Stmt::from_ast(Statement::CreateTable {
            name: self.name.to_string(),
            columns: self
                .columns
                .iter()
                .map(|c| (c.name.to_string(), c.ctype))
                .collect(),
            if_not_exists: true,
        })
    }

    /// One `CREATE [ORDERED] INDEX` statement per declared index.
    pub fn create_indexes(&self) -> Vec<Stmt> {
        self.indexes
            .iter()
            .map(|ix| {
                Stmt::from_ast(Statement::CreateIndex {
                    name: ix.name.to_string(),
                    table: self.name.to_string(),
                    columns: ix.columns.iter().map(|c| c.to_string()).collect(),
                    ordered: ix.ordered,
                })
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Relation + columns
// ---------------------------------------------------------------------

/// A Rust value that maps onto one column cell.
pub trait ColValue: Sized {
    /// The declared column type this Rust type stores into.
    const COL_TYPE: ColType;
    /// Encode into a cell value.
    fn into_value(self) -> Value;
    /// Decode from a cell value. `NULL` (and any mismatched type)
    /// decodes as the type's default, mirroring the `unwrap_or_default`
    /// convention of the metadata read paths.
    fn from_value(v: &Value) -> Self;
}

impl ColValue for i64 {
    const COL_TYPE: ColType = ColType::Int;
    fn into_value(self) -> Value {
        Value::Int(self)
    }
    fn from_value(v: &Value) -> Self {
        v.as_i64().unwrap_or_default()
    }
}

impl ColValue for f64 {
    const COL_TYPE: ColType = ColType::Double;
    fn into_value(self) -> Value {
        Value::Double(self)
    }
    fn from_value(v: &Value) -> Self {
        v.as_f64().unwrap_or_default()
    }
}

impl ColValue for String {
    const COL_TYPE: ColType = ColType::Text;
    fn into_value(self) -> Value {
        Value::Text(self)
    }
    fn from_value(v: &Value) -> Self {
        v.as_str().unwrap_or_default().to_string()
    }
}

/// A table whose rows decode into (and encode from) a Rust struct.
///
/// Implementations are usually generated by the
/// [`relation!`](crate::relation) macro, which also emits a column enum
/// implementing [`TypedColumn`]:
///
/// ```
/// use sdm_metadb::stmt::Relation;
///
/// sdm_metadb::relation! {
///     /// One row of the measurement log.
///     pub struct SampleRow in "samples" as SampleCol {
///         /// Sensor id.
///         pub sensor: i64 => Sensor,
///         /// Measured value.
///         pub value: f64 => MeasuredValue,
///     }
/// }
///
/// assert_eq!(SampleRow::TABLE.name, "samples");
/// assert_eq!(SampleRow::TABLE.arity(), 2);
/// let row = SampleRow { sensor: 3, value: 0.5 }.into_row();
/// assert_eq!(SampleRow::from_row(&row).unwrap().sensor, 3);
/// ```
pub trait Relation: Sized {
    /// The table descriptor (name, columns, indexes).
    const TABLE: TableDesc;

    /// Decode a full-width row.
    fn from_row(row: &[Value]) -> DbResult<Self>;

    /// Encode into a full-width row (insert parameter order).
    fn into_row(self) -> Vec<Value>;
}

/// A typed column handle of relation `R`; the comparison methods build
/// [`Filter`]s for [`Query`], [`Update`], and [`Delete`].
pub trait TypedColumn<R: Relation>: Copy {
    /// Position of this column in the relation.
    fn index(self) -> usize;

    /// The column's SQL name.
    fn name(self) -> &'static str {
        R::TABLE.columns[self.index()].name
    }

    /// `column = rhs`.
    fn eq(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Eq, rhs)
    }

    /// `column != rhs`.
    fn ne(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Ne, rhs)
    }

    /// `column < rhs`.
    fn lt(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Lt, rhs)
    }

    /// `column <= rhs`.
    fn le(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Le, rhs)
    }

    /// `column > rhs`.
    fn gt(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Gt, rhs)
    }

    /// `column >= rhs`.
    fn ge(self, rhs: impl Into<Operand>) -> Filter<R> {
        self.cmp(BinOp::Ge, rhs)
    }

    /// `lo <= column AND column <= hi` — the closed range the planner
    /// turns into one ordered-index walk when the column is indexed.
    fn between(self, lo: impl Into<Operand>, hi: impl Into<Operand>) -> Filter<R> {
        self.ge(lo).and(self.le(hi))
    }

    /// `column IS NULL`.
    fn is_null(self) -> Filter<R> {
        Filter {
            expr: Expr::IsNull {
                expr: Box::new(Expr::Col(self.name().to_string())),
                negated: false,
            },
            _r: PhantomData,
        }
    }

    /// `column IS NOT NULL`.
    fn is_not_null(self) -> Filter<R> {
        Filter {
            expr: Expr::IsNull {
                expr: Box::new(Expr::Col(self.name().to_string())),
                negated: true,
            },
            _r: PhantomData,
        }
    }

    /// `column <op> rhs` for an arbitrary comparison operator.
    fn cmp(self, op: BinOp, rhs: impl Into<Operand>) -> Filter<R> {
        Filter {
            expr: Expr::Binary {
                op,
                lhs: Box::new(Expr::Col(self.name().to_string())),
                rhs: Box::new(rhs.into().into_expr()),
            },
            _r: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------
// Operands and filters
// ---------------------------------------------------------------------

/// The right-hand side of a comparison: a concrete value baked into the
/// compiled statement, or a positional `?` parameter supplied at
/// execution time (the compile-once hot-path shape).
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A literal value.
    Value(Value),
    /// Positional parameter (0-based).
    Param(usize),
}

impl Operand {
    fn into_expr(self) -> Expr {
        match self {
            Operand::Value(v) => Expr::Lit(v),
            Operand::Param(i) => Expr::Param(i),
        }
    }
}

/// The 0-based positional parameter `i` (renders as the i-th `?`).
pub fn param(i: usize) -> Operand {
    Operand::Param(i)
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Value(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Value(Value::Int(v))
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Value(Value::Int(v as i64))
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Value(Value::Int(v as i64))
    }
}

impl From<usize> for Operand {
    fn from(v: usize) -> Self {
        Operand::Value(Value::Int(v as i64))
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::Value(Value::Double(v))
    }
}

impl From<&str> for Operand {
    fn from(v: &str) -> Self {
        Operand::Value(Value::Text(v.to_string()))
    }
}

impl From<String> for Operand {
    fn from(v: String) -> Self {
        Operand::Value(Value::Text(v))
    }
}

/// A typed predicate over relation `R` (a `WHERE` clause under
/// construction). Built from [`TypedColumn`] comparisons and combined
/// with [`Filter::and`] / [`Filter::or`].
#[derive(Debug, Clone)]
pub struct Filter<R> {
    expr: Expr,
    _r: PhantomData<R>,
}

impl<R: Relation> Filter<R> {
    /// Both predicates must hold.
    pub fn and(self, other: Filter<R>) -> Filter<R> {
        self.join(BinOp::And, other)
    }

    /// Either predicate may hold.
    pub fn or(self, other: Filter<R>) -> Filter<R> {
        self.join(BinOp::Or, other)
    }

    fn join(self, op: BinOp, other: Filter<R>) -> Filter<R> {
        Filter {
            expr: Expr::Binary {
                op,
                lhs: Box::new(self.expr),
                rhs: Box::new(other.expr),
            },
            _r: PhantomData,
        }
    }
}

// ---------------------------------------------------------------------
// Compiled statements
// ---------------------------------------------------------------------

/// A compiled typed statement: the executable AST (shared, so cloning
/// and caching are free) plus the relation it touches and the slot the
/// executor caches its lowered instruction-list programs in.
///
/// Execute with [`crate::Database::exec_stmt`] or through
/// `MetadataStore::run` in the layers above. Unlike a SQL string, a
/// `Stmt` needs no lexing, hashing, or plan-cache lookup per call, and
/// after the first execution its predicates run as compiled programs —
/// no AST walk per row.
#[derive(Debug, Clone)]
pub struct Stmt {
    ast: Arc<Statement>,
    table: Option<Arc<str>>,
    cell: Arc<PlanCell>,
}

impl Stmt {
    /// Wrap an AST statement.
    pub fn from_ast(ast: Statement) -> Self {
        Self::from_shared(Arc::new(ast), Arc::new(PlanCell::new()))
    }

    /// Wrap an already-shared AST (a plan-cache hit hands these out,
    /// together with the cached compiled-program slot).
    pub(crate) fn from_shared(ast: Arc<Statement>, cell: Arc<PlanCell>) -> Self {
        let table = match &*ast {
            Statement::CreateTable { name, .. }
            | Statement::DropTable { name }
            | Statement::Insert { table: name, .. }
            | Statement::Select { table: name, .. }
            | Statement::Update { table: name, .. }
            | Statement::Delete { table: name, .. }
            | Statement::CreateIndex { table: name, .. }
            | Statement::DropIndex { table: name, .. } => Some(Arc::from(name.as_str())),
            Statement::Begin | Statement::Commit | Statement::Rollback => None,
        };
        Stmt { ast, table, cell }
    }

    /// The compiled-program slot the executor lowers this statement's
    /// expressions into on first execution. Clones share the slot, so a
    /// `stmt_once!` static compiles its predicates exactly once.
    pub(crate) fn plan_cell(&self) -> &PlanCell {
        &self.cell
    }

    /// Parse SQL text into a typed statement — the bridge the
    /// deprecated stringly veneers stand on. Typed call sites never
    /// need this.
    pub fn parse(sql: &str) -> DbResult<Stmt> {
        Ok(Stmt::from_ast(parse(sql)?))
    }

    /// `BEGIN`.
    pub fn begin() -> Stmt {
        Stmt::from_ast(Statement::Begin)
    }

    /// `COMMIT`.
    pub fn commit() -> Stmt {
        Stmt::from_ast(Statement::Commit)
    }

    /// `ROLLBACK`.
    pub fn rollback() -> Stmt {
        Stmt::from_ast(Statement::Rollback)
    }

    /// The table this statement touches (`None` for transaction
    /// control). This is the routing/caching key a sharded or caching
    /// store dispatches on. A `SELECT` with a join names its `FROM`
    /// table here; use [`Stmt::references`] to also cover the joined
    /// side.
    pub fn table(&self) -> Option<&str> {
        self.table.as_deref()
    }

    /// Whether this statement reads or writes `table`, including as the
    /// joined side of a `SELECT … INNER JOIN`. Caching layers gate
    /// their flushes on this, not on [`Stmt::table`] alone.
    pub fn references(&self, table: &str) -> bool {
        if self.table().is_some_and(|t| t.eq_ignore_ascii_case(table)) {
            return true;
        }
        matches!(
            &*self.ast,
            Statement::Select { join: Some(j), .. } if j.table.eq_ignore_ascii_case(table)
        )
    }

    /// Whether executing this statement may change table contents or
    /// schema.
    pub fn is_mutation(&self) -> bool {
        !matches!(
            &*self.ast,
            Statement::Select { .. } | Statement::Begin | Statement::Commit | Statement::Rollback
        )
    }

    /// The executable AST.
    pub fn ast(&self) -> &Statement {
        &self.ast
    }

    /// Render back to SQL text (debugging, the deprecated veneer, and
    /// benchmarks that model parse-per-call engines). Positional
    /// parameters render as `?` and must have been numbered in source
    /// order for the text to round-trip; non-finite doubles render as
    /// `NULL`.
    pub fn to_sql(&self) -> String {
        render_statement(&self.ast)
    }
}

// ---------------------------------------------------------------------
// Query / Insert / Update / Delete builders
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Proj {
    All,
    Cols(Vec<&'static str>),
    Agg(AggFunc, Option<&'static str>),
}

/// A fluent `SELECT` over relation `R`, compiled once with
/// [`Query::compile`] and replayed with fresh parameters:
///
/// ```
/// use sdm_metadb::stmt::{param, Query, Relation, TypedColumn};
/// use sdm_metadb::{Database, Value};
///
/// sdm_metadb::relation! {
///     /// One step record.
///     pub struct StepRow in "steps" as StepCol {
///         /// Run id.
///         pub runid: i64 => Runid,
///         /// Timestep index.
///         pub timestep: i64 => Timestep,
///     }
/// }
///
/// let db = Database::new();
/// db.exec_stmt(&StepRow::TABLE.create_table(), &[]).unwrap();
/// let ins = sdm_metadb::stmt::Insert::<StepRow>::prepared();
/// for t in 0..10 {
///     db.exec_stmt(&ins, &StepRow { runid: 7, timestep: t }.into_row())
///         .unwrap();
/// }
///
/// // Latest 3 steps of a run — compiled once, zero SQL text.
/// let latest = Query::<StepRow>::filter(StepCol::Runid.eq(param(0)))
///     .order_by_desc(StepCol::Timestep)
///     .limit(3)
///     .compile();
/// let rs = db.exec_stmt(&latest, &[Value::Int(7)]).unwrap();
/// let steps: Vec<StepRow> = sdm_metadb::stmt::decode(&rs).unwrap();
/// assert_eq!(steps[0].timestep, 9);
/// ```
#[derive(Debug, Clone)]
pub struct Query<R> {
    proj: Proj,
    distinct: bool,
    filter: Option<Expr>,
    order: Vec<OrderBy>,
    limit: Option<usize>,
    _r: PhantomData<R>,
}

impl<R: Relation> Default for Query<R> {
    fn default() -> Self {
        Self::all()
    }
}

impl<R: Relation> Query<R> {
    /// `SELECT * FROM R` with no predicate.
    pub fn all() -> Self {
        Query {
            proj: Proj::All,
            distinct: false,
            filter: None,
            order: Vec::new(),
            limit: None,
            _r: PhantomData,
        }
    }

    /// `SELECT * FROM R WHERE pred`.
    pub fn filter(pred: Filter<R>) -> Self {
        Self::all().and(pred)
    }

    /// The composite-index probe shape: `prefix_col = key AND lo <=
    /// range_col <= hi`. With an ordered index on `(prefix_col,
    /// range_col, …)` this compiles to one equality-prefix + range walk
    /// instead of a scan.
    pub fn prefix_range(
        prefix_col: impl TypedColumn<R>,
        key: impl Into<Operand>,
        range_col: impl TypedColumn<R>,
        lo: impl Into<Operand>,
        hi: impl Into<Operand>,
    ) -> Self {
        Self::filter(prefix_col.eq(key).and(range_col.between(lo, hi)))
    }

    /// AND another predicate onto the `WHERE` clause.
    pub fn and(mut self, pred: Filter<R>) -> Self {
        self.filter = Some(match self.filter.take() {
            None => pred.expr,
            Some(prev) => Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(prev),
                rhs: Box::new(pred.expr),
            },
        });
        self
    }

    /// Project only the given columns (in the given order).
    pub fn select<C: TypedColumn<R>>(mut self, cols: &[C]) -> Self {
        self.proj = Proj::Cols(cols.iter().map(|c| c.name()).collect());
        self
    }

    /// Project `COUNT(*)`.
    pub fn count(mut self) -> Self {
        self.proj = Proj::Agg(AggFunc::Count, None);
        self
    }

    /// Project `MAX(col)`.
    pub fn max(mut self, col: impl TypedColumn<R>) -> Self {
        self.proj = Proj::Agg(AggFunc::Max, Some(col.name()));
        self
    }

    /// Project `MIN(col)`.
    pub fn min(mut self, col: impl TypedColumn<R>) -> Self {
        self.proj = Proj::Agg(AggFunc::Min, Some(col.name()));
        self
    }

    /// `SELECT DISTINCT`.
    pub fn distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Ascending `ORDER BY` key (appends to any existing keys).
    pub fn order_by(mut self, col: impl TypedColumn<R>) -> Self {
        self.order.push(OrderBy {
            column: col.name().to_string(),
            desc: false,
        });
        self
    }

    /// Descending `ORDER BY` key.
    pub fn order_by_desc(mut self, col: impl TypedColumn<R>) -> Self {
        self.order.push(OrderBy {
            column: col.name().to_string(),
            desc: true,
        });
        self
    }

    /// `LIMIT k`.
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Compile into an executable [`Stmt`].
    pub fn compile(self) -> Stmt {
        let items = match self.proj {
            Proj::All => None,
            Proj::Cols(cols) => Some(
                cols.into_iter()
                    .map(|c| SelectItem {
                        expr: SelExpr::Col(c.to_string()),
                        alias: None,
                    })
                    .collect(),
            ),
            Proj::Agg(func, arg) => Some(vec![SelectItem {
                expr: SelExpr::Agg {
                    func,
                    arg: arg.map(str::to_string),
                },
                alias: None,
            }]),
        };
        Stmt::from_ast(Statement::Select {
            distinct: self.distinct,
            items,
            table: R::TABLE.name.to_string(),
            join: None,
            filter: self.filter,
            group_by: Vec::new(),
            having: None,
            order_by: self.order,
            limit: self.limit,
        })
    }
}

impl<R: Relation> Query<R> {
    /// `… INNER JOIN S ON left = right`: lift this single-table query
    /// into a typed two-table join. The receiver's filter carries over
    /// (its columns qualified with `R`'s table name), as does a
    /// column projection set with [`Query::select`]; aggregates do not
    /// join. The executor serves the equality with a merge join or
    /// index-nested-loop probes when the join columns are indexed.
    pub fn join_on<S: Relation>(
        self,
        left: impl TypedColumn<R>,
        right: impl TypedColumn<S>,
    ) -> JoinQuery<R, S> {
        let items = match self.proj {
            Proj::Cols(cols) => cols
                .into_iter()
                .map(|c| qualified_item(R::TABLE.name, c))
                .collect(),
            Proj::All | Proj::Agg(..) => Vec::new(),
        };
        JoinQuery {
            items,
            filter: self.filter.map(|e| qualify(R::TABLE.name, e)),
            order: self
                .order
                .into_iter()
                .map(|o| qualify_order(R::TABLE.name, o))
                .collect(),
            limit: self.limit,
            on_left: format!("{}.{}", R::TABLE.name, left.name()),
            on_right: format!("{}.{}", S::TABLE.name, right.name()),
            _rs: PhantomData,
        }
    }
}

/// Qualify every unqualified column reference in `e` with `table` —
/// sound because a `Filter<R>` can only name `R`'s columns.
fn qualify(table: &str, e: Expr) -> Expr {
    match e {
        Expr::Col(c) if !c.contains('.') => Expr::Col(format!("{table}.{c}")),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(qualify(table, *lhs)),
            rhs: Box::new(qualify(table, *rhs)),
        },
        Expr::Not(inner) => Expr::Not(Box::new(qualify(table, *inner))),
        Expr::Neg(inner) => Expr::Neg(Box::new(qualify(table, *inner))),
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(qualify(table, *expr)),
            negated,
        },
        other => other,
    }
}

fn qualify_order(table: &str, mut o: OrderBy) -> OrderBy {
    if !o.column.contains('.') {
        o.column = format!("{table}.{}", o.column);
    }
    o
}

fn qualified_item(table: &str, col: &str) -> SelectItem {
    SelectItem {
        expr: SelExpr::Col(format!("{table}.{col}")),
        alias: None,
    }
}

/// Typed two-table `SELECT … INNER JOIN` over relations `R` (left) and
/// `S` (right), built from [`Query::join_on`]. All columns are
/// qualified with their owning table's name at build time, so filters
/// stay unambiguous even when both relations share column names (the
/// join key itself usually does).
#[derive(Debug, Clone)]
pub struct JoinQuery<R, S> {
    items: Vec<SelectItem>,
    filter: Option<Expr>,
    order: Vec<OrderBy>,
    limit: Option<usize>,
    on_left: String,
    on_right: String,
    _rs: PhantomData<(R, S)>,
}

impl<R: Relation, S: Relation> JoinQuery<R, S> {
    /// Project columns of the left relation (appended in call order).
    pub fn select_left<C: TypedColumn<R>>(mut self, cols: &[C]) -> Self {
        self.items
            .extend(cols.iter().map(|c| qualified_item(R::TABLE.name, c.name())));
        self
    }

    /// Project columns of the right relation (appended in call order).
    pub fn select_right<C: TypedColumn<S>>(mut self, cols: &[C]) -> Self {
        self.items
            .extend(cols.iter().map(|c| qualified_item(S::TABLE.name, c.name())));
        self
    }

    /// AND a predicate over the left relation onto the `WHERE` clause.
    pub fn and_left(self, pred: Filter<R>) -> Self {
        self.and_expr(qualify(R::TABLE.name, pred.expr))
    }

    /// AND a predicate over the right relation onto the `WHERE` clause.
    pub fn and_right(self, pred: Filter<S>) -> Self {
        self.and_expr(qualify(S::TABLE.name, pred.expr))
    }

    fn and_expr(mut self, expr: Expr) -> Self {
        self.filter = Some(match self.filter.take() {
            None => expr,
            Some(prev) => Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(prev),
                rhs: Box::new(expr),
            },
        });
        self
    }

    /// Ascending `ORDER BY` key on the left relation.
    pub fn order_by_left(mut self, col: impl TypedColumn<R>) -> Self {
        self.order.push(OrderBy {
            column: format!("{}.{}", R::TABLE.name, col.name()),
            desc: false,
        });
        self
    }

    /// Ascending `ORDER BY` key on the right relation.
    pub fn order_by_right(mut self, col: impl TypedColumn<S>) -> Self {
        self.order.push(OrderBy {
            column: format!("{}.{}", S::TABLE.name, col.name()),
            desc: false,
        });
        self
    }

    /// `LIMIT k`.
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Compile into an executable [`Stmt`].
    pub fn compile(self) -> Stmt {
        let items = if self.items.is_empty() {
            None
        } else {
            Some(self.items)
        };
        Stmt::from_ast(Statement::Select {
            distinct: false,
            items,
            table: R::TABLE.name.to_string(),
            join: Some(Join {
                table: S::TABLE.name.to_string(),
                on_left: self.on_left,
                on_right: self.on_right,
            }),
            filter: self.filter,
            group_by: Vec::new(),
            having: None,
            order_by: self.order,
            limit: self.limit,
        })
    }
}

/// Typed `INSERT` into relation `R`.
#[derive(Debug, Clone, Copy)]
pub struct Insert<R> {
    _r: PhantomData<R>,
}

impl<R: Relation> Insert<R> {
    /// The all-parameters insert (`VALUES (?, ?, …)`): compile once,
    /// execute with [`Relation::into_row`] (or any full-width row of
    /// values, `NULL`s included).
    pub fn prepared() -> Stmt {
        let row = (0..R::TABLE.arity()).map(Expr::Param).collect();
        Stmt::from_ast(Statement::Insert {
            table: R::TABLE.name.to_string(),
            columns: None,
            rows: vec![row],
        })
    }

    /// A one-shot insert with the row's values baked in as literals.
    pub fn row(r: R) -> Stmt {
        Stmt::from_ast(Statement::Insert {
            table: R::TABLE.name.to_string(),
            columns: None,
            rows: vec![r.into_row().into_iter().map(Expr::Lit).collect()],
        })
    }
}

/// Typed `UPDATE` of relation `R`: chain [`Update::set`] assignments,
/// optionally [`Update::filter`], then [`Update::compile`].
#[derive(Debug, Clone)]
pub struct Update<R> {
    sets: Vec<(&'static str, Expr)>,
    filter: Option<Expr>,
    _r: PhantomData<R>,
}

impl<R: Relation> Default for Update<R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<R: Relation> Update<R> {
    /// An update with no assignments yet.
    pub fn new() -> Self {
        Update {
            sets: Vec::new(),
            filter: None,
            _r: PhantomData,
        }
    }

    /// `SET col = rhs`.
    pub fn set(mut self, col: impl TypedColumn<R>, rhs: impl Into<Operand>) -> Self {
        self.sets.push((col.name(), rhs.into().into_expr()));
        self
    }

    /// Restrict to rows matching `pred` (ANDs onto any previous
    /// predicate).
    pub fn filter(mut self, pred: Filter<R>) -> Self {
        self.filter = Some(match self.filter.take() {
            None => pred.expr,
            Some(prev) => Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(prev),
                rhs: Box::new(pred.expr),
            },
        });
        self
    }

    /// Compile into an executable [`Stmt`].
    pub fn compile(self) -> Stmt {
        Stmt::from_ast(Statement::Update {
            table: R::TABLE.name.to_string(),
            sets: self
                .sets
                .into_iter()
                .map(|(c, e)| (c.to_string(), e))
                .collect(),
            filter: self.filter,
        })
    }
}

/// Typed `DELETE` from relation `R`.
#[derive(Debug, Clone)]
pub struct Delete<R> {
    filter: Option<Expr>,
    _r: PhantomData<R>,
}

impl<R: Relation> Delete<R> {
    /// Delete every row.
    pub fn all() -> Self {
        Delete {
            filter: None,
            _r: PhantomData,
        }
    }

    /// Delete rows matching `pred`.
    pub fn filter(pred: Filter<R>) -> Self {
        Delete {
            filter: Some(pred.expr),
            _r: PhantomData,
        }
    }

    /// AND another predicate onto the `WHERE` clause.
    pub fn and(mut self, pred: Filter<R>) -> Self {
        self.filter = Some(match self.filter.take() {
            None => pred.expr,
            Some(prev) => Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(prev),
                rhs: Box::new(pred.expr),
            },
        });
        self
    }

    /// Compile into an executable [`Stmt`].
    pub fn compile(self) -> Stmt {
        Stmt::from_ast(Statement::Delete {
            table: R::TABLE.name.to_string(),
            filter: self.filter,
        })
    }
}

/// Decode a full-width result set (a [`Query::all`] /
/// [`Query::filter`] projection) into typed rows.
pub fn decode<R: Relation>(rs: &crate::db::ResultSet) -> DbResult<Vec<R>> {
    rs.rows.iter().map(|r| R::from_row(r)).collect()
}

// ---------------------------------------------------------------------
// SQL rendering (the text bridge)
// ---------------------------------------------------------------------

fn render_statement(stmt: &Statement) -> String {
    let mut s = String::new();
    match stmt {
        Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        } => {
            s.push_str("CREATE TABLE ");
            if *if_not_exists {
                s.push_str("IF NOT EXISTS ");
            }
            s.push_str(name);
            s.push_str(" (");
            for (i, (col, ty)) in columns.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(col);
                s.push(' ');
                s.push_str(match ty {
                    ColType::Int => "INT",
                    ColType::Double => "DOUBLE",
                    ColType::Text => "TEXT",
                });
            }
            s.push(')');
        }
        Statement::DropTable { name } => {
            s.push_str("DROP TABLE ");
            s.push_str(name);
        }
        Statement::CreateIndex {
            name,
            table,
            columns,
            ordered,
        } => {
            s.push_str(if *ordered {
                "CREATE ORDERED INDEX "
            } else {
                "CREATE INDEX "
            });
            s.push_str(name);
            s.push_str(" ON ");
            s.push_str(table);
            s.push_str(" (");
            s.push_str(&columns.join(", "));
            s.push(')');
        }
        Statement::DropIndex { name, table } => {
            s.push_str("DROP INDEX ");
            s.push_str(name);
            s.push_str(" ON ");
            s.push_str(table);
        }
        Statement::Insert {
            table,
            columns,
            rows,
        } => {
            s.push_str("INSERT INTO ");
            s.push_str(table);
            if let Some(cols) = columns {
                s.push_str(" (");
                s.push_str(&cols.join(", "));
                s.push(')');
            }
            s.push_str(" VALUES ");
            for (i, row) in rows.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('(');
                for (j, e) in row.iter().enumerate() {
                    if j > 0 {
                        s.push_str(", ");
                    }
                    render_expr(e, &mut s);
                }
                s.push(')');
            }
        }
        Statement::Select {
            distinct,
            items,
            table,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        } => {
            s.push_str("SELECT ");
            if *distinct {
                s.push_str("DISTINCT ");
            }
            match items {
                None => s.push('*'),
                Some(items) => {
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        match &item.expr {
                            SelExpr::Col(c) => s.push_str(c),
                            SelExpr::Agg { func, arg } => {
                                s.push_str(&func.name().to_ascii_uppercase());
                                s.push('(');
                                s.push_str(arg.as_deref().unwrap_or("*"));
                                s.push(')');
                            }
                        }
                        if let Some(a) = &item.alias {
                            s.push_str(" AS ");
                            s.push_str(a);
                        }
                    }
                }
            }
            s.push_str(" FROM ");
            s.push_str(table);
            if let Some(j) = join {
                s.push_str(" INNER JOIN ");
                s.push_str(&j.table);
                s.push_str(" ON ");
                s.push_str(&j.on_left);
                s.push_str(" = ");
                s.push_str(&j.on_right);
            }
            if let Some(f) = filter {
                s.push_str(" WHERE ");
                render_expr(f, &mut s);
            }
            if !group_by.is_empty() {
                s.push_str(" GROUP BY ");
                s.push_str(&group_by.join(", "));
            }
            if let Some(h) = having {
                s.push_str(" HAVING ");
                render_expr(h, &mut s);
            }
            render_order_limit(order_by, *limit, &mut s);
        }
        Statement::Update {
            table,
            sets,
            filter,
        } => {
            s.push_str("UPDATE ");
            s.push_str(table);
            s.push_str(" SET ");
            for (i, (col, e)) in sets.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(col);
                s.push_str(" = ");
                render_expr(e, &mut s);
            }
            if let Some(f) = filter {
                s.push_str(" WHERE ");
                render_expr(f, &mut s);
            }
        }
        Statement::Delete { table, filter } => {
            s.push_str("DELETE FROM ");
            s.push_str(table);
            if let Some(f) = filter {
                s.push_str(" WHERE ");
                render_expr(f, &mut s);
            }
        }
        Statement::Begin => s.push_str("BEGIN"),
        Statement::Commit => s.push_str("COMMIT"),
        Statement::Rollback => s.push_str("ROLLBACK"),
    }
    s
}

fn render_order_limit(order_by: &[OrderBy], limit: Option<usize>, s: &mut String) {
    if !order_by.is_empty() {
        s.push_str(" ORDER BY ");
        for (i, o) in order_by.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&o.column);
            if o.desc {
                s.push_str(" DESC");
            }
        }
    }
    if let Some(k) = limit {
        s.push_str(&format!(" LIMIT {k}"));
    }
}

fn render_expr(e: &Expr, s: &mut String) {
    match e {
        Expr::Lit(v) => render_value(v, s),
        Expr::Col(c) => s.push_str(c),
        Expr::Param(_) => s.push('?'),
        Expr::Neg(inner) => {
            s.push('-');
            render_expr(inner, s);
        }
        Expr::Not(inner) => {
            s.push_str("NOT ");
            render_expr(inner, s);
        }
        Expr::IsNull { expr, negated } => {
            render_expr(expr, s);
            s.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        Expr::Binary { op, lhs, rhs } => {
            s.push('(');
            render_expr(lhs, s);
            s.push_str(match op {
                BinOp::Eq => " = ",
                BinOp::Ne => " != ",
                BinOp::Lt => " < ",
                BinOp::Le => " <= ",
                BinOp::Gt => " > ",
                BinOp::Ge => " >= ",
                BinOp::And => " AND ",
                BinOp::Or => " OR ",
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
            });
            render_expr(rhs, s);
            s.push(')');
        }
    }
}

fn render_value(v: &Value, s: &mut String) {
    match v {
        Value::Null => s.push_str("NULL"),
        Value::Int(i) => s.push_str(&i.to_string()),
        Value::Double(d) if d.is_finite() => {
            let text = format!("{d}");
            s.push_str(&text);
            if !text.contains('.') {
                s.push_str(".0");
            }
        }
        Value::Double(_) => s.push_str("NULL"),
        Value::Text(t) => {
            s.push('\'');
            s.push_str(&t.replace('\'', "''"));
            s.push('\'');
        }
    }
}

// ---------------------------------------------------------------------
// relation! macro
// ---------------------------------------------------------------------

/// Declare a [`Relation`](crate::stmt::Relation): a row struct, its
/// column enum (implementing [`TypedColumn`](crate::stmt::TypedColumn)),
/// and the static [`TableDesc`](crate::stmt::TableDesc) they share.
/// Column SQL names are the field names; DDL is generated from the
/// descriptor, never hand-written.
///
/// `indexes { ... }` declares single-column hash indexes (equality
/// probes); `ordered { ... }` declares ordered indexes over one or more
/// columns (range, prefix, MIN/MAX-peek, and ORDER BY streaming):
///
/// ```
/// sdm_metadb::relation! {
///     /// One host heartbeat.
///     pub struct BeatRow in "beats" as BeatCol {
///         /// Host id.
///         pub host: i64 => Host,
///         /// Beat sequence number.
///         pub seq: i64 => Seq,
///     }
///     indexes { "beats_host" on host }
///     ordered { "beats_host_seq" on (host, seq) }
/// }
///
/// use sdm_metadb::stmt::Relation;
/// assert_eq!(BeatRow::TABLE.indexes[0].columns, ["host"]);
/// assert!(!BeatRow::TABLE.indexes[0].ordered);
/// assert_eq!(BeatRow::TABLE.indexes[1].columns, ["host", "seq"]);
/// assert!(BeatRow::TABLE.indexes[1].ordered);
/// ```
#[macro_export]
macro_rules! relation {
    (
        $(#[$smeta:meta])*
        pub struct $name:ident in $table:literal as $colenum:ident {
            $( $(#[$fmeta:meta])* pub $field:ident : $fty:ty => $variant:ident ),+ $(,)?
        }
        $( indexes { $( $iname:literal on $icol:ident ),+ $(,)? } )?
        $( ordered { $( $oname:literal on ( $($ocol:ident),+ $(,)? ) ),+ $(,)? } )?
    ) => {
        $(#[$smeta])*
        #[derive(Debug, Clone, PartialEq)]
        pub struct $name {
            $( $(#[$fmeta])* pub $field : $fty, )+
        }

        #[doc = concat!("Typed columns of [`", stringify!($name), "`] (`", $table, "`).")]
        #[derive(Debug, Clone, Copy)]
        pub enum $colenum {
            $(
                #[doc = concat!("The `", stringify!($field), "` column.")]
                $variant,
            )+
        }

        impl $crate::stmt::Relation for $name {
            const TABLE: $crate::stmt::TableDesc = $crate::stmt::TableDesc {
                name: $table,
                columns: &[
                    $( $crate::stmt::ColDesc {
                        name: stringify!($field),
                        ctype: <$fty as $crate::stmt::ColValue>::COL_TYPE,
                    }, )+
                ],
                indexes: &[
                    $($( $crate::stmt::IndexSpec {
                        name: $iname,
                        columns: &[stringify!($icol)],
                        ordered: false,
                    }, )+)?
                    $($( $crate::stmt::IndexSpec {
                        name: $oname,
                        columns: &[$( stringify!($ocol) ),+],
                        ordered: true,
                    }, )+)?
                ],
            };

            fn from_row(row: &[$crate::Value]) -> $crate::DbResult<Self> {
                let want = <Self as $crate::stmt::Relation>::TABLE.arity();
                if row.len() != want {
                    return Err($crate::DbError::Arity(format!(
                        "{} decodes {} columns, got {}",
                        stringify!($name),
                        want,
                        row.len()
                    )));
                }
                let mut cells = row.iter();
                Ok(Self {
                    $( $field: <$fty as $crate::stmt::ColValue>::from_value(
                        // analyze:allow(unwrap: row arity was checked against the field count just above)
                        cells.next().expect("arity checked above"),
                    ), )+
                })
            }

            fn into_row(self) -> Vec<$crate::Value> {
                vec![ $( $crate::stmt::ColValue::into_value(self.$field), )+ ]
            }
        }

        impl $crate::stmt::TypedColumn<$name> for $colenum {
            fn index(self) -> usize {
                self as usize
            }
        }
    };
}

/// Compile a typed [`Stmt`](crate::stmt::Stmt) exactly once per call
/// site and reuse it for the life of the process — the typed analogue
/// of a prepared-statement slot:
///
/// ```
/// use sdm_metadb::stmt::{Insert, Relation, Stmt};
/// use sdm_metadb::{stmt_once, Database};
///
/// sdm_metadb::relation! {
///     /// One audit line.
///     pub struct AuditRow in "audit" as AuditCol {
///         /// Event code.
///         pub code: i64 => Code,
///     }
/// }
///
/// let db = Database::new();
/// db.exec_stmt(&AuditRow::TABLE.create_table(), &[]).unwrap();
/// for code in 0..3 {
///     // Compiled on the first pass, replayed afterwards.
///     db.exec_stmt(
///         stmt_once!(Insert::<AuditRow>::prepared()),
///         &AuditRow { code }.into_row(),
///     )
///     .unwrap();
/// }
/// ```
#[macro_export]
macro_rules! stmt_once {
    ($build:expr) => {{
        static STMT: std::sync::OnceLock<$crate::stmt::Stmt> = std::sync::OnceLock::new();
        STMT.get_or_init(|| $build)
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Database;
    use crate::error::DbError;

    crate::relation! {
        /// Test relation.
        pub struct TRow in "t" as TCol {
            /// Key.
            pub k: i64 => K,
            /// Value.
            pub v: i64 => V,
            /// Label.
            pub label: String => Label,
        }
        indexes { "t_k" on k }
        ordered { "t_kv" on (k, v) }
    }

    fn db_with_rows() -> Database {
        let db = Database::new();
        db.exec_stmt(&TRow::TABLE.create_table(), &[]).unwrap();
        for ix in TRow::TABLE.create_indexes() {
            db.exec_stmt(&ix, &[]).unwrap();
        }
        let ins = Insert::<TRow>::prepared();
        for i in 0..10i64 {
            db.exec_stmt(
                &ins,
                &TRow {
                    k: i % 3,
                    v: i,
                    label: format!("r{i}"),
                }
                .into_row(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ddl_is_generated_from_descriptor() {
        let db = Database::new();
        db.exec_stmt(&TRow::TABLE.create_table(), &[]).unwrap();
        // Idempotent (IF NOT EXISTS).
        db.exec_stmt(&TRow::TABLE.create_table(), &[]).unwrap();
        assert!(db.has_table("t"));
        for ix in TRow::TABLE.create_indexes() {
            db.exec_stmt(&ix, &[]).unwrap();
        }
        assert!(matches!(
            db.exec_stmt(&TRow::TABLE.create_indexes()[0], &[]),
            Err(DbError::IndexExists(_))
        ));
    }

    #[test]
    fn typed_query_filters_orders_limits() {
        let db = db_with_rows();
        let q = Query::<TRow>::filter(TCol::K.eq(param(0)))
            .order_by_desc(TCol::V)
            .limit(2)
            .compile();
        let rs = db.exec_stmt(&q, &[Value::Int(1)]).unwrap();
        let rows: Vec<TRow> = decode(&rs).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].v, rows[1].v), (7, 4));
        assert_eq!(rows[0].label, "r7");
    }

    #[test]
    fn typed_query_uses_declared_index() {
        let db = db_with_rows();
        db.reset_stats();
        let q = Query::<TRow>::filter(TCol::K.eq(1)).compile();
        db.exec_stmt(&q, &[]).unwrap();
        let stats = db.stats();
        assert_eq!((stats.index_scans, stats.full_scans), (1, 0));
        // Typed execution never touches SQL text.
        assert_eq!(stats.sql_texts, 0);
        assert_eq!(stats.parse_misses, 0);
    }

    #[test]
    fn projections_and_aggregates() {
        let db = db_with_rows();
        let rs = db
            .exec_stmt(&Query::<TRow>::all().count().compile(), &[])
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(10)));
        let rs = db
            .exec_stmt(&Query::<TRow>::all().max(TCol::V).compile(), &[])
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(9)));
        let rs = db
            .exec_stmt(
                &Query::<TRow>::all()
                    .select(&[TCol::Label, TCol::V])
                    .order_by(TCol::V)
                    .limit(1)
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["label", "v"]);
        assert_eq!(rs.rows[0][0].as_str(), Some("r0"));
        let rs = db
            .exec_stmt(
                &Query::<TRow>::all()
                    .distinct()
                    .select(&[TCol::K])
                    .order_by(TCol::K)
                    .compile(),
                &[],
            )
            .unwrap();
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn update_and_delete_builders() {
        let db = db_with_rows();
        let up = Update::<TRow>::new()
            .set(TCol::V, param(0))
            .filter(TCol::K.eq(param(1)))
            .compile();
        let rs = db.exec_stmt(&up, &[Value::Int(-1), Value::Int(2)]).unwrap();
        assert_eq!(rs.affected, 3);
        let del = Delete::<TRow>::filter(TCol::V.eq(-1i64)).compile();
        let rs = db.exec_stmt(&del, &[]).unwrap();
        assert_eq!(rs.affected, 3);
        let rs = db
            .exec_stmt(&Query::<TRow>::all().count().compile(), &[])
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(7)));
    }

    #[test]
    fn null_handling_and_complex_filters() {
        let db = db_with_rows();
        db.exec_stmt(
            &Insert::<TRow>::prepared(),
            &[Value::Int(99), Value::Null, Value::Null],
        )
        .unwrap();
        let q = Query::<TRow>::filter(TCol::V.is_null()).compile();
        assert_eq!(db.exec_stmt(&q, &[]).unwrap().len(), 1);
        let q = Query::<TRow>::filter(
            TCol::V
                .is_not_null()
                .and(TCol::K.eq(0i64).or(TCol::V.ge(8i64))),
        )
        .compile();
        let rs = db.exec_stmt(&q, &[]).unwrap();
        assert_eq!(rs.len(), 5); // k∈{0,3,6,9} plus v∈{8}
    }

    #[test]
    fn stmt_metadata_is_exposed() {
        let q = Query::<TRow>::all().compile();
        assert_eq!(q.table(), Some("t"));
        assert!(!q.is_mutation());
        assert!(Insert::<TRow>::prepared().is_mutation());
        assert_eq!(Stmt::begin().table(), None);
        let cloned = q.clone();
        assert!(Arc::ptr_eq(&q.ast, &cloned.ast), "cloning shares the AST");
    }

    #[test]
    fn references_covers_join_sides() {
        let q = Query::<TRow>::all().compile();
        assert!(q.references("t"));
        assert!(q.references("T"), "case-insensitive like the catalog");
        assert!(!q.references("other"));
        let join = Stmt::parse("SELECT t.k FROM other INNER JOIN t ON other.k = t.k").unwrap();
        assert_eq!(join.table(), Some("other"));
        assert!(join.references("t"), "joined table is referenced");
        assert!(!Stmt::commit().references("t"));
    }

    #[test]
    fn parse_bridge_matches_typed() {
        let db = db_with_rows();
        let typed = Query::<TRow>::filter(TCol::K.eq(param(0)))
            .order_by(TCol::V)
            .compile();
        let parsed = Stmt::parse(&typed.to_sql()).unwrap();
        let a = db.exec_stmt(&typed, &[Value::Int(2)]).unwrap();
        let b = db.exec_stmt(&parsed, &[Value::Int(2)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn to_sql_round_trips_every_builder() {
        let db = db_with_rows();
        let stmts = [
            TRow::TABLE.create_table(),
            Insert::<TRow>::row(TRow {
                k: 5,
                v: -3,
                label: "it's".into(),
            }),
            Query::<TRow>::filter(TCol::Label.eq("it's").and(TCol::V.le(0i64)))
                .select(&[TCol::K, TCol::V])
                .order_by_desc(TCol::K)
                .limit(4)
                .compile(),
            Update::<TRow>::new()
                .set(TCol::V, 7i64)
                .filter(TCol::K.eq(5i64))
                .compile(),
            Delete::<TRow>::filter(TCol::K.eq(5i64)).compile(),
        ];
        for stmt in stmts {
            let text = stmt.to_sql();
            let reparsed = Stmt::parse(&text).unwrap();
            let a = db.exec_stmt(&stmt, &[]).unwrap();
            let b = db.exec_stmt(&reparsed, &[]).unwrap();
            // Mutations executed twice differ in affected rows only when
            // the first run changed the data the second sees; compare the
            // SELECT results instead for those.
            if !stmt.is_mutation() {
                assert_eq!(a, b, "round-trip mismatch for {text}");
            }
        }
    }

    #[test]
    fn ordered_index_ddl_round_trips() {
        let stmts = TRow::TABLE.create_indexes();
        let texts: Vec<String> = stmts.iter().map(Stmt::to_sql).collect();
        assert_eq!(texts[0], "CREATE INDEX t_k ON t (k)");
        assert_eq!(texts[1], "CREATE ORDERED INDEX t_kv ON t (k, v)");
        for (stmt, text) in stmts.iter().zip(&texts) {
            assert_eq!(Stmt::parse(text).unwrap().ast(), stmt.ast());
        }
    }

    #[test]
    fn between_compiles_to_closed_range() {
        let db = db_with_rows();
        db.reset_stats();
        let q = Query::<TRow>::filter(
            TCol::K
                .eq(param(0))
                .and(TCol::V.between(param(1), param(2))),
        )
        .compile();
        let rs = db
            .exec_stmt(&q, &[Value::Int(1), Value::Int(3), Value::Int(8)])
            .unwrap();
        let rows: Vec<TRow> = decode(&rs).unwrap();
        assert_eq!(
            rows.iter().map(|r| r.v).collect::<Vec<_>>(),
            [4, 7],
            "k = 1 rows with v in [3, 8]"
        );
        let stats = db.stats();
        assert_eq!(
            (stats.plan_range_probes, stats.full_scans),
            (1, 0),
            "between rides the (k, v) ordered index"
        );
        // The rendered text re-executes to the same rows.
        let reparsed = Stmt::parse(&q.to_sql()).unwrap();
        let rs2 = db
            .exec_stmt(&reparsed, &[Value::Int(1), Value::Int(3), Value::Int(8)])
            .unwrap();
        assert_eq!(rs, rs2);
    }

    #[test]
    fn prefix_range_round_trips_and_probes() {
        let db = db_with_rows();
        db.reset_stats();
        let q = Query::<TRow>::prefix_range(TCol::K, param(0), TCol::V, param(1), param(2))
            .order_by(TCol::V)
            .compile();
        let params = [Value::Int(0), Value::Int(0), Value::Int(6)];
        let a = db.exec_stmt(&q, &params).unwrap();
        let rows: Vec<TRow> = decode(&a).unwrap();
        assert_eq!(rows.iter().map(|r| r.v).collect::<Vec<_>>(), [0, 3, 6]);
        let b = db
            .exec_stmt(&Stmt::parse(&q.to_sql()).unwrap(), &params)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(db.stats().full_scans, 0);
    }

    #[test]
    fn double_literals_render_parseably() {
        let mut s = String::new();
        render_value(&Value::Double(2.0), &mut s);
        assert_eq!(s, "2.0");
        s.clear();
        render_value(&Value::Double(0.25), &mut s);
        assert_eq!(s, "0.25");
        s.clear();
        render_value(&Value::Double(f64::NAN), &mut s);
        assert_eq!(s, "NULL");
    }

    #[test]
    fn from_row_checks_arity() {
        assert!(matches!(
            TRow::from_row(&[Value::Int(1)]),
            Err(DbError::Arity(_))
        ));
    }
}
