//! Recursive-descent parser.

use crate::error::{DbError, DbResult};
use crate::schema::ColType;
use crate::sql::ast::{AggFunc, BinOp, Expr, Join, OrderBy, SelExpr, SelectItem, Statement};
use crate::sql::lexer::{lex, Token};
use crate::value::Value;

/// Parse one SQL statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> DbResult<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: 0,
    };
    let stmt = p.statement()?;
    p.eat_optional_semi();
    if p.pos != p.tokens.len() {
        return Err(DbError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> DbResult<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_optional_semi(&mut self) {
        if matches!(self.peek(), Some(Token::Semi)) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: &Token) -> DbResult<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            Err(DbError::Parse(format!("expected {want:?}, got {got:?}")))
        }
    }

    /// Consume a keyword (case-insensitive) or error.
    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        match self.next()? {
            Token::Ident(s) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(DbError::Parse(format!(
                "expected keyword {kw}, got {other:?}"
            ))),
        }
    }

    /// Consume a keyword if present.
    fn accept_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> DbResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(DbError::Parse(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.accept_kw("CREATE") {
            if self.accept_kw("INDEX") {
                self.create_index(false)
            } else if self.accept_kw("ORDERED") {
                self.expect_kw("INDEX")?;
                self.create_index(true)
            } else {
                self.create_table()
            }
        } else if self.accept_kw("DROP") {
            if self.accept_kw("INDEX") {
                let name = self.ident()?;
                self.expect_kw("ON")?;
                let table = self.ident()?;
                Ok(Statement::DropIndex { name, table })
            } else {
                self.expect_kw("TABLE")?;
                Ok(Statement::DropTable {
                    name: self.ident()?,
                })
            }
        } else if self.accept_kw("INSERT") {
            self.insert()
        } else if self.accept_kw("SELECT") {
            self.select()
        } else if self.accept_kw("UPDATE") {
            self.update()
        } else if self.accept_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let filter = self.opt_where()?;
            Ok(Statement::Delete { table, filter })
        } else if self.accept_kw("BEGIN") {
            Ok(Statement::Begin)
        } else if self.accept_kw("START") {
            self.expect_kw("TRANSACTION")?;
            Ok(Statement::Begin)
        } else if self.accept_kw("COMMIT") {
            Ok(Statement::Commit)
        } else if self.accept_kw("ROLLBACK") {
            Ok(Statement::Rollback)
        } else {
            Err(DbError::Parse(format!(
                "unknown statement start: {:?}",
                self.peek()
            )))
        }
    }

    fn coltype(&mut self) -> DbResult<ColType> {
        let t = self.ident()?;
        // Accept MySQL-ish spellings from the paper era.
        let ct = match t.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => ColType::Int,
            "DOUBLE" | "FLOAT" | "REAL" => ColType::Double,
            "TEXT" | "VARCHAR" | "CHAR" => ColType::Text,
            other => return Err(DbError::Parse(format!("unknown column type {other}"))),
        };
        // Optional (N) length suffix, ignored.
        if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            loop {
                match self.next()? {
                    Token::RParen => break,
                    Token::Int(_) | Token::Comma => {}
                    other => {
                        return Err(DbError::Parse(format!(
                            "unexpected {other:?} in type suffix"
                        )))
                    }
                }
            }
        }
        Ok(ct)
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.accept_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ct = self.coltype()?;
            columns.push((col, ct));
            match self.next()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(DbError::Parse(format!("expected , or ), got {other:?}"))),
            }
        }
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn create_index(&mut self, ordered: bool) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect(&Token::LParen)?;
        let mut columns = vec![self.ident()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.pos += 1;
            columns.push(self.ident()?);
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            columns,
            ordered,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if matches!(self.peek(), Some(Token::LParen)) {
            self.pos += 1;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                match self.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return Err(DbError::Parse(format!("expected , or ), got {other:?}"))),
                }
            }
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                match self.next()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    other => return Err(DbError::Parse(format!("expected , or ), got {other:?}"))),
                }
            }
            rows.push(row);
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                continue;
            }
            break;
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    /// One SELECT-list item: column, or `FUNC(col)` / `COUNT(*)`, with an
    /// optional `AS alias`.
    fn select_item(&mut self) -> DbResult<SelectItem> {
        let head = self.ident()?;
        let expr = if matches!(self.peek(), Some(Token::LParen)) {
            let func = match head.to_ascii_uppercase().as_str() {
                "COUNT" => AggFunc::Count,
                "SUM" => AggFunc::Sum,
                "AVG" => AggFunc::Avg,
                "MIN" => AggFunc::Min,
                "MAX" => AggFunc::Max,
                other => {
                    return Err(DbError::Parse(format!(
                        "unknown aggregate function {other}"
                    )))
                }
            };
            self.pos += 1; // (
            let arg = if matches!(self.peek(), Some(Token::Star)) {
                self.pos += 1;
                if func != AggFunc::Count {
                    return Err(DbError::Parse(format!("{}(*) is not valid", func.name())));
                }
                None
            } else {
                Some(self.ident()?)
            };
            self.expect(&Token::RParen)?;
            SelExpr::Agg { func, arg }
        } else {
            SelExpr::Col(head)
        };
        let alias = if self.accept_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn select(&mut self) -> DbResult<Statement> {
        let distinct = self.accept_kw("DISTINCT");
        let items = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            None
        } else {
            let mut items = vec![self.select_item()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                items.push(self.select_item()?);
            }
            Some(items)
        };
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let join = if self.accept_kw("INNER") {
            self.expect_kw("JOIN")?;
            Some(self.join_clause()?)
        } else if self.accept_kw("JOIN") {
            Some(self.join_clause()?)
        } else {
            None
        };
        let filter = self.opt_where()?;
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.ident()?);
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                group_by.push(self.ident()?);
            }
        }
        let having = if self.accept_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.accept_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let column = self.ident()?;
                let desc = if self.accept_kw("DESC") {
                    true
                } else {
                    self.accept_kw("ASC");
                    false
                };
                order_by.push(OrderBy { column, desc });
                if matches!(self.peek(), Some(Token::Comma)) {
                    self.pos += 1;
                    continue;
                }
                break;
            }
        }
        let limit = if self.accept_kw("LIMIT") {
            match self.next()? {
                Token::Int(n) if n >= 0 => Some(n as usize),
                other => return Err(DbError::Parse(format!("bad LIMIT operand {other:?}"))),
            }
        } else {
            None
        };
        Ok(Statement::Select {
            distinct,
            items,
            table,
            join,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn join_clause(&mut self) -> DbResult<Join> {
        let table = self.ident()?;
        self.expect_kw("ON")?;
        let on_left = self.ident()?;
        self.expect(&Token::Eq)?;
        let on_right = self.ident()?;
        Ok(Join {
            table,
            on_left,
            on_right,
        })
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            sets.push((col, self.expr()?));
            if matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                continue;
            }
            break;
        }
        let filter = self.opt_where()?;
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn opt_where(&mut self) -> DbResult<Option<Expr>> {
        if self.accept_kw("WHERE") {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    // Expression grammar: or_expr > and_expr > not_expr > cmp > add > mul > unary > atom
    fn expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.accept_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.accept_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> DbResult<Expr> {
        if self.accept_kw("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> DbResult<Expr> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL
        if self.accept_kw("IS") {
            let negated = self.accept_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> DbResult<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> DbResult<Expr> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.unary_expr()?)));
        }
        self.atom()
    }

    fn atom(&mut self) -> DbResult<Expr> {
        match self.next()? {
            Token::Int(i) => Ok(Expr::Lit(Value::Int(i))),
            Token::Float(f) => Ok(Expr::Lit(Value::Double(f))),
            Token::Str(s) => Ok(Expr::Lit(Value::Text(s))),
            Token::Param => {
                let idx = self.params;
                self.params += 1;
                Ok(Expr::Param(idx))
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(s) if s.eq_ignore_ascii_case("NULL") => Ok(Expr::Lit(Value::Null)),
            Token::Ident(s) => Ok(Expr::Col(s)),
            other => Err(DbError::Parse(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shorthand: the projected column names of a parsed SELECT.
    fn cols_of(s: &Statement) -> Option<Vec<String>> {
        match s {
            Statement::Select { items, .. } => items
                .as_ref()
                .map(|v| v.iter().map(SelectItem::output_name).collect()),
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn parse_create_table() {
        let s = parse(
            "CREATE TABLE run_table (runid INTEGER, problem_size INTEGER, file_name VARCHAR(64))",
        )
        .unwrap();
        match s {
            Statement::CreateTable {
                name,
                columns,
                if_not_exists,
            } => {
                assert_eq!(name, "run_table");
                assert_eq!(columns.len(), 3);
                assert_eq!(columns[2], ("file_name".to_string(), ColType::Text));
                assert!(!if_not_exists);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_create_if_not_exists() {
        let s = parse("CREATE TABLE IF NOT EXISTS t (a INT)").unwrap();
        assert!(matches!(
            s,
            Statement::CreateTable {
                if_not_exists: true,
                ..
            }
        ));
    }

    #[test]
    fn parse_insert_with_params() {
        let s = parse("INSERT INTO t VALUES (?, ?, 'x')").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Expr::Param(0));
                assert_eq!(rows[0][1], Expr::Param(1));
                assert_eq!(rows[0][2], Expr::Lit(Value::Text("x".into())));
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_multi_row_insert() {
        let s = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)").unwrap();
        match s {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns, Some(vec!["a".to_string(), "b".to_string()]));
                assert_eq!(rows.len(), 2);
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_select_full() {
        let s = parse(
            "SELECT a, b FROM t WHERE a > 1 AND b = 'f' OR NOT a <= 0 ORDER BY a DESC, b LIMIT 5",
        )
        .unwrap();
        assert_eq!(cols_of(&s), Some(vec!["a".to_string(), "b".to_string()]));
        match s {
            Statement::Select {
                table,
                filter,
                order_by,
                limit,
                ..
            } => {
                assert_eq!(table, "t");
                assert!(filter.is_some());
                assert_eq!(order_by.len(), 2);
                assert!(order_by[0].desc && !order_by[1].desc);
                assert_eq!(limit, Some(5));
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_select_star() {
        let s = parse("SELECT * FROM t;").unwrap();
        assert!(matches!(s, Statement::Select { items: None, .. }));
    }

    #[test]
    fn parse_select_distinct() {
        let s = parse("SELECT DISTINCT a FROM t").unwrap();
        assert!(matches!(s, Statement::Select { distinct: true, .. }));
    }

    #[test]
    fn parse_aggregates() {
        let s = parse("SELECT COUNT(*), SUM(v) AS total, MAX(v) FROM t").unwrap();
        match &s {
            Statement::Select {
                items: Some(items), ..
            } => {
                assert_eq!(
                    items[0].expr,
                    SelExpr::Agg {
                        func: AggFunc::Count,
                        arg: None
                    }
                );
                assert_eq!(
                    items[1].expr,
                    SelExpr::Agg {
                        func: AggFunc::Sum,
                        arg: Some("v".into())
                    }
                );
                assert_eq!(items[1].alias.as_deref(), Some("total"));
                assert_eq!(items[2].output_name(), "max(v)");
            }
            other => panic!("wrong: {other:?}"),
        }
        assert_eq!(
            cols_of(&s),
            Some(vec!["count(*)".into(), "total".into(), "max(v)".into()])
        );
    }

    #[test]
    fn parse_group_by_having() {
        let s = parse(
            "SELECT dataset, COUNT(*) AS n FROM execution_table GROUP BY dataset HAVING n > 1",
        )
        .unwrap();
        match s {
            Statement::Select {
                group_by, having, ..
            } => {
                assert_eq!(group_by, vec!["dataset".to_string()]);
                assert!(having.is_some());
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_join() {
        let s = parse(
            "SELECT run_table.runid FROM run_table \
             INNER JOIN execution_table ON run_table.runid = execution_table.runid",
        )
        .unwrap();
        match s {
            Statement::Select { join: Some(j), .. } => {
                assert_eq!(j.table, "execution_table");
                assert_eq!(j.on_left, "run_table.runid");
                assert_eq!(j.on_right, "execution_table.runid");
            }
            other => panic!("wrong: {other:?}"),
        }
        // Bare JOIN means INNER JOIN.
        assert!(matches!(
            parse("SELECT * FROM a JOIN b ON a.x = b.y").unwrap(),
            Statement::Select { join: Some(_), .. }
        ));
    }

    #[test]
    fn parse_create_drop_index() {
        let s = parse("CREATE INDEX idx_ds ON execution_table (dataset)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "idx_ds".into(),
                table: "execution_table".into(),
                columns: vec!["dataset".into()],
                ordered: false,
            }
        );
        let s = parse("CREATE ORDERED INDEX idx_rt ON execution_table (runid, timestep)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "idx_rt".into(),
                table: "execution_table".into(),
                columns: vec!["runid".into(), "timestep".into()],
                ordered: true,
            }
        );
        let s = parse("DROP INDEX idx_ds ON execution_table").unwrap();
        assert_eq!(
            s,
            Statement::DropIndex {
                name: "idx_ds".into(),
                table: "execution_table".into()
            }
        );
    }

    #[test]
    fn parse_transactions() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("START TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn parse_update() {
        let s = parse("UPDATE t SET a = a + 1, b = ? WHERE c = 2").unwrap();
        match s {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_delete() {
        let s = parse("DELETE FROM t WHERE a IS NOT NULL").unwrap();
        match s {
            Statement::Delete {
                filter: Some(Expr::IsNull { negated: true, .. }),
                ..
            } => {}
            other => panic!("wrong: {other:?}"),
        }
    }

    #[test]
    fn parse_precedence_and_parens() {
        let s = parse("SELECT * FROM t WHERE a = 1 + 2 * 3").unwrap();
        // 1 + (2*3), compared to a.
        if let Statement::Select {
            filter: Some(Expr::Binary {
                op: BinOp::Eq, rhs, ..
            }),
            ..
        } = s
        {
            assert!(matches!(*rhs, Expr::Binary { op: BinOp::Add, .. }));
        } else {
            panic!("wrong shape");
        }
        let s2 = parse("SELECT * FROM t WHERE a = (1 + 2) * 3").unwrap();
        if let Statement::Select {
            filter: Some(Expr::Binary {
                op: BinOp::Eq, rhs, ..
            }),
            ..
        } = s2
        {
            assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn parse_negative_number() {
        let s = parse("SELECT * FROM t WHERE a = -5").unwrap();
        if let Statement::Select {
            filter: Some(Expr::Binary { rhs, .. }),
            ..
        } = s
        {
            assert!(matches!(*rhs, Expr::Neg(_)));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn parse_qualified_columns() {
        let s = parse("SELECT t.a FROM t WHERE t.a > 0").unwrap();
        assert_eq!(cols_of(&s), Some(vec!["t.a".to_string()]));
        if let Statement::Select {
            filter: Some(Expr::Binary { lhs, .. }),
            ..
        } = s
        {
            assert_eq!(*lhs, Expr::Col("t.a".into()));
        } else {
            panic!("wrong shape");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("SELECT * FROM t garbage garbage").is_err());
        assert!(parse("DROP TABLE t extra").is_err());
    }

    #[test]
    fn unknown_statement_rejected() {
        assert!(matches!(parse("EXPLAIN t"), Err(DbError::Parse(_))));
    }

    #[test]
    fn unknown_aggregate_rejected() {
        assert!(parse("SELECT MEDIAN(x) FROM t").is_err());
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn varchar_length_suffix_ignored() {
        assert!(parse("CREATE TABLE t (s VARCHAR(255), n INT)").is_ok());
    }
}
