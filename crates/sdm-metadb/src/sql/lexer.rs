//! SQL tokenizer.

use crate::error::{DbError, DbResult};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (stored as written; keyword matching is
    /// case-insensitive at the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `?` positional parameter.
    Param,
    /// Punctuation / operators.
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `;`
    Semi,
}

/// Tokenize `input`.
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '?' => {
                out.push(Token::Param);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                // `--` line comment
                if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    while i < bytes.len() && bytes[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Minus);
                    i += 1;
                }
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(DbError::Lex(format!("unexpected '!' at byte {i}")));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::Lex("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                out.push(Token::Str(s));
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] as char {
                        '0'..='9' => i += 1,
                        '.' if !is_float => {
                            is_float = true;
                            i += 1;
                        }
                        'e' | 'E' => {
                            is_float = true;
                            i += 1;
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|_| DbError::Lex(format!("bad float literal '{text}'")))?;
                    out.push(Token::Float(v));
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|_| DbError::Lex(format!("bad int literal '{text}'")))?;
                    out.push(Token::Int(v));
                }
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                // `.` continues an identifier so qualified column names
                // (`table.column`) lex as a single token; a leading digit
                // still routes to the numeric branch above.
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '.')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(DbError::Lex(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_select() {
        let toks = lex("SELECT * FROM t WHERE a >= 10").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Ident("WHERE".into()),
                Token::Ident("a".into()),
                Token::Ge,
                Token::Int(10),
            ]
        );
    }

    #[test]
    fn lex_string_with_escape() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("3.5").unwrap(), vec![Token::Float(3.5)]);
        assert_eq!(lex("1e3").unwrap(), vec![Token::Float(1000.0)]);
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
    }

    #[test]
    fn lex_ne_both_spellings() {
        assert_eq!(lex("<>").unwrap(), vec![Token::Ne]);
        assert_eq!(lex("!=").unwrap(), vec![Token::Ne]);
    }

    #[test]
    fn lex_params_and_punct() {
        let toks = lex("(?, ?)").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::LParen,
                Token::Param,
                Token::Comma,
                Token::Param,
                Token::RParen
            ]
        );
    }

    #[test]
    fn lex_comment_skipped() {
        let toks = lex("SELECT 1 -- trailing comment\n+ 2").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn lex_unterminated_string_errors() {
        assert!(matches!(lex("'abc"), Err(DbError::Lex(_))));
    }

    #[test]
    fn lex_bad_char_errors() {
        assert!(matches!(lex("a # b"), Err(DbError::Lex(_))));
    }
}
