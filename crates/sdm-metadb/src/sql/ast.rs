//! SQL abstract syntax.

use crate::schema::ColType;
use crate::value::Value;

/// Expressions appearing in WHERE, HAVING, SET, and VALUES clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Column reference (possibly qualified: `t.col`).
    Col(String),
    /// Positional `?` parameter (0-based).
    Param(usize),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS NULL` (`negated` for `IS NOT NULL`).
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// Aggregate functions usable in a SELECT list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(col)` (non-NULL count).
    Count,
    /// `SUM(col)`; NULL over an empty/all-NULL input.
    Sum,
    /// `AVG(col)`; NULL over an empty/all-NULL input.
    Avg,
    /// `MIN(col)` under SQL ordering, NULLs skipped.
    Min,
    /// `MAX(col)` under SQL ordering, NULLs skipped.
    Max,
}

impl AggFunc {
    /// The SQL spelling, lower-cased (used for default output names).
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelExpr {
    /// Plain (possibly qualified) column reference.
    Col(String),
    /// Aggregate call; `arg = None` means `*` (COUNT only).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Argument column, or `None` for `*`.
        arg: Option<String>,
    },
}

/// A projected SELECT item with an optional `AS` alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: SelExpr,
    /// `AS alias`, if given.
    pub alias: Option<String>,
}

impl SelectItem {
    /// Plain column item without alias (test/convenience constructor).
    pub fn col(name: impl Into<String>) -> Self {
        Self {
            expr: SelExpr::Col(name.into()),
            alias: None,
        }
    }

    /// The output column name: the alias if present, else the column
    /// name as written, else `func(arg)`.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            SelExpr::Col(c) => c.clone(),
            SelExpr::Agg { func, arg } => {
                format!("{}({})", func.name(), arg.as_deref().unwrap_or("*"))
            }
        }
    }
}

/// An `INNER JOIN other ON left = right` clause (single-column
/// equi-join, the only join shape SDM's metadata queries need).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined (right) table.
    pub table: String,
    /// Left side of the ON equality (column, possibly qualified).
    pub on_left: String,
    /// Right side of the ON equality.
    pub on_right: String,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderBy {
    /// Column name (an output name for aggregate queries).
    pub column: String,
    /// Descending if true.
    pub desc: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// `(name, type)` pairs.
        columns: Vec<(String, ColType)>,
        /// IF NOT EXISTS present.
        if_not_exists: bool,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// CREATE \[ORDERED\] INDEX name ON table (c1, c2, ...).
    CreateIndex {
        /// Index name (unique within its table).
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed columns, outermost key first. Plain (hash) indexes
        /// take exactly one; ORDERED indexes take one or more.
        columns: Vec<String>,
        /// Ordered (`BTreeMap`, range-capable) vs hash (equality-only).
        ordered: bool,
    },
    /// DROP INDEX name ON table (MySQL 3.23 spelling).
    DropIndex {
        /// Index name.
        name: String,
        /// Owning table.
        table: String,
    },
    /// INSERT INTO ... VALUES (...), (...), ...
    Insert {
        /// Table name.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Value tuples.
        rows: Vec<Vec<Expr>>,
    },
    /// SELECT.
    Select {
        /// DISTINCT present.
        distinct: bool,
        /// Projected items, or `None` for `*`.
        items: Option<Vec<SelectItem>>,
        /// Source table.
        table: String,
        /// Optional single INNER JOIN.
        join: Option<Join>,
        /// WHERE predicate.
        filter: Option<Expr>,
        /// GROUP BY columns.
        group_by: Vec<String>,
        /// HAVING predicate (references output names).
        having: Option<Expr>,
        /// ORDER BY keys.
        order_by: Vec<OrderBy>,
        /// LIMIT.
        limit: Option<usize>,
    },
    /// UPDATE ... SET ...
    Update {
        /// Table name.
        table: String,
        /// `(column, value-expression)` assignments.
        sets: Vec<(String, Expr)>,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// DELETE FROM.
    Delete {
        /// Table name.
        table: String,
        /// WHERE predicate.
        filter: Option<Expr>,
    },
    /// BEGIN / START TRANSACTION.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
}
