//! SQL subset: lexer, AST, parser.
//!
//! Covers what SDM issues as embedded SQL: `CREATE TABLE [IF NOT EXISTS]`,
//! `DROP TABLE`, `CREATE INDEX` / `DROP INDEX ... ON`, `INSERT INTO ...
//! VALUES`, `SELECT [DISTINCT] ... FROM ... [JOIN ... ON] [WHERE]
//! [GROUP BY] [HAVING] [ORDER BY] [LIMIT]` with aggregates
//! (COUNT/SUM/AVG/MIN/MAX), `UPDATE ... SET ... [WHERE]`, `DELETE FROM
//! ... [WHERE]`, `BEGIN`/`COMMIT`/`ROLLBACK`, with `?` positional
//! parameters, arithmetic, comparisons, `AND`/`OR`/`NOT`,
//! `IS [NOT] NULL`, and qualified `table.column` references.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::{AggFunc, Expr, Join, OrderBy, SelExpr, SelectItem, Statement};
pub use parser::parse;
