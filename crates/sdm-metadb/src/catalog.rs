//! The catalog: named tables.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::wal::record::Replay;

/// All tables of one database, keyed by lower-cased name.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Create a table; errors if it exists (unless `if_not_exists`).
    /// Returns whether a table was actually created (so transaction
    /// undo only logs real creations).
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        if_not_exists: bool,
    ) -> DbResult<bool> {
        let key = Self::key(name);
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(DbError::TableExists(name.to_string()));
        }
        self.tables.insert(key, Table::new(schema));
        Ok(true)
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        self.remove_table(name).map(|_| ())
    }

    /// Drop a table, returning it (transaction undo keeps it for
    /// replay).
    pub(crate) fn remove_table(&mut self, name: &str) -> DbResult<Table> {
        self.tables
            .remove(&Self::key(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Re-instate a table wholesale (transaction undo of `DROP TABLE`).
    pub(crate) fn put_table(&mut self, name: &str, table: Table) {
        self.tables.insert(Self::key(name), table);
    }

    /// Rebuild every table's index maps from its rows (snapshot load:
    /// serde persists index *definitions* but not the maps).
    pub(crate) fn rebuild_indexes(&mut self) {
        for table in self.tables.values_mut() {
            table.rebuild_indexes();
        }
    }

    /// Shared table access.
    pub fn get(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Mutable table access.
    pub fn get_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_string()))
    }

    /// Whether a table exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    /// Sorted table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Apply one decoded WAL redo record (crash recovery). Replay is
    /// positional and deterministic — the log was written by the same
    /// executor that produced the state being reconstructed, so every
    /// position and name is expected to resolve; a failure here means a
    /// corrupt-but-CRC-valid log and surfaces as an open error.
    pub(crate) fn apply_redo(&mut self, rec: Replay) -> DbResult<()> {
        match rec {
            Replay::Append { table, rows } => {
                let t = self.get_mut(&table)?;
                for row in rows {
                    t.insert(row)?;
                }
            }
            Replay::Update { table, news } => {
                self.get_mut(&table)?.apply_updates(news);
            }
            Replay::Delete { table, positions } => {
                self.get_mut(&table)?.delete_at(&positions);
            }
            Replay::Clear { table } => {
                self.get_mut(&table)?.clear();
            }
            Replay::CreateTable { name, schema } => {
                self.create_table(&name, schema, false)?;
            }
            Replay::DropTable { name } => {
                self.drop_table(&name)?;
            }
            Replay::CreateIndex {
                table,
                index,
                columns,
                ordered,
            } => {
                let cols: Vec<&str> = columns.iter().map(String::as_str).collect();
                self.get_mut(&table)?.create_index(&index, &cols, ordered)?;
            }
            Replay::DropIndex { table, index } => {
                self.get_mut(&table)?.drop_index(&index)?;
            }
            // Terminators are handled by the recovery loop; they never
            // reach the catalog.
            Replay::Commit | Replay::Abort => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column};

    fn schema() -> Schema {
        Schema::new(vec![Column {
            name: "a".into(),
            ctype: ColType::Int,
        }])
        .unwrap()
    }

    #[test]
    fn create_get_drop() {
        let mut c = Catalog::new();
        c.create_table("T1", schema(), false).unwrap();
        assert!(c.contains("t1"), "names are case-insensitive");
        assert!(c.get("T1").is_ok());
        c.drop_table("t1").unwrap();
        assert!(matches!(c.get("T1"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn double_create_errors_unless_if_not_exists() {
        let mut c = Catalog::new();
        c.create_table("t", schema(), false).unwrap();
        assert!(matches!(
            c.create_table("t", schema(), false),
            Err(DbError::TableExists(_))
        ));
        assert!(c.create_table("t", schema(), true).is_ok());
    }

    #[test]
    fn table_names_sorted() {
        let mut c = Catalog::new();
        c.create_table("zeta", schema(), false).unwrap();
        c.create_table("alpha", schema(), false).unwrap();
        assert_eq!(c.table_names(), vec!["alpha", "zeta"]);
    }
}
