//! Database error type.

use std::fmt;

/// Errors from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Lexical error at a byte position.
    Lex(String),
    /// Parse error.
    Parse(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Table already exists.
    TableExists(String),
    /// Unknown column.
    NoSuchColumn(String),
    /// Type error during evaluation or insertion.
    Type(String),
    /// Wrong number of values/parameters.
    Arity(String),
    /// I/O or serialization error during persistence.
    Persist(String),
    /// Index already exists on the table.
    IndexExists(String),
    /// Unknown index.
    NoSuchIndex(String),
    /// Transaction misuse (BEGIN inside a transaction, COMMIT/ROLLBACK
    /// without one).
    Tx(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Lex(m) => write!(f, "lex error: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::Type(m) => write!(f, "type error: {m}"),
            DbError::Arity(m) => write!(f, "arity error: {m}"),
            DbError::Persist(m) => write!(f, "persistence error: {m}"),
            DbError::IndexExists(i) => write!(f, "index already exists: {i}"),
            DbError::NoSuchIndex(i) => write!(f, "no such index: {i}"),
            DbError::Tx(m) => write!(f, "transaction error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Convenience alias.
pub type DbResult<T> = Result<T, DbError>;
