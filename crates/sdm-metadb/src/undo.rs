//! Per-transaction undo logging.
//!
//! A transaction no longer snapshots the catalog at `BEGIN`. Instead,
//! every mutation executed while the owning thread's transaction is open
//! appends a row-level undo record; `COMMIT` discards the log and
//! `ROLLBACK` replays it in reverse. Transaction cost is therefore
//! proportional to the rows the transaction *touched*, never to the
//! database's size — a `BEGIN`/`COMMIT` around one insert into a
//! million-row catalog logs exactly one record.
//!
//! Undo records own the displaced data (old row images, dropped tables),
//! captured by move on the mutation path — logging an UPDATE's undo is a
//! `mem::replace`, not a clone.

use crate::catalog::Catalog;
use crate::table::{IndexDef, Row, Table};

/// One reversible effect of a mutation statement.
#[derive(Debug)]
pub(crate) enum UndoRecord {
    /// `n` rows were appended to `table` (INSERT).
    Append {
        /// Target table.
        table: String,
        /// How many rows were appended.
        n: usize,
    },
    /// Rows were removed from `table` (DELETE); ascending original
    /// positions paired with the removed row images.
    Delete {
        /// Target table.
        table: String,
        /// `(original position, row)` in ascending position order.
        removed: Vec<(usize, Row)>,
    },
    /// Rows of `table` were overwritten (UPDATE); the pre-update images.
    Update {
        /// Target table.
        table: String,
        /// `(position, pre-update row)` pairs.
        old: Vec<(usize, Row)>,
    },
    /// `CREATE TABLE` created `name`.
    CreateTable {
        /// Created table name.
        name: String,
    },
    /// `DROP TABLE` removed `name`; the whole table rides along (the
    /// statement itself touched every row, so its undo may too).
    DropTable {
        /// Dropped table name.
        name: String,
        /// The dropped table, rows and indexes intact.
        table: Box<Table>,
    },
    /// `CREATE INDEX` added `index` to `table`.
    CreateIndex {
        /// Owning table.
        table: String,
        /// Created index name.
        index: String,
    },
    /// `DROP INDEX` removed an index from `table`.
    DropIndex {
        /// Owning table.
        table: String,
        /// The dropped definition (the map rebuilds on undo).
        def: IndexDef,
    },
}

/// The ordered undo log of one open transaction.
#[derive(Debug, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
}

impl UndoLog {
    /// Append one record (called by the executor under the catalog
    /// write lock).
    pub(crate) fn push(&mut self, rec: UndoRecord) {
        self.records.push(rec);
    }

    /// Number of row images currently logged (diagnostics/tests).
    pub fn rows_logged(&self) -> u64 {
        self.records
            .iter()
            .map(|r| match r {
                UndoRecord::Append { n, .. } => *n as u64,
                UndoRecord::Delete { removed, .. } => removed.len() as u64,
                UndoRecord::Update { old, .. } => old.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Replay the log in reverse against `catalog`, restoring the
    /// pre-transaction state exactly. Returns the number of row images
    /// applied (the `tx_rows_undone` stat) — proportional to the rows
    /// the transaction touched, not to the catalog.
    ///
    /// Replay is infallible by construction: records are undone newest-
    /// first, so every table/index a record names was restored by the
    /// records after it (e.g. a `DROP TABLE` is re-instated before the
    /// undo of earlier inserts into it runs).
    pub(crate) fn rollback(self, catalog: &mut Catalog) -> u64 {
        let mut rows_undone = 0u64;
        for rec in self.records.into_iter().rev() {
            match rec {
                UndoRecord::Append { table, n } => {
                    rows_undone += n as u64;
                    catalog
                        .get_mut(&table)
                        // analyze:allow(unwrap: reverse replay re-instates any table dropped after this record was logged)
                        .expect("undo: appended-into table exists")
                        .undo_append(n);
                }
                UndoRecord::Delete { table, removed } => {
                    rows_undone += removed.len() as u64;
                    catalog
                        .get_mut(&table)
                        // analyze:allow(unwrap: reverse replay re-instates any table dropped after this record was logged)
                        .expect("undo: deleted-from table exists")
                        .insert_at(removed);
                }
                UndoRecord::Update { table, old } => {
                    rows_undone += old.len() as u64;
                    catalog
                        .get_mut(&table)
                        // analyze:allow(unwrap: reverse replay re-instates any table dropped after this record was logged)
                        .expect("undo: updated table exists")
                        .apply_updates(old);
                }
                UndoRecord::CreateTable { name } => {
                    catalog
                        .drop_table(&name)
                        // analyze:allow(unwrap: the logged CREATE TABLE succeeded and reverse replay undid later drops)
                        .expect("undo: created table exists");
                }
                UndoRecord::DropTable { name, table } => {
                    catalog.put_table(&name, *table);
                }
                UndoRecord::CreateIndex { table, index } => {
                    catalog
                        .get_mut(&table)
                        // analyze:allow(unwrap: reverse replay re-instates any table dropped after this record was logged)
                        .expect("undo: indexed table exists")
                        .drop_index(&index)
                        // analyze:allow(unwrap: the logged CREATE INDEX succeeded and reverse replay undid later drops)
                        .expect("undo: created index exists");
                }
                UndoRecord::DropIndex { table, def } => {
                    let cols: Vec<&str> = def.columns.iter().map(String::as_str).collect();
                    catalog
                        .get_mut(&table)
                        // analyze:allow(unwrap: reverse replay re-instates any table dropped after this record was logged)
                        .expect("undo: index's table exists")
                        .create_index(&def.name, &cols, def.ordered)
                        // analyze:allow(unwrap: the dropped index's def was captured verbatim, so re-creating it cannot conflict)
                        .expect("undo: dropped index re-creates");
                }
            }
        }
        rows_undone
    }
}
