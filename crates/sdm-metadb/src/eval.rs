//! Compiled expression evaluation: `Expr` ASTs lowered to flat
//! instruction lists.
//!
//! The executor re-verifies every index candidate against the statement's
//! predicate. Walking the AST per row means a tree traversal with a
//! `Value` clone per node and a column-name hash lookup per `Expr::Col` —
//! on the hottest loop in the crate. [`compile`] lowers an expression
//! once, at prepare time, into a [`Program`]: a `Vec<Op>` in post-order
//! with column references resolved to row **slots**, constants interned
//! into a side table, and the SQL three-valued `AND`/`OR` short-circuits
//! expressed as conditional jumps. [`Program::eval_truthy`] then runs the
//! ops against a fixed register file of borrowed values — zero heap
//! allocation per row.
//!
//! Compilation is allowed to fail ([`compile`] returns `None`): an
//! unresolvable column or an expression deeper than the register file
//! falls back to the per-row AST walk ([`eval_ast`], the interpreter that
//! used to live in `exec.rs`). The fallback preserves the interpreter's
//! lazily-raised errors — a bad column name over an empty table is not an
//! error today, and compiled plans must not make it one. The
//! `compiled-eval` analyzer rule keeps `eval_ast` calls from creeping
//! outside this module.

use std::cmp::Ordering;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{DbError, DbResult};
use crate::exec::Resolve;
use crate::sql::ast::{BinOp, Expr};
use crate::table::Row;
use crate::value::Value;

/// Register-file size. Expressions needing more live registers than
/// this (nesting depth ~32) fall back to the AST walk.
const MAX_REGS: usize = 32;

// ------------------------------------------------------------------ op set

/// One instruction of a compiled expression program. Operands live on a
/// register stack; binary ops pop two and push one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push row slot `n` (column index resolved at compile time).
    Col(u32),
    /// Push interned constant `n`.
    Const(u32),
    /// Push positional parameter `n`. Arity is checked when the op
    /// *executes*, not at compile time: a short-circuited branch may
    /// legally reference a parameter that was never bound.
    Param(u32),
    /// Arithmetic negation of the top register.
    Neg,
    /// Three-valued logical NOT of the top register.
    Not,
    /// `IS NULL` (or `IS NOT NULL` when `negated`) of the top register.
    IsNull {
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// If the top register is SQL-false, replace it with `0` and jump
    /// to op index `n` — the `AND` short-circuit.
    JumpIfFalse(u32),
    /// If the top register is SQL-true, replace it with `1` and jump
    /// to op index `n` — the `OR` short-circuit.
    JumpIfTrue(u32),
    /// Three-valued AND of the top two registers.
    And,
    /// Three-valued OR of the top two registers.
    Or,
    /// `sql_cmp` comparisons of the top two registers (NULL → NULL).
    Eq,
    /// Not-equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Arithmetic on the top two registers (NULL operand → NULL,
    /// integer ops wrap, division by zero → NULL).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Fused superinstruction: compare two leaf operands and push the
    /// verdict. `col <op> ?n` — the single most common predicate shape —
    /// costs one dispatch instead of three.
    CmpLL(Src, Src, CmpKind),
    /// Fused superinstruction: compare the top register against a leaf
    /// operand (lhs already computed on the stack).
    CmpSL(Src, CmpKind),
    /// Fused superinstruction: arithmetic over two leaf operands.
    ArithLL(Src, Src, ArithKind),
}

/// A leaf operand a fused op reads directly, bypassing the register
/// stack: a row slot, an interned constant, or a positional parameter.
/// Parameter arity stays execution-checked, exactly as [`Op::Param`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Row slot.
    Col(u32),
    /// Interned constant.
    Const(u32),
    /// Positional parameter.
    Param(u32),
}

/// Comparison selector of a fused compare op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpKind {
    /// Verdict for an ordering under this comparison.
    #[inline]
    fn hit(self, o: Ordering) -> bool {
        match self {
            CmpKind::Eq => o == Ordering::Equal,
            CmpKind::Ne => o != Ordering::Equal,
            CmpKind::Lt => o == Ordering::Less,
            CmpKind::Le => o != Ordering::Greater,
            CmpKind::Gt => o == Ordering::Greater,
            CmpKind::Ge => o != Ordering::Less,
        }
    }
}

/// Arithmetic selector of a fused arithmetic op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl ArithKind {
    fn bin(self) -> BinOp {
        match self {
            ArithKind::Add => BinOp::Add,
            ArithKind::Sub => BinOp::Sub,
            ArithKind::Mul => BinOp::Mul,
            ArithKind::Div => BinOp::Div,
        }
    }
}

/// A compiled expression: post-order ops plus the interned constants
/// they reference. Built by [`compile`], immutable afterwards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    ops: Vec<Op>,
    consts: Vec<Value>,
    /// Peak register-stack depth, fixed at compile time. Lets the
    /// evaluator size its register file to the expression instead of
    /// always initializing all `MAX_REGS` slots.
    peak: u32,
}

/// Register-file size of the fast evaluation path; almost every WHERE
/// clause in the workload fits (peak depth tracks expression *nesting*,
/// not length — `a = 1 AND b = 2 AND …` peaks at 3).
const SMALL_REGS: usize = 8;

// ----------------------------------------------------------------- compiler

struct Compiler<'r, R: Resolve> {
    res: &'r R,
    ops: Vec<Op>,
    consts: Vec<Value>,
    /// Live registers at the current point of emission.
    depth: usize,
    /// High-water mark of `depth`; becomes [`Program::peak`].
    peak: usize,
}

impl<R: Resolve> Compiler<'_, R> {
    /// Emit an op that pushes one register; `None` when the register
    /// file would overflow.
    fn push(&mut self, op: Op) -> Option<()> {
        self.depth += 1;
        if self.depth > MAX_REGS {
            return None;
        }
        self.peak = self.peak.max(self.depth);
        self.ops.push(op);
        Some(())
    }

    /// Emit an op that pops two registers and pushes one.
    fn reduce(&mut self, op: Op) {
        self.ops.push(op);
        self.depth -= 1;
    }

    /// Intern `v` by *strict* identity (variant + bits): `Int(0)` and
    /// `Double(0.0)` are SQL-equal but must stay distinct constants, and
    /// `f64` interning compares bit patterns so `-0.0` and NaN payloads
    /// are preserved exactly.
    fn intern(&mut self, v: &Value) -> u32 {
        let pos = self.consts.iter().position(|c| match (c, v) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Double(a), Value::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        });
        match pos {
            Some(i) => i as u32,
            None => {
                self.consts.push(v.clone());
                (self.consts.len() - 1) as u32
            }
        }
    }

    fn emit(&mut self, expr: &Expr) -> Option<()> {
        match expr {
            Expr::Lit(v) => {
                let i = self.intern(v);
                self.push(Op::Const(i))
            }
            Expr::Col(name) => {
                let slot = self.res.col_index(name).ok()?;
                self.push(Op::Col(u32::try_from(slot).ok()?))
            }
            Expr::Param(i) => self.push(Op::Param(u32::try_from(*i).ok()?)),
            Expr::Neg(e) => {
                self.emit(e)?;
                self.ops.push(Op::Neg);
                Some(())
            }
            Expr::Not(e) => {
                self.emit(e)?;
                self.ops.push(Op::Not);
                Some(())
            }
            Expr::IsNull { expr, negated } => {
                self.emit(expr)?;
                self.ops.push(Op::IsNull { negated: *negated });
                Some(())
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::And | BinOp::Or => {
                    self.emit(lhs)?;
                    let jump_at = self.ops.len();
                    // Placeholder target, patched to just past the
                    // combining op once the rhs length is known.
                    self.ops.push(Op::JumpIfFalse(0));
                    self.emit(rhs)?;
                    self.reduce(if *op == BinOp::And { Op::And } else { Op::Or });
                    let target = u32::try_from(self.ops.len()).ok()?;
                    self.ops[jump_at] = if *op == BinOp::And {
                        Op::JumpIfFalse(target)
                    } else {
                        Op::JumpIfTrue(target)
                    };
                    Some(())
                }
                _ => {
                    let lhs_start = self.ops.len();
                    self.emit(lhs)?;
                    let rhs_start = self.ops.len();
                    self.emit(rhs)?;
                    let single = |ops: &[Op], start: usize, end: usize| -> Option<Src> {
                        if end - start != 1 {
                            return None;
                        }
                        match ops[start] {
                            Op::Col(i) => Some(Src::Col(i)),
                            Op::Const(i) => Some(Src::Const(i)),
                            Op::Param(i) => Some(Src::Param(i)),
                            _ => None,
                        }
                    };
                    let a = single(&self.ops, lhs_start, rhs_start);
                    let b = single(&self.ops, rhs_start, self.ops.len());
                    // Superinstruction fusion. Rewriting only the
                    // just-emitted tail keeps every patched jump target
                    // valid: targets always point just past an `And`/`Or`
                    // op, never into a leaf/compare suffix.
                    enum Fused {
                        Cmp(CmpKind),
                        Arith(ArithKind),
                    }
                    let f = match op {
                        BinOp::Eq => Fused::Cmp(CmpKind::Eq),
                        BinOp::Ne => Fused::Cmp(CmpKind::Ne),
                        BinOp::Lt => Fused::Cmp(CmpKind::Lt),
                        BinOp::Le => Fused::Cmp(CmpKind::Le),
                        BinOp::Gt => Fused::Cmp(CmpKind::Gt),
                        BinOp::Ge => Fused::Cmp(CmpKind::Ge),
                        BinOp::Add => Fused::Arith(ArithKind::Add),
                        BinOp::Sub => Fused::Arith(ArithKind::Sub),
                        BinOp::Mul => Fused::Arith(ArithKind::Mul),
                        BinOp::Div => Fused::Arith(ArithKind::Div),
                        BinOp::And | BinOp::Or => return None,
                    };
                    match (a, b, f) {
                        (Some(a), Some(b), Fused::Cmp(k)) => {
                            self.ops.truncate(lhs_start);
                            self.ops.push(Op::CmpLL(a, b, k));
                            self.depth -= 1;
                        }
                        (Some(a), Some(b), Fused::Arith(k)) => {
                            self.ops.truncate(lhs_start);
                            self.ops.push(Op::ArithLL(a, b, k));
                            self.depth -= 1;
                        }
                        (None, Some(b), Fused::Cmp(k)) => {
                            self.ops.truncate(rhs_start);
                            self.ops.push(Op::CmpSL(b, k));
                            self.depth -= 1;
                        }
                        (_, _, f) => self.reduce(match f {
                            Fused::Cmp(CmpKind::Eq) => Op::Eq,
                            Fused::Cmp(CmpKind::Ne) => Op::Ne,
                            Fused::Cmp(CmpKind::Lt) => Op::Lt,
                            Fused::Cmp(CmpKind::Le) => Op::Le,
                            Fused::Cmp(CmpKind::Gt) => Op::Gt,
                            Fused::Cmp(CmpKind::Ge) => Op::Ge,
                            Fused::Arith(ArithKind::Add) => Op::Add,
                            Fused::Arith(ArithKind::Sub) => Op::Sub,
                            Fused::Arith(ArithKind::Mul) => Op::Mul,
                            Fused::Arith(ArithKind::Div) => Op::Div,
                        }),
                    }
                    Some(())
                }
            },
        }
    }
}

/// Lower `expr` into a [`Program`] with column references resolved to
/// row slots through `res`. Returns `None` when the expression cannot
/// be compiled (unresolvable column, register file exceeded); the
/// caller falls back to [`eval_ast`], which preserves the interpreter's
/// per-row error behavior exactly.
pub fn compile(expr: &Expr, res: &impl Resolve) -> Option<Program> {
    let mut c = Compiler {
        res,
        ops: Vec::new(),
        consts: Vec::new(),
        depth: 0,
        peak: 0,
    };
    c.emit(expr)?;
    debug_assert_eq!(c.depth, 1);
    Some(Program {
        ops: c.ops,
        consts: c.consts,
        peak: c.peak as u32,
    })
}

// ---------------------------------------------------------------- evaluator

/// One register: borrowed cell/constant/parameter, or an owned scalar
/// produced by an op. No op produces a string (`Text` only flows through
/// `Ref` borrows), so owned results are inline scalars, the register is
/// 16 bytes and `Copy`, and the whole register file initializes with one
/// small memset instead of a per-slot `Value` write.
#[derive(Clone, Copy)]
enum Reg<'a> {
    Empty,
    Ref(&'a Value),
    Null,
    Int(i64),
    Double(f64),
}

/// SQL three-valued truthiness of a register, without materializing a
/// `Value` for owned scalars.
#[inline]
fn reg_truthy(r: Reg<'_>) -> Option<bool> {
    match r {
        Reg::Ref(v) => truthy(v),
        Reg::Int(i) => Some(i != 0),
        Reg::Double(d) => Some(d != 0.0),
        Reg::Null | Reg::Empty => None,
    }
}

/// A borrowed scalar view of a register. Comparison and arithmetic ops
/// work on this directly, so computed scalars never round-trip through
/// a temporary `Value`.
#[derive(Clone, Copy)]
enum View<'a> {
    Null,
    Int(i64),
    Double(f64),
    Text(&'a str),
}

impl<'a> View<'a> {
    #[inline]
    fn of(r: Reg<'a>) -> View<'a> {
        match r {
            Reg::Ref(v) => View::of_value(v),
            Reg::Int(i) => View::Int(i),
            Reg::Double(d) => View::Double(d),
            Reg::Null | Reg::Empty => View::Null,
        }
    }

    #[inline]
    fn of_value(v: &'a Value) -> View<'a> {
        match v {
            Value::Null => View::Null,
            Value::Int(i) => View::Int(*i),
            Value::Double(d) => View::Double(*d),
            Value::Text(s) => View::Text(s),
        }
    }

    #[inline]
    fn as_f64(self) -> Option<f64> {
        match self {
            View::Int(i) => Some(i as f64),
            View::Double(d) => Some(d),
            _ => None,
        }
    }

    fn type_name(self) -> &'static str {
        match self {
            View::Null => "NULL",
            View::Int(_) => "INT",
            View::Double(_) => "DOUBLE",
            View::Text(_) => "TEXT",
        }
    }
}

/// Mirror of [`Value::sql_cmp`] over views: NULL is unknown, text
/// compares lexicographically, numerics compare through `f64` — Int/Int
/// included, so huge integers collapse exactly as the AST walk does.
#[inline]
fn view_cmp(a: View<'_>, b: View<'_>) -> Option<Ordering> {
    match (a, b) {
        (View::Null, _) | (_, View::Null) => None,
        (View::Text(x), View::Text(y)) => Some(x.cmp(y)),
        (x, y) => x.as_f64()?.partial_cmp(&y.as_f64()?),
    }
}

/// Comparison verdict as a register: unknown → NULL, else 0/1.
#[inline]
fn cmp_reg(cmp: Option<Ordering>, kind: CmpKind) -> Reg<'static> {
    match cmp {
        None => Reg::Null,
        Some(o) => Reg::Int(kind.hit(o) as i64),
    }
}

/// Mirror of [`arith`] over views, producing a register directly:
/// NULL-in NULL-out, Int/Int stays wrapping integer arithmetic with
/// division by zero as NULL, anything else promotes through `f64`.
#[inline]
fn view_arith(op: BinOp, l: View<'_>, r: View<'_>) -> DbResult<Reg<'static>> {
    match (l, r) {
        (View::Null, _) | (_, View::Null) => Ok(Reg::Null),
        (View::Int(a), View::Int(b)) => Ok(match op {
            BinOp::Add => Reg::Int(a.wrapping_add(b)),
            BinOp::Sub => Reg::Int(a.wrapping_sub(b)),
            BinOp::Mul => Reg::Int(a.wrapping_mul(b)),
            BinOp::Div => {
                if b == 0 {
                    Reg::Null // SQL: division by zero yields NULL
                } else {
                    Reg::Int(a.wrapping_div(b))
                }
            }
            _ => unreachable!(),
        }),
        (l, r) => {
            let a = l
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", l.type_name())))?;
            let b = r
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", r.type_name())))?;
            Ok(match op {
                BinOp::Add => Reg::Double(a + b),
                BinOp::Sub => Reg::Double(a - b),
                BinOp::Mul => Reg::Double(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Reg::Null
                    } else {
                        Reg::Double(a / b)
                    }
                }
                _ => unreachable!(),
            })
        }
    }
}

impl Program {
    /// Resolve a fused op's leaf operand. Parameter arity is checked
    /// here, when the op executes — same behavior as [`Op::Param`].
    #[inline]
    fn src<'a>(&'a self, s: Src, row: &'a [Value], params: &'a [Value]) -> DbResult<&'a Value> {
        Ok(match s {
            Src::Col(i) => &row[i as usize],
            Src::Const(i) => &self.consts[i as usize],
            Src::Param(i) => params.get(i as usize).ok_or_else(|| {
                DbError::Arity(format!(
                    "missing parameter {} (got {})",
                    i as usize + 1,
                    params.len()
                ))
            })?,
        })
    }

    /// Run the program against `row`/`params` and return the final
    /// register. Dispatches on the compile-time peak stack depth so the
    /// common shallow predicate pays for an 8-slot register file, not
    /// the full `MAX_REGS`.
    #[inline]
    fn run<'a>(&'a self, row: &'a [Value], params: &'a [Value]) -> DbResult<Reg<'a>> {
        if self.peak as usize <= SMALL_REGS {
            self.run_n::<SMALL_REGS>(row, params)
        } else {
            self.run_n::<MAX_REGS>(row, params)
        }
    }

    /// The interpreter loop over an `N`-slot register file. Programs
    /// produced by [`compile`] are well-formed by construction: stack
    /// depth stays in `1..=peak <= N` and jump targets land on op
    /// boundaries.
    fn run_n<'a, const N: usize>(
        &'a self,
        row: &'a [Value],
        params: &'a [Value],
    ) -> DbResult<Reg<'a>> {
        let mut regs = [Reg::Empty; N];
        let mut sp = 0usize;
        let mut pc = 0usize;
        while let Some(op) = self.ops.get(pc) {
            match *op {
                Op::Col(i) => {
                    regs[sp] = Reg::Ref(&row[i as usize]);
                    sp += 1;
                }
                Op::Const(i) => {
                    regs[sp] = Reg::Ref(&self.consts[i as usize]);
                    sp += 1;
                }
                Op::Param(i) => {
                    let v = params.get(i as usize).ok_or_else(|| {
                        DbError::Arity(format!(
                            "missing parameter {} (got {})",
                            i as usize + 1,
                            params.len()
                        ))
                    })?;
                    regs[sp] = Reg::Ref(v);
                    sp += 1;
                }
                Op::Neg => {
                    regs[sp - 1] = match regs[sp - 1] {
                        Reg::Int(i) => Reg::Int(i.wrapping_neg()),
                        Reg::Double(d) => Reg::Double(-d),
                        Reg::Null | Reg::Empty => Reg::Null,
                        Reg::Ref(v) => match v {
                            Value::Int(i) => Reg::Int(i.wrapping_neg()),
                            Value::Double(d) => Reg::Double(-d),
                            Value::Null => Reg::Null,
                            other => {
                                return Err(DbError::Type(format!(
                                    "cannot negate {}",
                                    other.type_name()
                                )))
                            }
                        },
                    };
                }
                Op::Not => {
                    regs[sp - 1] = match reg_truthy(regs[sp - 1]) {
                        Some(b) => Reg::Int(!b as i64),
                        None => Reg::Null,
                    };
                }
                Op::IsNull { negated } => {
                    let is_null = match regs[sp - 1] {
                        Reg::Ref(v) => v.is_null(),
                        Reg::Null | Reg::Empty => true,
                        _ => false,
                    };
                    regs[sp - 1] = Reg::Int((is_null != negated) as i64);
                }
                Op::JumpIfFalse(target) => {
                    if reg_truthy(regs[sp - 1]) == Some(false) {
                        regs[sp - 1] = Reg::Int(0);
                        pc = target as usize;
                        continue;
                    }
                }
                Op::JumpIfTrue(target) => {
                    if reg_truthy(regs[sp - 1]) == Some(true) {
                        regs[sp - 1] = Reg::Int(1);
                        pc = target as usize;
                        continue;
                    }
                }
                Op::And => {
                    sp -= 1;
                    let r = reg_truthy(regs[sp]);
                    let l = reg_truthy(regs[sp - 1]);
                    regs[sp - 1] = match (l, r) {
                        (Some(a), Some(b)) => Reg::Int((a && b) as i64),
                        (_, Some(false)) => Reg::Int(0),
                        _ => Reg::Null,
                    };
                }
                Op::Or => {
                    sp -= 1;
                    let r = reg_truthy(regs[sp]);
                    let l = reg_truthy(regs[sp - 1]);
                    regs[sp - 1] = match (l, r) {
                        (Some(a), Some(b)) => Reg::Int((a || b) as i64),
                        (_, Some(true)) => Reg::Int(1),
                        _ => Reg::Null,
                    };
                }
                Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    sp -= 1;
                    let kind = match op {
                        Op::Eq => CmpKind::Eq,
                        Op::Ne => CmpKind::Ne,
                        Op::Lt => CmpKind::Lt,
                        Op::Le => CmpKind::Le,
                        Op::Gt => CmpKind::Gt,
                        _ => CmpKind::Ge,
                    };
                    let cmp = view_cmp(View::of(regs[sp - 1]), View::of(regs[sp]));
                    regs[sp - 1] = cmp_reg(cmp, kind);
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div => {
                    sp -= 1;
                    let bin = match op {
                        Op::Add => BinOp::Add,
                        Op::Sub => BinOp::Sub,
                        Op::Mul => BinOp::Mul,
                        _ => BinOp::Div,
                    };
                    regs[sp - 1] = view_arith(bin, View::of(regs[sp - 1]), View::of(regs[sp]))?;
                }
                Op::CmpLL(a, b, kind) => {
                    let a = self.src(a, row, params)?;
                    let b = self.src(b, row, params)?;
                    regs[sp] = cmp_reg(view_cmp(View::of_value(a), View::of_value(b)), kind);
                    sp += 1;
                }
                Op::CmpSL(b, kind) => {
                    let b = self.src(b, row, params)?;
                    let cmp = view_cmp(View::of(regs[sp - 1]), View::of_value(b));
                    regs[sp - 1] = cmp_reg(cmp, kind);
                }
                Op::ArithLL(a, b, kind) => {
                    let a = self.src(a, row, params)?;
                    let b = self.src(b, row, params)?;
                    regs[sp] = view_arith(kind.bin(), View::of_value(a), View::of_value(b))?;
                    sp += 1;
                }
            }
            pc += 1;
        }
        Ok(regs[sp - 1])
    }

    /// Evaluate to a [`Value`] (SET/VALUES expressions). Clones only the
    /// final result, and only when it is a borrowed `Text` cell.
    pub fn eval_value(&self, row: &[Value], params: &[Value]) -> DbResult<Value> {
        Ok(match self.run(row, params)? {
            Reg::Empty | Reg::Null => Value::Null,
            Reg::Ref(v) => v.clone(),
            Reg::Int(i) => Value::Int(i),
            Reg::Double(d) => Value::Double(d),
        })
    }

    /// Evaluate as a predicate (filters, join conditions, HAVING):
    /// SQL three-valued verdict, no clone of the final register.
    pub fn eval_truthy(&self, row: &[Value], params: &[Value]) -> DbResult<Option<bool>> {
        Ok(reg_truthy(self.run(row, params)?))
    }
}

// --------------------------------------------------- fallback entry points

/// Per-row verdict of a predicate: the compiled program when lowering
/// succeeded, else the AST walk. This and [`row_value`] are the only
/// sanctioned `eval_ast` funnels outside this module's own internals —
/// the `compiled-eval` analyzer rule flags any other call site.
pub fn row_truthy(
    prog: Option<&Program>,
    expr: &Expr,
    res: &impl Resolve,
    row: &Row,
    params: &[Value],
) -> DbResult<Option<bool>> {
    match prog {
        Some(p) => p.eval_truthy(row, params),
        None => Ok(truthy(&eval_ast(expr, res, row, params)?)),
    }
}

/// Per-row value of an expression (SET/VALUES): compiled program when
/// available, else the AST walk. See [`row_truthy`].
pub fn row_value(
    prog: Option<&Program>,
    expr: &Expr,
    res: &impl Resolve,
    row: &Row,
    params: &[Value],
) -> DbResult<Value> {
    match prog {
        Some(p) => p.eval_value(row, params),
        None => eval_ast(expr, res, row, params),
    }
}

// ------------------------------------------------------------- plan caching

/// Every program compiled for one statement, cached under the schema
/// fingerprint its slots were resolved against.
#[derive(Debug, Default)]
pub struct CompiledPlan {
    /// [`fingerprint`] of the involved tables' names + column names.
    pub fingerprint: u64,
    /// WHERE program (single-table or join resolver, per statement).
    pub filter: Option<Program>,
    /// HAVING program (resolved against aggregate output names).
    pub having: Option<Program>,
    /// UPDATE SET programs, one per assignment, in statement order.
    pub sets: Vec<Option<Program>>,
    /// INSERT VALUES programs, one per row per expression.
    pub values: Vec<Vec<Option<Program>>>,
    /// Whether any expression present in the statement failed to lower;
    /// the executor counts one AST fallback per execution of such plans.
    pub fallback: bool,
    /// Programs successfully compiled while building this plan.
    pub compiled: u32,
}

impl CompiledPlan {
    /// Compile one optional expression into the plan, recording the
    /// compiled/fallback tallies.
    pub fn lower(&mut self, expr: Option<&Expr>, res: &impl Resolve) -> Option<Program> {
        let expr = expr?;
        match compile(expr, res) {
            Some(p) => {
                self.compiled += 1;
                Some(p)
            }
            None => {
                self.fallback = true;
                None
            }
        }
    }
}

/// One statement's cached [`CompiledPlan`], keyed by schema
/// fingerprint. Lives on `Stmt`/`PreparedStatement`, shared by clones,
/// and revalidated on every execution: tables can only change shape by
/// being dropped and recreated (there is no `ALTER TABLE`), which
/// changes the fingerprint and invalidates the cached slots.
///
/// The interior mutex is deliberately *unranked* (rank 0): it is a leaf
/// guarding a single `Option` swap, never held across another lock
/// acquisition, and statement handles outlive any one `Database`'s lock
/// ladder.
#[derive(Debug, Default)]
pub struct PlanCell {
    slot: Mutex<Option<Arc<CompiledPlan>>>,
}

impl PlanCell {
    /// Fresh, empty cell.
    pub fn new() -> PlanCell {
        PlanCell::default()
    }

    /// The cached plan, if its fingerprint still matches.
    pub fn lookup(&self, fingerprint: u64) -> Option<Arc<CompiledPlan>> {
        self.slot
            .lock()
            .as_ref()
            .filter(|p| p.fingerprint == fingerprint)
            .cloned()
    }

    /// Install `plan` as the cached entry.
    pub fn store(&self, plan: &Arc<CompiledPlan>) {
        *self.slot.lock() = Some(Arc::clone(plan));
    }
}

/// FNV-1a over name parts with a separator, so `("ab", "c")` and
/// `("a", "bc")` hash apart. Statement plans fingerprint the involved
/// tables' names plus their column names: equal fingerprints mean the
/// compiled slots still index the same columns.
pub fn fingerprint<'a>(parts: impl IntoIterator<Item = &'a str>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for b in part.as_bytes() {
            h = (h ^ u64::from(*b)).wrapping_mul(PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

// ------------------------------------------------------------- interpreter

/// Evaluate `expr` against a row (with `res` resolving column names)
/// and positional `params` by walking the AST — the fallback for
/// expressions [`compile`] could not lower, and the reference semantics
/// the proptest equivalence suite pins the compiled path to.
pub fn eval_ast(expr: &Expr, res: &impl Resolve, row: &Row, params: &[Value]) -> DbResult<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Col(name) => Ok(row[res.col_index(name)?].clone()),
        Expr::Param(i) => params.get(*i).cloned().ok_or_else(|| {
            DbError::Arity(format!(
                "missing parameter {} (got {})",
                i + 1,
                params.len()
            ))
        }),
        Expr::Neg(e) => match eval_ast(e, res, row, params)? {
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            Value::Double(d) => Ok(Value::Double(-d)),
            Value::Null => Ok(Value::Null),
            other => Err(DbError::Type(format!(
                "cannot negate {}",
                other.type_name()
            ))),
        },
        Expr::Not(e) => match truthy(&eval_ast(e, res, row, params)?) {
            Some(b) => Ok(Value::Int(!b as i64)),
            None => Ok(Value::Null),
        },
        Expr::IsNull { expr, negated } => {
            let v = eval_ast(expr, res, row, params)?;
            Ok(Value::Int((v.is_null() != *negated) as i64))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_ast(lhs, res, row, params)?;
            // Short-circuit logic ops (SQL three-valued).
            match op {
                BinOp::And => {
                    if truthy(&l) == Some(false) {
                        return Ok(Value::Int(0));
                    }
                    let r = eval_ast(rhs, res, row, params)?;
                    return Ok(match (truthy(&l), truthy(&r)) {
                        (Some(a), Some(b)) => Value::Int((a && b) as i64),
                        (_, Some(false)) => Value::Int(0),
                        _ => Value::Null,
                    });
                }
                BinOp::Or => {
                    if truthy(&l) == Some(true) {
                        return Ok(Value::Int(1));
                    }
                    let r = eval_ast(rhs, res, row, params)?;
                    return Ok(match (truthy(&l), truthy(&r)) {
                        (Some(a), Some(b)) => Value::Int((a || b) as i64),
                        (_, Some(true)) => Value::Int(1),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let r = eval_ast(rhs, res, row, params)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let cmp = l.sql_cmp(&r);
                    Ok(match cmp {
                        None => Value::Null,
                        Some(o) => {
                            let b = match op {
                                BinOp::Eq => o == Ordering::Equal,
                                BinOp::Ne => o != Ordering::Equal,
                                BinOp::Lt => o == Ordering::Less,
                                BinOp::Le => o != Ordering::Greater,
                                BinOp::Gt => o == Ordering::Greater,
                                BinOp::Ge => o != Ordering::Less,
                                // analyze:allow(panic-under-guard: the enclosing arm matches only comparison ops)
                                _ => unreachable!(),
                            };
                            Value::Int(b as i64)
                        }
                    })
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => arith(*op, &l, &r),
                // analyze:allow(panic-under-guard: And/Or short-circuit before operand evaluation above)
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            }
        }
    }
}

/// SQL truthiness: NULL is unknown, numbers by non-zero, text by
/// non-empty (MySQL 3.23's permissive coercion).
pub fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        Value::Double(d) => Some(*d != 0.0),
        Value::Text(s) => Some(!s.is_empty()),
    }
}

pub(crate) fn arith(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null // SQL: division by zero yields NULL
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
            // analyze:allow(panic-under-guard: callers only pass Add/Sub/Mul/Div)
            _ => unreachable!(),
        }),
        _ => {
            let a = l
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", l.type_name())))?;
            let b = r
                .as_f64()
                .ok_or_else(|| DbError::Type(format!("arithmetic on {}", r.type_name())))?;
            Ok(match op {
                BinOp::Add => Value::Double(a + b),
                BinOp::Sub => Value::Double(a - b),
                BinOp::Mul => Value::Double(a * b),
                BinOp::Div => {
                    if b == 0.0 {
                        Value::Null
                    } else {
                        Value::Double(a / b)
                    }
                }
                // analyze:allow(panic-under-guard: callers only pass Add/Sub/Mul/Div)
                _ => unreachable!(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColType, Column, Schema};

    fn schema() -> Schema {
        let col = |name: &str, ctype: ColType| Column {
            name: name.into(),
            ctype,
        };
        Schema::new(vec![
            col("id", ColType::Int),
            col("score", ColType::Double),
            col("name", ColType::Text),
        ])
        .unwrap()
    }

    fn col(n: &str) -> Expr {
        Expr::Col(n.into())
    }

    fn lit(v: Value) -> Expr {
        Expr::Lit(v)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn compiles_cols_to_slots_and_interns_consts() {
        let e = bin(
            BinOp::And,
            bin(BinOp::Eq, col("id"), lit(Value::Int(7))),
            bin(BinOp::Ne, col("name"), lit(Value::Int(7))),
        );
        let p = compile(&e, &schema()).unwrap();
        assert_eq!(p.consts, vec![Value::Int(7)]); // interned once
                                                   // Both leaf compares fuse into superinstructions carrying the
                                                   // resolved column slots and the shared interned constant.
        assert!(p
            .ops
            .contains(&Op::CmpLL(Src::Col(0), Src::Const(0), CmpKind::Eq)));
        assert!(p
            .ops
            .contains(&Op::CmpLL(Src::Col(2), Src::Const(0), CmpKind::Ne)));
    }

    #[test]
    fn strict_interning_keeps_int_and_double_zero_apart() {
        let e = bin(BinOp::Add, lit(Value::Int(0)), lit(Value::Double(0.0)));
        let p = compile(&e, &schema()).unwrap();
        assert_eq!(p.consts.len(), 2);
    }

    #[test]
    fn unknown_column_fails_compilation() {
        assert!(compile(&col("nope"), &schema()).is_none());
    }

    #[test]
    fn deep_expression_falls_back() {
        // 40 nested additions exceed the register file.
        let mut e = lit(Value::Int(1));
        for _ in 0..40 {
            e = bin(BinOp::Add, lit(Value::Int(1)), e);
        }
        assert!(compile(&e, &schema()).is_none());
    }

    #[test]
    fn short_circuit_skips_missing_param() {
        // `0 AND ?` with no params: the AST walk never evaluates the
        // param; the compiled program must not either.
        let e = bin(BinOp::And, lit(Value::Int(0)), Expr::Param(0));
        let p = compile(&e, &schema()).unwrap();
        let row = vec![Value::Int(1), Value::Double(0.5), Value::Text("x".into())];
        assert_eq!(p.eval_truthy(&row, &[]).unwrap(), Some(false));
        // But an executed param op still checks arity.
        let e = bin(BinOp::And, lit(Value::Int(1)), Expr::Param(0));
        let p = compile(&e, &schema()).unwrap();
        assert!(matches!(p.eval_truthy(&row, &[]), Err(DbError::Arity(_))));
    }

    #[test]
    fn three_valued_logic_matches_ast() {
        let row = vec![Value::Null, Value::Double(0.0), Value::Text(String::new())];
        let cases = [
            bin(BinOp::And, col("id"), lit(Value::Int(1))), // NULL AND 1 -> NULL
            bin(BinOp::And, col("id"), lit(Value::Int(0))), // NULL AND 0 -> 0
            bin(BinOp::Or, col("id"), lit(Value::Int(1))),  // NULL OR 1 -> 1
            bin(BinOp::Or, col("id"), lit(Value::Int(0))),  // NULL OR 0 -> NULL
            bin(BinOp::Eq, col("id"), col("id")),           // NULL = NULL -> NULL
            Expr::IsNull {
                expr: Box::new(col("id")),
                negated: false,
            },
            Expr::Not(Box::new(col("score"))), // NOT 0.0 -> 1
        ];
        let s = schema();
        for e in &cases {
            let p = compile(e, &s).unwrap();
            assert_eq!(
                p.eval_value(&row, &[]).unwrap(),
                eval_ast(e, &s, &row, &[]).unwrap(),
                "{e:?}"
            );
        }
    }

    #[test]
    fn arithmetic_matches_ast_on_edges() {
        let row = vec![
            Value::Int(i64::MIN),
            Value::Double(f64::NAN),
            Value::Text("t".into()),
        ];
        let s = schema();
        let cases = [
            Expr::Neg(Box::new(col("id"))),                    // i64::MIN wraps
            bin(BinOp::Div, col("id"), lit(Value::Int(0))),    // -> NULL
            bin(BinOp::Div, col("id"), lit(Value::Int(-1))),   // wraps
            bin(BinOp::Add, col("score"), lit(Value::Int(1))), // NaN + 1
            bin(BinOp::Lt, col("score"), col("score")),        // NaN < NaN -> NULL
        ];
        for e in &cases {
            let p = compile(e, &s).unwrap();
            let got = p.eval_value(&row, &[]);
            let want = eval_ast(e, &s, &row, &[]);
            match (&got, &want) {
                (Ok(Value::Double(a)), Ok(Value::Double(b))) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "{e:?}")
                }
                _ => assert_eq!(format!("{got:?}"), format!("{want:?}"), "{e:?}"),
            }
        }
    }

    #[test]
    fn type_errors_match_ast() {
        let row = vec![Value::Int(1), Value::Double(2.0), Value::Text("t".into())];
        let s = schema();
        let e = bin(BinOp::Add, col("name"), lit(Value::Int(1)));
        let p = compile(&e, &s).unwrap();
        let (got, want) = (p.eval_value(&row, &[]), eval_ast(&e, &s, &row, &[]));
        assert_eq!(format!("{got:?}"), format!("{want:?}"));
        assert!(got.is_err());
    }

    #[test]
    fn plan_cell_revalidates_by_fingerprint() {
        let cell = PlanCell::new();
        let plan = Arc::new(CompiledPlan {
            fingerprint: 42,
            ..CompiledPlan::default()
        });
        cell.store(&plan);
        assert!(cell.lookup(42).is_some());
        assert!(cell.lookup(43).is_none());
    }

    #[test]
    fn fingerprint_separates_boundaries() {
        assert_ne!(
            fingerprint(["ab", "c"]),
            fingerprint(["a", "bc"]),
            "separator must keep part boundaries distinct"
        );
    }
}
