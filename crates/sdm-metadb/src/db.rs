//! The embedded database connection.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::eval::PlanCell;
use crate::exec::{execute_mutation, execute_read, DbStats, Outcome};
use crate::sql::ast::Statement;
use crate::sql::parse;
use crate::table::Row;
use crate::undo::UndoLog;
use crate::value::Value;
use crate::wal::record::WalAppender;
use crate::wal::storage::{FileStorage, WalStorage};
use crate::wal::{RecoveryInfo, Wal};

/// Result set of a SELECT (empty for other statements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Projected column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows affected (for DML).
    pub affected: usize,
}

impl ResultSet {
    /// First row, if any.
    pub fn first(&self) -> Option<&Row> {
        self.rows.first()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Scalar convenience: the single value of a single-row,
    /// single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => self.rows.first().and_then(|r| r.first()),
        }
    }
}

/// A statement parsed once and executable many times with fresh
/// parameters — the embedded analogue of `mysql_stmt_prepare`.
///
/// Obtained from [`Database::prepare`]; execute with
/// [`PreparedStatement::execute`] or [`Database::exec_prepared`]. The
/// parsed AST is shared (`Arc`), so cloning a prepared statement and
/// caching it across calls is free.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: Arc<str>,
    stmt: Arc<Statement>,
    /// Compiled-expression plan cache, shared with every clone and with
    /// `as_stmt` views, so the programs survive across executions.
    cell: Arc<PlanCell>,
}

impl PreparedStatement {
    /// The SQL text this statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The parsed statement.
    pub fn statement(&self) -> &Statement {
        &self.stmt
    }

    /// Execute against `db` with positional parameters.
    pub fn execute(&self, db: &Database, params: &[Value]) -> DbResult<ResultSet> {
        db.exec_prepared(self, params)
    }

    /// View as a typed [`crate::stmt::Stmt`], sharing the parsed AST.
    /// Text veneers use this so their per-call parses flow through the
    /// plan cache and are visible in [`DbStats::sql_texts`].
    pub fn as_stmt(&self) -> crate::stmt::Stmt {
        crate::stmt::Stmt::from_shared(Arc::clone(&self.stmt), Arc::clone(&self.cell))
    }
}

/// Capacity of the per-connection statement cache. SDM's whole metadata
/// path uses a few dozen distinct statements; 256 leaves room for
/// layered schemas (containers, reports) without unbounded growth.
const PLAN_CACHE_CAPACITY: usize = 256;

/// LRU cache of parsed statements keyed by SQL text. The key is also
/// held as a shared `Arc<str>` so cache hits hand out the text without
/// re-allocating it.
#[derive(Debug, Default)]
struct PlanCache {
    #[allow(clippy::type_complexity)]
    entries: HashMap<String, (Arc<str>, Arc<Statement>, Arc<PlanCell>, u64)>,
    tick: u64,
}

impl PlanCache {
    fn get(&mut self, sql: &str) -> Option<(Arc<str>, Arc<Statement>, Arc<PlanCell>)> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(sql).map(|(text, stmt, cell, used)| {
            *used = tick;
            (Arc::clone(text), Arc::clone(stmt), Arc::clone(cell))
        })
    }

    fn insert(&mut self, sql: String, stmt: Arc<Statement>) -> Arc<PlanCell> {
        self.tick += 1;
        if self.entries.len() >= PLAN_CACHE_CAPACITY {
            // Evict the least-recently-used entry. A linear scan is fine:
            // eviction is rare (the working set is far below capacity) and
            // the map is small by construction.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, _, _, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        let text: Arc<str> = Arc::from(sql.as_str());
        let cell = Arc::new(PlanCell::new());
        self.entries
            .insert(sql, (text, stmt, Arc::clone(&cell), self.tick));
        cell
    }
}

/// An embedded SQL database ("the MySQL connection" of the paper),
/// thread-safe: SDM ranks share one `Database` behind an `Arc`.
///
/// Statements are parsed once and cached by SQL text (an LRU of parsed
/// ASTs), so the hot metadata path — the same dozen INSERT/SELECT shapes
/// issued every timestep — never re-lexes SQL after warmup;
/// [`Database::stats`] exposes the hit/miss counts along with scan
/// strategy and row-volume counters.
///
/// Transactions (`BEGIN` / `COMMIT` / `ROLLBACK`) keep a row-level
/// **undo log** under a global table lock: one transaction may be open
/// at a time, and while it is open, **writes from other threads wait**
/// for it to close (reads proceed). `BEGIN` allocates an empty log —
/// nothing is cloned — and each mutation the owner executes appends the
/// undo images of exactly the rows it touched; `COMMIT` discards the
/// log, `ROLLBACK` replays it in reverse. A transaction touching k rows
/// of an n-row database therefore does O(k) bookkeeping, and a
/// `ROLLBACK` only ever discards the owning transaction's own work.
/// That matches how SDM uses the database — rank 0 brackets its
/// metadata updates — and the table-level locking of the MySQL 3.23
/// era.
///
/// The lock ladder, top to bottom (a thread only ever acquires
/// downward):
///
/// 1. `tx` — rank [`LOCK_RANK_TX`] — the transaction slot. Writers take
///    it first (waiting on `tx_freed` while a foreign transaction is
///    open) and hold it across their statement;
///    `BEGIN`/`COMMIT`/`ROLLBACK` take only it.
/// 2. `catalog` — rank [`LOCK_RANK_CATALOG`] — `read()` for SELECTs
///    (concurrent readers proceed in parallel; index probes take
///    `&Table`), `write()` for mutations and rollback replay.
/// 3. `wal_sync` — rank [`LOCK_RANK_WAL_SYNC`] — the WAL's storage
///    tail: a group-commit leader holds it across append+fsync while
///    followers queue behind it (durable databases only; taken after
///    the catalog lock is released, so an fsync never blocks readers).
/// 4. `wal_buf` — rank [`LOCK_RANK_WAL_BUF`] — the WAL's in-memory
///    record buffer, taken briefly to append encoded frames or to let
///    the leader drain them.
/// 5. `stats` / `plans` — rank [`LOCK_RANK_LEAF`] — leaf mutexes, taken
///    alone and briefly (never nested with each other); statement
///    execution records into a local `DbStats` and merges after
///    releasing the catalog lock.
///
/// The ladder is machine-checked twice over:
///
/// * **statically** by `sdm-analyze` rule `ladder`, which scans every
///   non-test function in this crate for acquisition order, guard
///   scopes, and early drops (CI runs it in the lint job);
/// * **dynamically** by the `parking_lot` shim's rank checker: the
///   constructor below assigns each lock its rank, and under
///   `cfg(debug_assertions)` a thread-local rank stack panics on any
///   non-descending acquisition — every test that touches the database
///   is a ladder witness.
#[derive(Debug)]
pub struct Database {
    catalog: RwLock<Catalog>,
    tx: Mutex<Option<TxState>>,
    /// Signaled whenever the transaction slot frees (COMMIT/ROLLBACK);
    /// blocked writers and `begin_nested` park here instead of spinning.
    tx_freed: parking_lot::Condvar,
    stats: Mutex<DbStats>,
    plans: Mutex<PlanCache>,
    /// The write-ahead log — `Some` for durable databases
    /// ([`Database::open`]), `None` for purely in-memory ones
    /// ([`Database::new`]).
    wal: Option<Wal>,
}

/// Runtime rank of the `tx` slot mutex (top of the ladder). Sourced
/// from the workspace-wide [`sdm_ranks`] registry so the shim's panic
/// message and `sdm-analyze` findings print the same names.
pub const LOCK_RANK_TX: u32 = sdm_ranks::TX;
/// Runtime rank of the `catalog` RwLock (middle of the ladder).
pub const LOCK_RANK_CATALOG: u32 = sdm_ranks::CATALOG;
/// Runtime rank of the WAL's storage-tail mutex (group-commit leader
/// election): below the catalog, above the record buffer.
pub const LOCK_RANK_WAL_SYNC: u32 = sdm_ranks::WAL_SYNC;
/// Runtime rank of the WAL's record-buffer mutex.
pub const LOCK_RANK_WAL_BUF: u32 = sdm_ranks::WAL_BUF;
/// Runtime rank shared by the `stats` and `plans` leaf mutexes. They
/// share one rank on purpose: leaves are taken alone, so nesting one
/// under the other trips the checker just like re-entering a lock.
pub const LOCK_RANK_LEAF: u32 = sdm_ranks::LEAF;

impl Default for Database {
    fn default() -> Self {
        Self {
            catalog: RwLock::new(Catalog::default()).with_rank(LOCK_RANK_CATALOG),
            tx: Mutex::new(None).with_rank(LOCK_RANK_TX),
            tx_freed: parking_lot::Condvar::new(),
            stats: Mutex::new(DbStats::default()).with_rank(LOCK_RANK_LEAF),
            plans: Mutex::new(PlanCache::default()).with_rank(LOCK_RANK_LEAF),
            wal: None,
        }
    }
}

/// An open transaction: its undo log plus the thread that owns it (the
/// owner's own writes pass the table lock and log undo; everyone
/// else's wait).
#[derive(Debug)]
struct TxState {
    undo: UndoLog,
    owner: std::thread::ThreadId,
    /// WAL transaction id (`None` on in-memory databases).
    txid: Option<u64>,
    /// Whether any redo record was appended under this transaction —
    /// read-only transactions skip the commit frame and its fsync.
    logged: bool,
}

impl TxState {
    fn open(wal: Option<&Wal>) -> Self {
        Self {
            undo: UndoLog::default(),
            owner: std::thread::current().id(),
            txid: wal.map(Wal::begin_tx),
            logged: false,
        }
    }
}

/// What [`Database::begin_nested`] acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxTicket {
    /// A fresh transaction was opened; the caller must `COMMIT` (or
    /// `ROLLBACK`) it.
    Owned,
    /// The calling thread already has a transaction open; the caller's
    /// statements join it and the outer owner decides its fate.
    Inherited,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a **durable** database backed by a write-ahead log under
    /// `dir` (created if absent), recovering whatever a previous
    /// process left: the newest valid checkpoint snapshot plus every
    /// committed transaction in the log, with any torn tail after the
    /// last valid record discarded. See [`Database::recovery_info`].
    pub fn open(dir: impl AsRef<std::path::Path>) -> DbResult<Self> {
        Self::open_with_storage(Box::new(FileStorage::open(dir)?))
    }

    /// Open a durable database over any [`WalStorage`] backend — the
    /// fault-injectable in-memory backend
    /// ([`crate::wal::storage::MemStorage`]) is how the crash-recovery
    /// tests run the full commit path without a filesystem.
    pub fn open_with_storage(storage: Box<dyn WalStorage>) -> DbResult<Self> {
        let (wal, catalog) = Wal::open(storage)?;
        Ok(Self {
            catalog: RwLock::new(catalog).with_rank(LOCK_RANK_CATALOG),
            tx: Mutex::new(None).with_rank(LOCK_RANK_TX),
            tx_freed: parking_lot::Condvar::new(),
            stats: Mutex::new(DbStats::default()).with_rank(LOCK_RANK_LEAF),
            plans: Mutex::new(PlanCache::default()).with_rank(LOCK_RANK_LEAF),
            wal: Some(wal),
        })
    }

    /// Whether this database has a write-ahead log.
    pub fn is_durable(&self) -> bool {
        self.wal.is_some()
    }

    /// What recovery found when this database opened (`None` for
    /// in-memory databases).
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.wal.as_ref().map(Wal::recovery_info)
    }

    /// Total WAL bytes appended since open (bench bookkeeping; 0 for
    /// in-memory databases).
    pub fn wal_appended_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::appended_bytes)
    }

    /// Checkpoint: quiesce transactions, write an atomic catalog
    /// snapshot covering every committed transaction, and truncate the
    /// log. Returns the last transaction id the snapshot covers.
    ///
    /// A crash at *any* point is safe: the snapshot installs by
    /// temp+fsync+rename, and sealed log segments are deleted only
    /// after the install succeeded — until then recovery uses the old
    /// snapshot plus the full log. Errors if called on an in-memory
    /// database or from inside the calling thread's own open
    /// transaction (it would deadlock waiting on itself).
    pub fn checkpoint(&self) -> DbResult<u64> {
        let Some(wal) = &self.wal else {
            return Err(DbError::Persist(
                "checkpoint requires a durable database (Database::open)".into(),
            ));
        };
        // Quiesce: hold the transaction slot so no new transaction or
        // mutation can start (mutations clear through this mutex), and
        // wait out any open transaction.
        let mut tx = self.tx.lock();
        while let Some(state) = &*tx {
            if state.owner == std::thread::current().id() {
                return Err(DbError::Tx(
                    "checkpoint inside the calling thread's open transaction".into(),
                ));
            }
            self.tx_freed.wait(&mut tx);
        }
        let last_tx = wal.last_committed();
        let catalog = self.catalog.read().clone();
        // Seal the log at the quiesce point: everything the snapshot
        // covers is in sealed segments, and post-checkpoint commits go
        // to a fresh one (one transaction never spans segments).
        wal.rotate()?;
        drop(tx);
        // Install outside the slot: a transaction committing during the
        // install lands in the fresh segment with a txid above
        // `last_tx`, so recovery replays it on top of the snapshot.
        let doc = crate::wal::encode_snapshot(last_tx, &catalog)?;
        wal.install_snapshot(&doc)?;
        self.stats.lock().checkpoints += 1;
        Ok(last_tx)
    }

    /// Parse `sql` into a reusable [`PreparedStatement`].
    ///
    /// Results are cached by SQL text: preparing the same text again
    /// (from any thread) returns the shared parsed AST and counts as a
    /// `parse_hits` in [`Database::stats`] instead of re-parsing.
    pub fn prepare(&self, sql: &str) -> DbResult<PreparedStatement> {
        self.stats.lock().sql_texts += 1;
        // Bind the cache probe to a local first: leaf mutexes share one
        // rank, so the `plans` guard (an `if let` scrutinee temporary
        // would live through the body) must drop before `stats` locks.
        let cached = self.plans.lock().get(sql);
        if let Some((text, stmt, cell)) = cached {
            self.stats.lock().parse_hits += 1;
            return Ok(PreparedStatement {
                sql: text,
                stmt,
                cell,
            });
        }
        let stmt = Arc::new(parse(sql)?);
        self.stats.lock().parse_misses += 1;
        let cell = self.plans.lock().insert(sql.to_string(), Arc::clone(&stmt));
        Ok(PreparedStatement {
            sql: Arc::from(sql),
            stmt,
            cell,
        })
    }

    /// Execute a prepared statement with positional `?` parameters.
    pub fn exec_prepared(&self, ps: &PreparedStatement, params: &[Value]) -> DbResult<ResultSet> {
        self.run_statement(&ps.stmt, params, &ps.cell)
    }

    /// Parse (through the statement cache) and execute one statement
    /// with positional `?` parameters.
    pub fn exec(&self, sql: &str, params: &[Value]) -> DbResult<ResultSet> {
        let ps = self.prepare(sql)?;
        self.run_statement(&ps.stmt, params, &ps.cell)
    }

    /// Execute a typed [`crate::stmt::Stmt`] with positional `?`
    /// parameters. This is the text-free execution path: no lexing, no
    /// plan-cache lookup, no SQL string — the compiled statement *is*
    /// the plan ([`DbStats::sql_texts`] does not move).
    pub fn exec_stmt(&self, stmt: &crate::stmt::Stmt, params: &[Value]) -> DbResult<ResultSet> {
        self.run_statement(stmt.ast(), params, stmt.plan_cell())
    }

    fn run_statement(
        &self,
        stmt: &Statement,
        params: &[Value],
        cell: &PlanCell,
    ) -> DbResult<ResultSet> {
        match stmt {
            Statement::Begin => {
                let mut tx = self.tx.lock();
                if tx.is_some() {
                    return Err(DbError::Tx("transaction already open".into()));
                }
                // O(1): an empty undo log, never a catalog clone.
                *tx = Some(TxState::open(self.wal.as_ref()));
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let mut tx = self.tx.lock();
                match &*tx {
                    None => {
                        return Err(DbError::Tx("COMMIT without an open transaction".into()));
                    }
                    Some(state) if state.owner != std::thread::current().id() => {
                        return Err(DbError::Tx(
                            "COMMIT of a transaction owned by another thread".into(),
                        ));
                    }
                    Some(_) => {}
                }
                // Append the COMMIT frame while the slot is still held
                // (no other transaction's frames can interleave), but
                // fsync only *after* releasing it — that window is what
                // lets a group-commit leader batch several committers
                // into one fsync. Read-only transactions skip both.
                let mut commit_lsn = None;
                if let (Some(wal), Some(state)) = (&self.wal, tx.as_ref()) {
                    if state.logged {
                        if let Some(txid) = state.txid {
                            let mut app = WalAppender::new(txid);
                            app.commit();
                            let lsn = wal.append_bytes(&app.into_buf(), 1);
                            wal.note_committed(txid);
                            commit_lsn = Some(lsn);
                        }
                    }
                }
                *tx = None; // the undo log is simply discarded
                self.tx_freed.notify_all();
                drop(tx);
                let mut local = DbStats {
                    transactions: 1,
                    ..DbStats::default()
                };
                if let (Some(wal), Some(lsn)) = (&self.wal, commit_lsn) {
                    local.wal_appends += 1;
                    // A sync failure fails the COMMIT: the transaction's
                    // effects stay in memory but were never made durable
                    // (and the WAL is now poisoned — see `wal` docs).
                    let (fsyncs, batched) = wal.sync_to(lsn)?;
                    local.wal_fsyncs += fsyncs;
                    local.group_commit_batched += batched;
                }
                self.stats.lock().merge(&local);
                Ok(ResultSet::default())
            }
            Statement::Rollback => {
                let mut tx = self.tx.lock();
                let state = match tx.take() {
                    None => {
                        return Err(DbError::Tx("ROLLBACK without an open transaction".into()));
                    }
                    Some(state) if state.owner != std::thread::current().id() => {
                        // Not ours: put it back untouched.
                        *tx = Some(state);
                        return Err(DbError::Tx(
                            "ROLLBACK of a transaction owned by another thread".into(),
                        ));
                    }
                    Some(state) => state,
                };
                // Append the ABORT frame (no fsync: recovery discards
                // unterminated transactions anyway, the frame just lets
                // it stop buffering them early).
                if let Some(wal) = &self.wal {
                    if state.logged {
                        if let Some(txid) = state.txid {
                            let mut app = WalAppender::new(txid);
                            app.abort();
                            wal.append_bytes(&app.into_buf(), 0);
                        }
                    }
                }
                // Replay the undo log in reverse: O(rows touched).
                let rows_undone = state.undo.rollback(&mut self.catalog.write());
                self.tx_freed.notify_all();
                drop(tx);
                self.stats.lock().tx_rows_undone += rows_undone;
                Ok(ResultSet::default())
            }
            stmt if Self::is_mutation(stmt) => {
                // Table-lock semantics: mutations from threads other
                // than an open transaction's owner wait for it to
                // close, so a ROLLBACK can never discard a foreign
                // committed write. The guard is held across execution
                // so a BEGIN cannot slip in mid-statement either — and
                // it is also where the owner's undo log lives.
                let mut clearance = self.write_clearance();
                let me = std::thread::current().id();
                let own_tx = matches!(&*clearance, Some(state) if state.owner == me);
                // Durable databases capture redo into a per-statement
                // appender: under an owned transaction it joins that
                // transaction's id, otherwise the statement autocommits
                // under a fresh one.
                let mut wal_app = self.wal.as_ref().map(|wal| {
                    let txid = clearance
                        .as_ref()
                        .filter(|_| own_tx)
                        .and_then(|state| state.txid);
                    WalAppender::new(txid.unwrap_or_else(|| wal.begin_tx()))
                });
                let undo = clearance
                    .as_mut()
                    .filter(|state| state.owner == me)
                    .map(|state| &mut state.undo);
                let mut catalog = self.catalog.write();
                let mut local = DbStats::default();
                let result = execute_mutation(
                    &mut catalog,
                    stmt,
                    params,
                    &mut local,
                    undo,
                    wal_app.as_mut(),
                    Some(cell),
                );
                drop(catalog);
                // Hand the captured frames to the shared log while the
                // clearance guard still excludes other writers, so
                // frames of different transactions never interleave.
                // This happens even when the statement *failed*: its
                // partial effects (a mid-batch INSERT error) are live in
                // memory and later records' positions build on them, so
                // recovery must replay them too.
                let mut sync_lsn = None;
                if let (Some(wal), Some(app)) = (&self.wal, wal_app) {
                    if app.records() > 0 {
                        local.wal_appends += app.records();
                        if own_tx {
                            // In-transaction: buffered only; durability
                            // comes with the COMMIT frame's fsync.
                            wal.append_bytes(&app.into_buf(), 0);
                            if let Some(state) = clearance.as_mut() {
                                state.logged = true;
                            }
                        } else {
                            let mut app = app;
                            let txid = app.txid();
                            app.commit();
                            local.wal_appends += 1;
                            let lsn = wal.append_bytes(&app.into_buf(), 1);
                            wal.note_committed(txid);
                            sync_lsn = Some(lsn);
                        }
                    }
                }
                drop(clearance);
                // Autocommit durability: fsync (or join a leader's
                // group commit) after the slot is released.
                let sync_result = match (&self.wal, sync_lsn) {
                    (Some(wal), Some(lsn)) => wal.sync_to(lsn).map(Some),
                    _ => Ok(None),
                };
                if let Ok(Some((fsyncs, batched))) = &sync_result {
                    local.wal_fsyncs += fsyncs;
                    local.group_commit_batched += batched;
                }
                self.stats.lock().merge(&local);
                let result = match sync_result {
                    // A durability failure trumps a successful statement
                    // — but never masks the statement's own error.
                    Err(e) => result.and(Err(e)),
                    Ok(_) => result,
                };
                Self::outcome_to_set(result)
            }
            stmt => {
                // SELECTs execute under the shared catalog lock:
                // concurrent readers proceed in parallel and never
                // contend with each other. Stats are recorded locally
                // and merged after the lock drops.
                let catalog = self.catalog.read();
                let mut local = DbStats::default();
                let result = execute_read(&catalog, stmt, params, &mut local, Some(cell));
                drop(catalog);
                self.stats.lock().merge(&local);
                Self::outcome_to_set(result)
            }
        }
    }

    fn outcome_to_set(result: DbResult<Outcome>) -> DbResult<ResultSet> {
        match result? {
            Outcome::Rows { columns, rows } => Ok(ResultSet {
                columns,
                rows,
                affected: 0,
            }),
            Outcome::Affected(n) => Ok(ResultSet {
                columns: vec![],
                rows: vec![],
                affected: n,
            }),
        }
    }

    /// Whether a statement mutates the catalog (subject to the table
    /// lock of an open transaction).
    fn is_mutation(stmt: &Statement) -> bool {
        !matches!(
            stmt,
            Statement::Select { .. } | Statement::Begin | Statement::Commit | Statement::Rollback
        )
    }

    /// Block until no *foreign* transaction is open, returning the tx
    /// slot guard (held while the caller executes its mutation). The
    /// owning thread of an open transaction passes straight through —
    /// its writes belong to the transaction.
    fn write_clearance(&self) -> parking_lot::MutexGuard<'_, Option<TxState>> {
        let mut tx = self.tx.lock();
        loop {
            match &*tx {
                Some(state) if state.owner != std::thread::current().id() => {
                    self.tx_freed.wait(&mut tx);
                }
                _ => return tx,
            }
        }
    }

    /// Execute several `;`-free statements in order (schema setup).
    pub fn exec_batch(&self, stmts: &[&str]) -> DbResult<()> {
        for s in stmts {
            self.exec(s, &[])?;
        }
        Ok(())
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains(name)
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.tx.lock().is_some()
    }

    /// Open a transaction for a short read-modify-write sequence,
    /// cooperating with the single-transaction model:
    ///
    /// * no transaction open → opens one ([`TxTicket::Owned`]; the
    ///   caller must `COMMIT`/`ROLLBACK`);
    /// * the **calling thread** already owns the open transaction →
    ///   returns [`TxTicket::Inherited`] immediately (the caller's
    ///   statements join the outer transaction; never self-deadlocks);
    /// * another thread owns it → waits (yielding) until it closes.
    pub fn begin_nested(&self) -> TxTicket {
        let mut tx = self.tx.lock();
        loop {
            match &*tx {
                None => {
                    *tx = Some(TxState::open(self.wal.as_ref()));
                    return TxTicket::Owned;
                }
                Some(state) if state.owner == std::thread::current().id() => {
                    return TxTicket::Inherited;
                }
                Some(_) => self.tx_freed.wait(&mut tx),
            }
        }
    }

    /// Run `f` inside an owned transaction bracket, cooperating with
    /// the single-transaction model: a fresh transaction is opened and
    /// committed around `f` (rolled back if `f` errs); when the calling
    /// thread already owns the open transaction, `f` simply joins it
    /// and the outer owner decides its fate. This is the shared
    /// read-modify-write bracket (`allocate_runid`, attribute upserts);
    /// code that must distinguish the two cases on failure (partial
    /// batch requeue) drives [`Database::begin_nested`] directly.
    pub fn with_owned_tx<T>(&self, f: impl FnOnce() -> DbResult<T>) -> DbResult<T> {
        match self.begin_nested() {
            TxTicket::Inherited => f(),
            TxTicket::Owned => match f() {
                Ok(v) => {
                    self.exec_stmt(&crate::stmt::Stmt::commit(), &[])?;
                    Ok(v)
                }
                Err(e) => {
                    let _ = self.exec_stmt(&crate::stmt::Stmt::rollback(), &[]);
                    Err(e)
                }
            },
        }
    }

    /// Statement-cache and scan-strategy counters since the last
    /// [`Database::reset_stats`].
    pub fn stats(&self) -> DbStats {
        *self.stats.lock()
    }

    /// Zero the counters.
    pub fn reset_stats(&self) {
        *self.stats.lock() = DbStats::default();
    }

    /// Snapshot of the catalog (persistence).
    pub(crate) fn catalog_snapshot(&self) -> Catalog {
        self.catalog.read().clone()
    }

    /// Replace the catalog (load from disk). Index maps are not
    /// serialized, so they are rebuilt here before the catalog serves
    /// its first probe.
    pub(crate) fn install_catalog(&self, mut c: Catalog) {
        c.rebuild_indexes();
        *self.catalog.write() = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_session() {
        let db = Database::new();
        db.exec("CREATE TABLE kv (k TEXT, v INT)", &[]).unwrap();
        db.exec(
            "INSERT INTO kv VALUES (?, ?)",
            &[Value::from("x"), Value::Int(1)],
        )
        .unwrap();
        db.exec(
            "INSERT INTO kv VALUES (?, ?)",
            &[Value::from("y"), Value::Int(2)],
        )
        .unwrap();
        let rs = db
            .exec("SELECT v FROM kv WHERE k = ?", &[Value::from("y")])
            .unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
        let rs = db.exec("UPDATE kv SET v = v * 10", &[]).unwrap();
        assert_eq!(rs.affected, 2);
        let rs = db.exec("SELECT v FROM kv ORDER BY v", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        db.exec("CREATE TABLE c (n INT)", &[]).unwrap();
        std::thread::scope(|s| {
            for i in 0..8 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for j in 0..50 {
                        db.exec("INSERT INTO c VALUES (?)", &[Value::Int(i * 100 + j)])
                            .unwrap();
                    }
                });
            }
        });
        let rs = db.exec("SELECT * FROM c", &[]).unwrap();
        assert_eq!(rs.len(), 400);
    }

    #[test]
    fn exec_batch_runs_all() {
        let db = Database::new();
        db.exec_batch(&[
            "CREATE TABLE a (x INT)",
            "CREATE TABLE b (y INT)",
            "INSERT INTO a VALUES (1)",
        ])
        .unwrap();
        assert!(db.has_table("a") && db.has_table("b"));
    }

    #[test]
    fn errors_propagate() {
        let db = Database::new();
        assert!(db.exec("SELECT * FROM missing", &[]).is_err());
        assert!(db.exec("NOT SQL AT ALL", &[]).is_err());
    }

    #[test]
    fn result_set_helpers() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        let rs = db.exec("SELECT * FROM t", &[]).unwrap();
        assert!(rs.is_empty());
        assert!(rs.first().is_none());
        assert!(rs.scalar().is_none());
    }

    #[test]
    fn rollback_restores_data() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        assert!(db.in_transaction());
        db.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
        db.exec("DELETE FROM t WHERE a = 1", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        assert!(!db.in_transaction());
        let rs = db.exec("SELECT a FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn commit_keeps_data() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("START TRANSACTION", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (7)", &[]).unwrap();
        db.exec("COMMIT", &[]).unwrap();
        let rs = db.exec("SELECT a FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn rollback_restores_schema_changes() {
        let db = Database::new();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("CREATE TABLE temp (x INT)", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        assert!(!db.has_table("temp"));
    }

    #[test]
    fn rollback_cost_tracks_rows_touched_not_table_size() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT, b TEXT)", &[]).unwrap();
        for i in 0..5_000 {
            db.exec(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i), Value::from("x")],
            )
            .unwrap();
        }
        db.reset_stats();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (9001, 'tx')", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (9002, 'tx')", &[]).unwrap();
        db.exec("UPDATE t SET b = 'y' WHERE a = 7", &[]).unwrap();
        db.exec("DELETE FROM t WHERE a = 8", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        // 2 inserts + 1 update + 1 delete = 4 row images, although the
        // table holds 5000 rows.
        assert_eq!(db.stats().tx_rows_undone, 4);
        let rs = db.exec("SELECT COUNT(*) FROM t", &[]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5_000)));
        let rs = db.exec("SELECT b FROM t WHERE a = 7", &[]).unwrap();
        assert_eq!(rs.scalar().and_then(Value::as_str), Some("x"));
        assert_eq!(
            db.exec("SELECT COUNT(*) FROM t WHERE a = 8", &[])
                .unwrap()
                .scalar(),
            Some(&Value::Int(1))
        );
    }

    #[test]
    fn rollback_restores_ddl_and_dml_interleaved() {
        let db = Database::new();
        db.exec("CREATE TABLE keep (a INT)", &[]).unwrap();
        db.exec("INSERT INTO keep VALUES (1)", &[]).unwrap();
        db.exec("CREATE INDEX ka ON keep (a)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("INSERT INTO keep VALUES (2)", &[]).unwrap();
        db.exec("DROP INDEX ka ON keep", &[]).unwrap();
        db.exec("CREATE TABLE temp (x INT)", &[]).unwrap();
        db.exec("INSERT INTO temp VALUES (7)", &[]).unwrap();
        db.exec("DROP TABLE keep", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        assert!(!db.has_table("temp"));
        assert!(db.has_table("keep"));
        let rs = db.exec("SELECT a FROM keep", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
        // The index survived (restored by the DROP TABLE undo, and the
        // DROP INDEX undo re-created it) and still answers probes.
        db.reset_stats();
        db.exec("SELECT a FROM keep WHERE a = 1", &[]).unwrap();
        assert_eq!(db.stats().index_scans, 1);
    }

    #[test]
    fn tx_misuse_errors() {
        let db = Database::new();
        assert!(matches!(db.exec("COMMIT", &[]), Err(DbError::Tx(_))));
        assert!(matches!(db.exec("ROLLBACK", &[]), Err(DbError::Tx(_))));
        db.exec("BEGIN", &[]).unwrap();
        assert!(matches!(db.exec("BEGIN", &[]), Err(DbError::Tx(_))));
        db.exec("COMMIT", &[]).unwrap();
    }

    #[test]
    fn begin_nested_owns_free_slot_and_inherits_own_tx() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        assert_eq!(db.begin_nested(), TxTicket::Owned);
        assert!(db.in_transaction());
        // Same thread again: join, don't deadlock, don't double-open.
        assert_eq!(db.begin_nested(), TxTicket::Inherited);
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.exec("COMMIT", &[]).unwrap();
        assert_eq!(db.exec("SELECT a FROM t", &[]).unwrap().len(), 1);
    }

    #[test]
    fn foreign_writes_wait_for_open_transaction() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        // A writer on another thread must block until the transaction
        // closes — its row must NOT be erased by our rollback.
        let writer = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                db.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
            })
        };
        // Give the writer time to reach the table lock, then discard
        // only our own work.
        std::thread::sleep(std::time::Duration::from_millis(50));
        db.exec("ROLLBACK", &[]).unwrap();
        writer.join().unwrap();
        let rs = db.exec("SELECT a FROM t", &[]).unwrap();
        assert_eq!(
            rs.rows,
            vec![vec![Value::Int(2)]],
            "rollback must only discard the transaction's own writes"
        );
    }

    #[test]
    fn reads_proceed_during_foreign_transaction() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        let reader = {
            let db = Arc::clone(&db);
            std::thread::spawn(move || db.exec("SELECT a FROM t", &[]).unwrap().len())
        };
        assert_eq!(reader.join().unwrap(), 1, "reads are not table-locked");
        db.exec("COMMIT", &[]).unwrap();
    }

    #[test]
    fn stats_observe_index_usage() {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for i in 0..20 {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(i)])
                .unwrap();
        }
        db.exec("CREATE INDEX tk ON t (k)", &[]).unwrap();
        db.reset_stats();
        db.exec("SELECT * FROM t WHERE k = 5", &[]).unwrap();
        db.exec("SELECT * FROM t WHERE k > 5", &[]).unwrap();
        let s = db.stats();
        assert_eq!((s.index_scans, s.full_scans), (1, 1));
        // The index probe touched one row; the fallback scanned all 20.
        assert_eq!(s.rows_scanned, 21);
        assert_eq!(s.rows_returned, 15);
    }

    // ---- prepared statements ----

    #[test]
    fn prepared_statement_reuses_parse() {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT, v TEXT)", &[]).unwrap();
        db.reset_stats();
        let ins = db.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
        for i in 0..10 {
            ins.execute(&db, &[Value::Int(i), Value::from("x")])
                .unwrap();
        }
        let s = db.stats();
        assert_eq!(s.parse_misses, 1, "one parse for ten executions");
        // Executing a prepared statement never re-parses (hits stay 0:
        // only `prepare`/`exec` consult the cache).
        let sel = db.prepare("SELECT COUNT(*) FROM t WHERE k >= ?").unwrap();
        let rs = sel.execute(&db, &[Value::Int(5)]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(5)));
    }

    #[test]
    fn exec_reuses_cached_plans() {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        db.reset_stats();
        for i in 0..5 {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(i)])
                .unwrap();
        }
        let s = db.stats();
        assert_eq!((s.parse_misses, s.parse_hits), (1, 4));
    }

    #[test]
    fn prepared_equals_exec_results() {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT, v TEXT)", &[]).unwrap();
        for i in 0..10 {
            db.exec(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i % 3), Value::from("x")],
            )
            .unwrap();
        }
        let sql = "SELECT COUNT(*) FROM t WHERE k = ?";
        let ps = db.prepare(sql).unwrap();
        for probe in 0..4 {
            let a = db.exec(sql, &[Value::Int(probe)]).unwrap();
            let b = ps.execute(&db, &[Value::Int(probe)]).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn prepared_transactions_work() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        let begin = db.prepare("BEGIN").unwrap();
        let rollback = db.prepare("ROLLBACK").unwrap();
        begin.execute(&db, &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        rollback.execute(&db, &[]).unwrap();
        assert!(db.exec("SELECT * FROM t", &[]).unwrap().is_empty());
    }

    #[test]
    fn plan_cache_evicts_at_capacity() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        // Distinct SQL texts beyond capacity: must not grow unboundedly
        // and must still parse correctly afterwards.
        for i in 0..(super::PLAN_CACHE_CAPACITY + 50) {
            db.exec(&format!("SELECT a FROM t WHERE a = {i}"), &[])
                .unwrap();
        }
        db.reset_stats();
        db.exec("SELECT a FROM t WHERE a = 1", &[]).unwrap(); // evicted long ago
        let s = db.stats();
        assert_eq!(s.parse_misses, 1);
    }

    #[test]
    fn prepare_rejects_bad_sql() {
        let db = Database::new();
        assert!(db.prepare("SELEKT nope").is_err());
    }

    // ---- durability ----

    use crate::wal::storage::{MemStorage, WalFaults};

    fn dump(db: &Database, table: &str) -> Vec<Row> {
        db.exec(&format!("SELECT * FROM {table}"), &[])
            .unwrap()
            .rows
    }

    #[test]
    fn durable_database_survives_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::open(dir.path()).unwrap();
        assert!(db.is_durable());
        db.exec("CREATE TABLE t (a INT, b TEXT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1, 'x'), (2, 'y')", &[])
            .unwrap();
        db.exec("UPDATE t SET b = 'z' WHERE a = 2", &[]).unwrap();
        db.exec("DELETE FROM t WHERE a = 1", &[]).unwrap();
        let before = dump(&db, "t");
        let stats = db.stats();
        assert!(stats.wal_appends >= 4, "every mutation logged redo");
        assert!(stats.wal_fsyncs >= 1, "autocommits fsync");
        drop(db);

        let db = Database::open(dir.path()).unwrap();
        assert_eq!(dump(&db, "t"), before);
        let info = db.recovery_info().unwrap();
        assert!(info.replayed_txs >= 4);
        assert_eq!(info.torn_bytes, 0);
    }

    #[test]
    fn durable_rollback_never_resurrects() {
        let (storage, h) = MemStorage::new();
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (3)", &[]).unwrap();
        db.exec("COMMIT", &[]).unwrap();

        let (storage, _h) = MemStorage::from_persisted(h.persisted());
        let db2 = Database::open_with_storage(Box::new(storage)).unwrap();
        assert_eq!(
            dump(&db2, "t"),
            vec![vec![Value::Int(1)], vec![Value::Int(3)]]
        );
    }

    #[test]
    fn read_only_transactions_cost_no_fsync() {
        let (storage, _h) = MemStorage::new();
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.reset_stats();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("SELECT * FROM t", &[]).unwrap();
        db.exec("COMMIT", &[]).unwrap();
        let s = db.stats();
        assert_eq!(s.transactions, 1);
        assert_eq!((s.wal_appends, s.wal_fsyncs), (0, 0));
    }

    #[test]
    fn checkpoint_truncates_log_and_reopen_replays_the_rest() {
        let dir = tempfile::tempdir().unwrap();
        let db = Database::open(dir.path()).unwrap();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        let covered = db.checkpoint().unwrap();
        assert!(covered >= 2);
        assert_eq!(db.stats().checkpoints, 1);
        db.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
        drop(db);

        let db = Database::open(dir.path()).unwrap();
        let info = db.recovery_info().unwrap();
        assert_eq!(info.snapshot_last_tx, covered);
        assert_eq!(info.replayed_txs, 1, "only the post-checkpoint insert");
        assert_eq!(
            dump(&db, "t"),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]]
        );
    }

    #[test]
    fn checkpoint_inside_own_transaction_errors() {
        let (storage, _h) = MemStorage::new();
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        assert!(matches!(db.checkpoint(), Err(DbError::Tx(_))));
        db.exec("COMMIT", &[]).unwrap();
        db.checkpoint().unwrap();
    }

    #[test]
    fn checkpoint_errors_on_in_memory_database() {
        let db = Database::new();
        assert!(!db.is_durable());
        assert!(db.recovery_info().is_none());
        assert!(db.checkpoint().is_err());
    }

    #[test]
    fn failed_sync_fails_the_commit_and_poisons_later_ones() {
        let (storage, h) = MemStorage::new();
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        // Everything so far is durable; from here every fsync fails.
        let synced = db.stats().wal_fsyncs;
        h.set_faults(WalFaults::none().fail_sync_after(synced));
        assert!(db.exec("INSERT INTO t VALUES (1)", &[]).is_err());
        // The row is live in memory (documented) but commits stay
        // refused — durability can no longer be promised.
        assert_eq!(dump(&db, "t").len(), 1);
        assert!(db.exec("INSERT INTO t VALUES (2)", &[]).is_err());
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        use std::sync::Arc;
        // A sync that takes real time: while the leader sleeps inside
        // its fsync, the other committers append their COMMIT frames
        // and get covered by the next leader's single flush.
        #[derive(Debug)]
        struct SlowSync(MemStorage);
        impl crate::wal::storage::WalStorage for SlowSync {
            fn append(&mut self, b: &[u8]) -> DbResult<()> {
                self.0.append(b)
            }
            fn sync(&mut self) -> DbResult<()> {
                std::thread::sleep(std::time::Duration::from_millis(20));
                self.0.sync()
            }
            fn rotate(&mut self) -> DbResult<()> {
                self.0.rotate()
            }
            fn drop_sealed(&mut self) -> DbResult<()> {
                self.0.drop_sealed()
            }
            fn read_segments(&self) -> DbResult<Vec<Vec<u8>>> {
                self.0.read_segments()
            }
            fn read_snapshot(&self) -> DbResult<Option<Vec<u8>>> {
                self.0.read_snapshot()
            }
            fn install_snapshot(&mut self, b: &[u8]) -> DbResult<()> {
                self.0.install_snapshot(b)
            }
        }
        let (storage, h) = MemStorage::new();
        let db = Arc::new(Database::open_with_storage(Box::new(SlowSync(storage))).unwrap());
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.reset_stats();
        std::thread::scope(|s| {
            for i in 0..4 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    db.exec("INSERT INTO t VALUES (?)", &[Value::Int(i)])
                        .unwrap();
                });
            }
        });
        let stats = db.stats();
        assert!(
            stats.group_commit_batched >= 1,
            "4 concurrent committers against a 20ms fsync must batch \
             (fsyncs={}, batched={})",
            stats.wal_fsyncs,
            stats.group_commit_batched
        );
        assert_eq!(dump(&db, "t").len(), 4);

        // And the batched commits are all really durable.
        let (storage, _h) = MemStorage::from_persisted(h.persisted());
        let db2 = Database::open_with_storage(Box::new(storage)).unwrap();
        assert_eq!(dump(&db2, "t").len(), 4);
    }
}
