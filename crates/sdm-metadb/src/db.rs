//! The embedded database connection.

use parking_lot::{Mutex, RwLock};

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::exec::{execute_with_stats, DbStats, Outcome};
use crate::sql::ast::Statement;
use crate::sql::parse;
use crate::table::Row;
use crate::value::Value;

/// Result set of a SELECT (empty for other statements).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Projected column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows affected (for DML).
    pub affected: usize,
}

impl ResultSet {
    /// First row, if any.
    pub fn first(&self) -> Option<&Row> {
        self.rows.first()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Scalar convenience: the single value of a single-row,
    /// single-column result.
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.columns.len()) {
            (1, 1) => Some(&self.rows[0][0]),
            _ => self.rows.first().and_then(|r| r.first()),
        }
    }
}

/// An embedded SQL database ("the MySQL connection" of the paper),
/// thread-safe: SDM ranks share one `Database` behind an `Arc`.
///
/// Transactions (`BEGIN` / `COMMIT` / `ROLLBACK`) snapshot the whole
/// catalog, like a global table lock: one transaction may be open at a
/// time, and concurrent writers during an open transaction are rolled
/// back with it. That matches how SDM uses the database — rank 0
/// brackets its metadata updates — and the table-level locking of the
/// MySQL 3.23 era.
#[derive(Debug, Default)]
pub struct Database {
    catalog: RwLock<Catalog>,
    tx_snapshot: Mutex<Option<Catalog>>,
    stats: Mutex<DbStats>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse and execute one statement with positional `?` parameters.
    pub fn exec(&self, sql: &str, params: &[Value]) -> DbResult<ResultSet> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::Begin => {
                let mut tx = self.tx_snapshot.lock();
                if tx.is_some() {
                    return Err(DbError::Tx("transaction already open".into()));
                }
                *tx = Some(self.catalog.read().clone());
                Ok(ResultSet::default())
            }
            Statement::Commit => {
                let mut tx = self.tx_snapshot.lock();
                if tx.take().is_none() {
                    return Err(DbError::Tx("COMMIT without an open transaction".into()));
                }
                Ok(ResultSet::default())
            }
            Statement::Rollback => {
                let mut tx = self.tx_snapshot.lock();
                match tx.take() {
                    None => Err(DbError::Tx("ROLLBACK without an open transaction".into())),
                    Some(snapshot) => {
                        *self.catalog.write() = snapshot;
                        Ok(ResultSet::default())
                    }
                }
            }
            stmt => {
                let mut catalog = self.catalog.write();
                let mut stats = self.stats.lock();
                match execute_with_stats(&mut catalog, &stmt, params, &mut stats)? {
                    Outcome::Rows { columns, rows } => Ok(ResultSet { columns, rows, affected: 0 }),
                    Outcome::Affected(n) => Ok(ResultSet { columns: vec![], rows: vec![], affected: n }),
                }
            }
        }
    }

    /// Execute several `;`-free statements in order (schema setup).
    pub fn exec_batch(&self, stmts: &[&str]) -> DbResult<()> {
        for s in stmts {
            self.exec(s, &[])?;
        }
        Ok(())
    }

    /// Whether a table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.read().contains(name)
    }

    /// Whether a transaction is currently open.
    pub fn in_transaction(&self) -> bool {
        self.tx_snapshot.lock().is_some()
    }

    /// Scan-strategy counters (full scans vs index probes) since the
    /// last [`Database::reset_stats`].
    pub fn stats(&self) -> DbStats {
        *self.stats.lock()
    }

    /// Zero the scan counters.
    pub fn reset_stats(&self) {
        *self.stats.lock() = DbStats::default();
    }

    /// Snapshot of the catalog (persistence).
    pub(crate) fn catalog_snapshot(&self) -> Catalog {
        self.catalog.read().clone()
    }

    /// Replace the catalog (load from disk).
    pub(crate) fn install_catalog(&self, c: Catalog) {
        *self.catalog.write() = c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_session() {
        let db = Database::new();
        db.exec("CREATE TABLE kv (k TEXT, v INT)", &[]).unwrap();
        db.exec("INSERT INTO kv VALUES (?, ?)", &[Value::from("x"), Value::Int(1)]).unwrap();
        db.exec("INSERT INTO kv VALUES (?, ?)", &[Value::from("y"), Value::Int(2)]).unwrap();
        let rs = db.exec("SELECT v FROM kv WHERE k = ?", &[Value::from("y")]).unwrap();
        assert_eq!(rs.scalar(), Some(&Value::Int(2)));
        let rs = db.exec("UPDATE kv SET v = v * 10", &[]).unwrap();
        assert_eq!(rs.affected, 2);
        let rs = db.exec("SELECT v FROM kv ORDER BY v", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(10)], vec![Value::Int(20)]]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        db.exec("CREATE TABLE c (n INT)", &[]).unwrap();
        std::thread::scope(|s| {
            for i in 0..8 {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    for j in 0..50 {
                        db.exec("INSERT INTO c VALUES (?)", &[Value::Int(i * 100 + j)]).unwrap();
                    }
                });
            }
        });
        let rs = db.exec("SELECT * FROM c", &[]).unwrap();
        assert_eq!(rs.len(), 400);
    }

    #[test]
    fn exec_batch_runs_all() {
        let db = Database::new();
        db.exec_batch(&[
            "CREATE TABLE a (x INT)",
            "CREATE TABLE b (y INT)",
            "INSERT INTO a VALUES (1)",
        ])
        .unwrap();
        assert!(db.has_table("a") && db.has_table("b"));
    }

    #[test]
    fn errors_propagate() {
        let db = Database::new();
        assert!(db.exec("SELECT * FROM missing", &[]).is_err());
        assert!(db.exec("NOT SQL AT ALL", &[]).is_err());
    }

    #[test]
    fn result_set_helpers() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        let rs = db.exec("SELECT * FROM t", &[]).unwrap();
        assert!(rs.is_empty());
        assert!(rs.first().is_none());
        assert!(rs.scalar().is_none());
    }

    #[test]
    fn rollback_restores_data() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1)", &[]).unwrap();
        db.exec("BEGIN", &[]).unwrap();
        assert!(db.in_transaction());
        db.exec("INSERT INTO t VALUES (2)", &[]).unwrap();
        db.exec("DELETE FROM t WHERE a = 1", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        assert!(!db.in_transaction());
        let rs = db.exec("SELECT a FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn commit_keeps_data() {
        let db = Database::new();
        db.exec("CREATE TABLE t (a INT)", &[]).unwrap();
        db.exec("START TRANSACTION", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (7)", &[]).unwrap();
        db.exec("COMMIT", &[]).unwrap();
        let rs = db.exec("SELECT a FROM t", &[]).unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn rollback_restores_schema_changes() {
        let db = Database::new();
        db.exec("BEGIN", &[]).unwrap();
        db.exec("CREATE TABLE temp (x INT)", &[]).unwrap();
        db.exec("ROLLBACK", &[]).unwrap();
        assert!(!db.has_table("temp"));
    }

    #[test]
    fn tx_misuse_errors() {
        let db = Database::new();
        assert!(matches!(db.exec("COMMIT", &[]), Err(DbError::Tx(_))));
        assert!(matches!(db.exec("ROLLBACK", &[]), Err(DbError::Tx(_))));
        db.exec("BEGIN", &[]).unwrap();
        assert!(matches!(db.exec("BEGIN", &[]), Err(DbError::Tx(_))));
        db.exec("COMMIT", &[]).unwrap();
    }

    #[test]
    fn stats_observe_index_usage() {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for i in 0..20 {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(i)]).unwrap();
        }
        db.exec("CREATE INDEX tk ON t (k)", &[]).unwrap();
        db.reset_stats();
        db.exec("SELECT * FROM t WHERE k = 5", &[]).unwrap();
        db.exec("SELECT * FROM t WHERE k > 5", &[]).unwrap();
        let s = db.stats();
        assert_eq!((s.index_scans, s.full_scans), (1, 1));
    }
}
