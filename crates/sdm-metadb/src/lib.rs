//! Embedded relational metadata database.
//!
//! Stands in for the MySQL 3.23 server the paper used for SDM's
//! application metadata. SDM issues embedded SQL (CREATE TABLE / INSERT /
//! SELECT / UPDATE / DELETE with WHERE, ORDER BY, LIMIT and `?`
//! placeholders) against six small tables; this crate provides that
//! surface — plus the reporting features the bench harnesses lean on:
//! aggregates (COUNT/SUM/AVG/MIN/MAX), GROUP BY + HAVING, DISTINCT,
//! single-column INNER JOIN, secondary hash indexes (CREATE INDEX) with
//! automatic equality-probe planning and incremental maintenance, and
//! undo-log transactions (BEGIN/COMMIT/ROLLBACK cost O(rows touched),
//! never O(database)) — as an in-process engine:
//!
//! * [`value::Value`] / [`schema::Schema`] — the type system (INT,
//!   DOUBLE, TEXT + NULL).
//! * [`sql`] — lexer, AST, recursive-descent parser for the SQL subset.
//! * [`exec`] — statement execution (shared-borrow reads, undo-logging
//!   mutations) with index-backed join strategies (merge and
//!   index-nested-loop over ordered indexes, hash join as fallback).
//! * [`eval`] — compiled expression evaluation: predicates lowered once
//!   into flat instruction lists (column slots, interned constants,
//!   short-circuit jumps) and run per row against a register file with
//!   zero allocation; the AST walk survives only as the fallback.
//! * [`undo`] — per-transaction row-level undo logs (`ROLLBACK` replays
//!   them in reverse).
//! * [`Database`] — the embedded connection: `exec(sql, params)` for
//!   SQL text, `exec_stmt(stmt, params)` for typed statements.
//! * [`stmt`] — the **typed statement layer**: tables described once by
//!   [`stmt::Relation`] descriptors (the [`relation!`] macro), DDL
//!   generated from them, and queries built fluently
//!   ([`stmt::Query`] / [`stmt::Insert`] / [`stmt::Update`] /
//!   [`stmt::Delete`]) into compiled [`stmt::Stmt`] values that execute
//!   with zero SQL-text formatting or parsing.
//! * [`persist`] — JSON snapshot persistence, so metadata survives
//!   "runs" the way a MySQL server's tables did.
//! * [`wal`] — **durability**: a write-ahead log with group commit,
//!   checkpoints, and crash recovery ([`Database::open`] replays the
//!   log to exactly the last committed transaction), behind a
//!   [`wal::storage::WalStorage`] trait with fsync'd-file and
//!   fault-injectable in-memory backends.
//!
//! The engine is deliberately small but real: every SDM metadata path
//! (run registration, offset tracking, import descriptions, index-history
//! lookups) goes through SQL here, as in the paper.

pub mod catalog;
pub mod db;
pub mod error;
pub mod eval;
pub mod exec;
pub mod persist;
pub mod schema;
pub mod sql;
pub mod stmt;
pub mod table;
pub mod undo;
pub mod value;
pub mod wal;

pub use db::{Database, PreparedStatement, ResultSet, TxTicket};
pub use error::{DbError, DbResult};
pub use exec::DbStats;
pub use schema::{ColType, Column, Schema};
pub use stmt::{Relation, Stmt, TypedColumn};
pub use table::IndexDef;
pub use value::{IndexKey, Value};
pub use wal::storage::{FileStorage, MemHandle, MemPersisted, MemStorage, WalFaults, WalStorage};
pub use wal::RecoveryInfo;
