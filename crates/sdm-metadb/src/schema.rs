//! Table schemas.

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Declared column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Double,
    /// Text.
    Text,
}

impl ColType {
    /// Whether `v` may be stored in a column of this type (NULL always
    /// may; Int coerces into Double columns).
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColType::Int, Value::Int(_))
                | (ColType::Double, Value::Double(_))
                | (ColType::Double, Value::Int(_))
                | (ColType::Text, Value::Text(_))
        )
    }

    /// Coerce `v` for storage (Int -> Double in Double columns).
    pub fn coerce(&self, v: Value) -> Value {
        match (self, v) {
            (ColType::Double, Value::Int(i)) => Value::Double(i as f64),
            (_, v) => v,
        }
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-sensitive as written in CREATE TABLE).
    pub name: String,
    /// Declared type.
    pub ctype: ColType,
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Columns in declaration order.
    pub columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; column names must be unique (case-insensitive).
    pub fn new(columns: Vec<Column>) -> DbResult<Self> {
        for (i, c) in columns.iter().enumerate() {
            // analyze:allow(panic-under-guard: `i < columns.len()`, so the slice start is in bounds)
            for d in &columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&d.name) {
                    return Err(DbError::Parse(format!("duplicate column {}", c.name)));
                }
            }
        }
        Ok(Self { columns })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::NoSuchColumn(name.to_string()))
    }

    /// Validate and coerce a full row for insertion.
    pub fn check_row(&self, row: Vec<Value>) -> DbResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(DbError::Arity(format!(
                "expected {} values, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, c)| {
                if c.ctype.admits(&v) {
                    Ok(c.ctype.coerce(v))
                } else {
                    Err(DbError::Type(format!(
                        "column {} ({:?}) cannot store {}",
                        c.name,
                        c.ctype,
                        v.type_name()
                    )))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column {
                name: "id".into(),
                ctype: ColType::Int,
            },
            Column {
                name: "score".into(),
                ctype: ColType::Double,
            },
            Column {
                name: "name".into(),
                ctype: ColType::Text,
            },
        ])
        .unwrap()
    }

    #[test]
    fn index_lookup_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("Name").unwrap(), 2);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn duplicate_columns_rejected() {
        assert!(Schema::new(vec![
            Column {
                name: "a".into(),
                ctype: ColType::Int
            },
            Column {
                name: "A".into(),
                ctype: ColType::Text
            },
        ])
        .is_err());
    }

    #[test]
    fn check_row_coerces_int_to_double() {
        let s = schema();
        let row = s
            .check_row(vec![Value::Int(1), Value::Int(5), Value::from("x")])
            .unwrap();
        assert!(matches!(row[1], Value::Double(d) if d == 5.0));
    }

    #[test]
    fn check_row_rejects_type_mismatch() {
        let s = schema();
        assert!(matches!(
            s.check_row(vec![
                Value::from("oops"),
                Value::Double(0.0),
                Value::from("x")
            ]),
            Err(DbError::Type(_))
        ));
    }

    #[test]
    fn check_row_rejects_wrong_arity() {
        let s = schema();
        assert!(matches!(
            s.check_row(vec![Value::Int(1)]),
            Err(DbError::Arity(_))
        ));
    }

    #[test]
    fn null_admitted_everywhere() {
        let s = schema();
        assert!(s
            .check_row(vec![Value::Null, Value::Null, Value::Null])
            .is_ok());
    }
}
