//! Values and dynamic typing.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed cell value.
///
/// The derived `PartialEq` is exact (bitwise for doubles, NULL == NULL);
/// use [`Value::sql_eq`] for SQL comparison semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (covers the paper's INTEGER columns).
    Int(i64),
    /// 64-bit float (DOUBLE columns).
    Double(f64),
    /// Text (VARCHAR columns: file names, dataset names...).
    Text(String),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Double(_) => "DOUBLE",
            Value::Text(_) => "TEXT",
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promoted to f64), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view, if an Int.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view, if Text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); numerics
    /// compare cross-type; text compares lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality (NULL = anything is unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Canonical hash key under SQL equality: `Int(2)` and `Double(2.0)`
    /// produce the same key (they are `=` in SQL), text keys by content
    /// **without allocating**, and NULL gets a sentinel that equality
    /// lookups never probe (`NULL = NULL` is unknown).
    ///
    /// Numeric keys canonicalize through `f64`:
    ///
    /// * `-0.0` keys identically to `0.0` — they are `=` in SQL, so an
    ///   indexed probe for one must find rows storing the other;
    /// * every NaN bit pattern shares one bucket. NaN rows are therefore
    ///   *indexed*, but an equality probe never returns them: index users
    ///   re-verify candidates against the real predicate, and
    ///   `NaN = NaN` evaluates to unknown under [`Value::sql_cmp`];
    /// * two huge integers (beyond 2^53) that collide after `f64`
    ///   rounding share a bucket — consistent with [`Value::sql_eq`],
    ///   which compares all numerics through `f64`.
    pub fn index_key(&self) -> IndexKey<'_> {
        match self {
            Value::Null => IndexKey::Null,
            Value::Int(i) => IndexKey::num(*i as f64),
            Value::Double(d) => IndexKey::num(*d),
            Value::Text(s) => IndexKey::Text(Cow::Borrowed(s)),
        }
    }

    /// Owned, totally-ordered key — the `BTreeMap` key of the ordered
    /// secondary indexes.
    ///
    /// Shares [`Value::index_key`]'s canonicalization (`-0.0` keys as
    /// `0.0`, all NaN payloads collapse, integers via their `f64`
    /// value), and additionally sorts consistently with
    /// [`Value::sql_cmp`] wherever `sql_cmp` is defined:
    ///
    /// * numerics order by `f64` value via an order-preserving bit
    ///   transform (sign-magnitude flip), so `Int` and `Double` keys
    ///   interleave exactly as `sql_cmp` ranks them;
    /// * text orders lexicographically by bytes, as `sql_cmp` does;
    /// * the pairs `sql_cmp` leaves *undefined* get a fixed arbitrary
    ///   order: `Null < Num < Text`, and the canonical NaN sorts above
    ///   every real number. Range probes stay correct because callers
    ///   re-verify candidates against the real predicate, which
    ///   rejects NULL/NaN/cross-type rows a key range may sweep up.
    pub fn ord_key(&self) -> OrdKey {
        match self {
            Value::Null => OrdKey::Null,
            Value::Int(i) => OrdKey::num(*i as f64),
            Value::Double(d) => OrdKey::num(*d),
            Value::Text(s) => OrdKey::Text(s.clone()),
        }
    }
}

/// An owned key with a total order consistent with [`Value::sql_cmp`]
/// (see [`Value::ord_key`]). `Num` holds canonical `f64` bits passed
/// through an order-preserving transform, so the derived `u64` order
/// *is* numeric order — raw IEEE-754 bits would sort negatives above
/// positives.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OrdKey {
    /// NULL sentinel; sorts before every other key so prefix probes on
    /// composite indexes still see rows whose tail columns are NULL.
    Null,
    /// Order-encoded canonical `f64` bits (sign bit flipped for
    /// non-negatives, all bits flipped for negatives).
    Num(u64),
    /// Text by content, byte-lexicographic.
    Text(String),
}

impl OrdKey {
    /// Canonicalize as [`IndexKey::num`] does, then make the bit
    /// pattern order-preserving: for `a < b` as floats,
    /// `enc(a) < enc(b)` as unsigned integers.
    fn num(d: f64) -> OrdKey {
        let canonical = if d == 0.0 {
            0.0f64
        } else if d.is_nan() {
            f64::NAN
        } else {
            d
        };
        let bits = canonical.to_bits();
        let enc = if bits >> 63 == 1 {
            !bits
        } else {
            bits | (1 << 63)
        };
        OrdKey::Num(enc)
    }

    /// Whether this is the (canonical) NaN key. NaN sorts above every
    /// real number, so MAX peeks on ordered indexes skip it.
    pub fn is_nan(&self) -> bool {
        *self == OrdKey::num(f64::NAN)
    }

    /// The immediate successor in key order. Used to turn an inclusive
    /// composite-prefix upper bound into an exclusive `BTreeMap` range
    /// end. Total: every key has a successor (`Num(u64::MAX)` rolls
    /// into the text class, `Text` appends a NUL byte).
    pub fn successor(&self) -> OrdKey {
        match self {
            OrdKey::Null => OrdKey::Num(0),
            OrdKey::Num(u64::MAX) => OrdKey::Text(String::new()),
            OrdKey::Num(b) => OrdKey::Num(b + 1),
            OrdKey::Text(s) => {
                let mut t = s.clone();
                t.push('\0');
                OrdKey::Text(t)
            }
        }
    }
}

/// A typed hash key under SQL equality — the probe/build key of the
/// secondary index maps, hash joins, GROUP BY, and DISTINCT.
///
/// Borrowed by construction: [`Value::index_key`] hands out a key that
/// references the value's text in place, so probing an index or building
/// a join table formats and allocates nothing per row. Keys stored in
/// maps that outlive the source rows (GROUP BY groups, DISTINCT sets)
/// are detached with [`IndexKey::into_owned`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IndexKey<'a> {
    /// NULL sentinel. Present so group/distinct keys can carry NULLs;
    /// equality probes never look it up.
    Null,
    /// Canonical `f64` bits: `-0.0` normalized to `0.0`, all NaNs
    /// collapsed to one pattern, integers via their `f64` value.
    Num(u64),
    /// Text by content.
    Text(Cow<'a, str>),
}

impl IndexKey<'_> {
    /// Canonical numeric key (see [`Value::index_key`] for the rules).
    fn num(d: f64) -> Self {
        let canonical = if d == 0.0 {
            0.0f64 // collapse -0.0: SQL says -0.0 = 0.0
        } else if d.is_nan() {
            f64::NAN // collapse NaN payloads into one bucket
        } else {
            d
        };
        IndexKey::Num(canonical.to_bits())
    }

    /// Detach from the borrowed value (for keys stored in long-lived
    /// maps).
    pub fn into_owned(self) -> IndexKey<'static> {
        match self {
            IndexKey::Null => IndexKey::Null,
            IndexKey::Num(b) => IndexKey::Num(b),
            IndexKey::Text(s) => IndexKey::Text(Cow::Owned(s.into_owned())),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Double(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_compares_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn text_lexicographic() {
        assert_eq!(
            Value::from("abc").sql_cmp(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("x").sql_eq(&Value::from("x")), Some(true));
    }

    #[test]
    fn text_vs_number_incomparable() {
        assert_eq!(Value::from("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }

    #[test]
    fn index_key_canonicalizes_sql_equal_values() {
        // Int and Double that are SQL-equal share a key.
        assert_eq!(Value::Int(2).index_key(), Value::Double(2.0).index_key());
        // -0.0 = 0.0 in SQL: one bucket, or indexed probes would miss
        // rows a full scan finds.
        assert_eq!(
            Value::Double(-0.0).index_key(),
            Value::Double(0.0).index_key()
        );
        assert_eq!(Value::Int(0).index_key(), Value::Double(-0.0).index_key());
        // All NaN payloads share a bucket (re-verification rejects them).
        let quiet = f64::NAN;
        let payload = f64::from_bits(quiet.to_bits() | 1);
        assert!(payload.is_nan() && payload.to_bits() != quiet.to_bits());
        assert_eq!(
            Value::Double(quiet).index_key(),
            Value::Double(payload).index_key()
        );
        // Text keys borrow; content decides equality.
        assert_eq!(Value::from("ab").index_key(), Value::from("ab").index_key());
        assert_ne!(Value::from("ab").index_key(), Value::from("ba").index_key());
        // Huge integers beyond 2^53 may collide after f64 rounding —
        // consistently with sql_eq, which also compares through f64.
        let (a, b) = (Value::Int(1 << 53), Value::Int((1 << 53) + 1));
        assert_eq!(a.index_key(), b.index_key());
        assert_eq!(a.sql_eq(&b), Some(true));
    }

    #[test]
    fn index_key_owned_equals_borrowed() {
        let v = Value::from("hello");
        let borrowed = v.index_key();
        let owned = v.index_key().into_owned();
        assert_eq!(borrowed, owned);
        use std::collections::HashMap;
        let mut map: HashMap<IndexKey<'static>, i32> = HashMap::new();
        map.insert(owned, 7);
        // Covariance: a map keyed by 'static keys answers borrowed probes.
        let shorter: &HashMap<IndexKey<'_>, i32> = &map;
        assert_eq!(shorter.get(&borrowed), Some(&7));
    }

    #[test]
    fn ord_key_orders_like_sql_cmp() {
        // Every comparable pair orders identically under sql_cmp and
        // ord_key — including negatives, where raw f64 bits would not.
        let vals = [
            Value::Int(i64::MIN),
            Value::Double(-1.0e300),
            Value::Int(-2),
            Value::Double(-1.5),
            Value::Double(-0.0),
            Value::Int(0),
            Value::Double(0.25),
            Value::Int(1),
            Value::Double(1.0),
            Value::Int(1 << 53),
            Value::Double(f64::INFINITY),
            Value::from(""),
            Value::from("a"),
            Value::from("ab"),
        ];
        for a in &vals {
            for b in &vals {
                if let Some(o) = a.sql_cmp(b) {
                    assert_eq!(
                        a.ord_key().cmp(&b.ord_key()),
                        o,
                        "ord_key disagrees with sql_cmp for {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ord_key_canonicalizes_like_index_key() {
        assert_eq!(Value::Int(2).ord_key(), Value::Double(2.0).ord_key());
        assert_eq!(Value::Double(-0.0).ord_key(), Value::Double(0.0).ord_key());
        let payload = f64::from_bits(f64::NAN.to_bits() | 1);
        assert_eq!(
            Value::Double(payload).ord_key(),
            Value::Double(f64::NAN).ord_key()
        );
        assert!(Value::Double(payload).ord_key().is_nan());
        assert!(!Value::Int(7).ord_key().is_nan());
    }

    #[test]
    fn ord_key_classes_and_nan_placement() {
        // Fixed arbitrary order for pairs sql_cmp leaves undefined:
        // Null < every number < every text, NaN above every real.
        assert!(OrdKey::Null < Value::Int(i64::MIN).ord_key());
        assert!(Value::Double(f64::INFINITY).ord_key() < Value::from("").ord_key());
        assert!(Value::Double(f64::INFINITY).ord_key() < Value::Double(f64::NAN).ord_key());
        assert!(Value::Double(f64::NAN).ord_key() < Value::from("").ord_key());
    }

    #[test]
    fn ord_key_successor_is_immediate() {
        // successor(k) > k, and nothing representable sits between for
        // the numeric class (bit increment) — spot-check adjacency.
        for v in [
            Value::Int(3),
            Value::Double(-2.5),
            Value::Double(0.0),
            Value::from(""),
            Value::from("run"),
        ] {
            let k = v.ord_key();
            assert!(k.successor() > k, "successor not greater for {v:?}");
        }
        assert_eq!(
            OrdKey::Num(u64::MAX).successor(),
            OrdKey::Text(String::new())
        );
        assert_eq!(OrdKey::Null.successor(), OrdKey::Num(0));
        // Text successor appends NUL: nothing orders strictly between.
        assert!(OrdKey::Text("a".into()) < OrdKey::Text("a\0".into()));
        assert!(OrdKey::Text("a\0".into()) < OrdKey::Text("aa".into()));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5usize).as_i64(), Some(5));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("t").as_str(), Some("t"));
        assert!(Value::Null.is_null());
    }
}
