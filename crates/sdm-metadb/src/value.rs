//! Values and dynamic typing.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed cell value.
///
/// The derived `PartialEq` is exact (bitwise for doubles, NULL == NULL);
/// use [`Value::sql_eq`] for SQL comparison semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer (covers the paper's INTEGER columns).
    Int(i64),
    /// 64-bit float (DOUBLE columns).
    Double(f64),
    /// Text (VARCHAR columns: file names, dataset names...).
    Text(String),
}

impl Value {
    /// Type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "NULL",
            Value::Int(_) => "INT",
            Value::Double(_) => "DOUBLE",
            Value::Text(_) => "TEXT",
        }
    }

    /// Whether this is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int promoted to f64), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view, if an Int.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view, if Text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL comparison: NULL compares as unknown (`None`); numerics
    /// compare cross-type; text compares lexicographically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality (NULL = anything is unknown).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Canonical hash key under SQL equality: `Int(2)` and `Double(2.0)`
    /// produce the same key (they are `=` in SQL), text keys by content,
    /// and NULL gets a sentinel that equality lookups never probe
    /// (`NULL = NULL` is unknown). Numeric keys go through `f64`, so two
    /// huge integers that collide after rounding may share a bucket —
    /// index users must re-verify candidates against the real predicate.
    pub fn index_key(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Int(i) => format!("n:{:016x}", (*i as f64).to_bits()),
            Value::Double(d) => format!("n:{:016x}", d.to_bits()),
            Value::Text(s) => format!("t:{s}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_numeric_compare() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Double(1.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_compares_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn text_lexicographic() {
        assert_eq!(
            Value::from("abc").sql_cmp(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("x").sql_eq(&Value::from("x")), Some(true));
    }

    #[test]
    fn text_vs_number_incomparable() {
        assert_eq!(Value::from("1").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::from("hi").to_string(), "hi");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5usize).as_i64(), Some(5));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from("t").as_str(), Some("t"));
        assert!(Value::Null.is_null());
    }
}
