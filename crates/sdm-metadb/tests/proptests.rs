//! Property tests: INSERT/SELECT round-trips for arbitrary values;
//! WHERE filters match an in-memory reference; ORDER BY sorts stably.

use proptest::prelude::*;
use sdm_metadb::{Database, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e9f64..1e9).prop_map(Value::Double),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(Value::Text),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn insert_select_round_trip(rows in proptest::collection::vec((any::<i64>(), value_strategy()), 1..30)) {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT, v TEXT)", &[]).unwrap();
        // v column is TEXT: coerce non-text to NULL-safe text form first.
        let mut expected = Vec::new();
        for (i, (k, v)) in rows.iter().enumerate() {
            let tv = match v {
                Value::Text(s) => Value::Text(s.clone()),
                _ => Value::Null,
            };
            db.exec("INSERT INTO t VALUES (?, ?)", &[Value::Int(*k ^ i as i64), tv.clone()]).unwrap();
            expected.push((k ^ i as i64, tv));
        }
        let rs = db.exec("SELECT k, v FROM t", &[]).unwrap();
        prop_assert_eq!(rs.len(), expected.len());
        for (row, (k, v)) in rs.rows.iter().zip(&expected) {
            prop_assert_eq!(row[0].as_i64(), Some(*k));
            prop_assert_eq!(&row[1], v);
        }
    }

    #[test]
    fn where_filter_matches_reference(keys in proptest::collection::vec(-50i64..50, 1..40), bound in -50i64..50) {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for k in &keys {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let rs = db.exec("SELECT k FROM t WHERE k >= ?", &[Value::Int(bound)]).unwrap();
        let want: Vec<i64> = keys.iter().copied().filter(|&k| k >= bound).collect();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        prop_assert_eq!(got, want, "insertion order preserved under filter");
    }

    #[test]
    fn order_by_sorts(keys in proptest::collection::vec(-1000i64..1000, 1..40)) {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for k in &keys {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let rs = db.exec("SELECT k FROM t ORDER BY k", &[]).unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want = keys.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // DESC is the reverse.
        let rs = db.exec("SELECT k FROM t ORDER BY k DESC", &[]).unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want_desc = keys.clone();
        want_desc.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, want_desc);
    }

    #[test]
    fn update_delete_counts_match(keys in proptest::collection::vec(0i64..100, 1..40), pivot in 0i64..100) {
        let db = Database::new();
        db.exec("CREATE TABLE t (k INT)", &[]).unwrap();
        for k in &keys {
            db.exec("INSERT INTO t VALUES (?)", &[Value::Int(*k)]).unwrap();
        }
        let below = keys.iter().filter(|&&k| k < pivot).count();
        let rs = db.exec("UPDATE t SET k = k + 1000 WHERE k < ?", &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(rs.affected, below);
        let rs = db.exec("DELETE FROM t WHERE k >= 1000", &[]).unwrap();
        prop_assert_eq!(rs.affected, below);
        let rs = db.exec("SELECT k FROM t", &[]).unwrap();
        prop_assert_eq!(rs.len(), keys.len() - below);
    }
}
