//! Threaded transaction stress: N reader threads run indexed SELECTs
//! under the shared catalog lock while one writer repeatedly opens a
//! transaction, mutates rows (insert + update + delete), and rolls it
//! back. The readers must never observe a torn row (a row whose cells
//! disagree with each other), and after every rollback the table must be
//! byte-identical to its pre-transaction state — with the undo counter
//! witnessing O(rows touched) work, not O(table).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use sdm_metadb::{Database, Value};

const SEED_ROWS: i64 = 200;
const WRITER_TXS: u64 = 25;
/// Rows touched per transaction: 3 inserts + 1 update + 1 delete.
const TOUCHED_PER_TX: u64 = 5;

fn seed(db: &Database) {
    db.exec("CREATE TABLE t (k INT, v TEXT)", &[]).unwrap();
    for k in 0..SEED_ROWS {
        db.exec(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(k), Value::from(format!("base-{k}"))],
        )
        .unwrap();
    }
    db.exec("CREATE INDEX tk ON t (k)", &[]).unwrap();
}

/// Full ordered image of the table (k then v, ordered by k).
fn snapshot(db: &Database) -> Vec<Vec<Value>> {
    db.exec("SELECT k, v FROM t ORDER BY k", &[]).unwrap().rows
}

#[test]
fn rollback_under_concurrent_readers_restores_exact_rows() {
    let db = Arc::new(Database::new());
    seed(&db);
    let before = snapshot(&db);
    assert_eq!(before.len(), SEED_ROWS as usize);

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        // Readers: indexed point probes; every returned row must be
        // internally consistent — its v is exactly one of the values
        // ever written for its k ("base-{k}" from the seed, "tx-{k}"
        // from an in-flight transaction), never a mix of two rows.
        let mut readers = Vec::new();
        for r in 0..4 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            readers.push(s.spawn(move || {
                let mut i: i64 = r;
                while !stop.load(Ordering::Relaxed) {
                    let k = i % SEED_ROWS;
                    let rs = db
                        .exec("SELECT k, v FROM t WHERE k = ?", &[Value::Int(k)])
                        .unwrap();
                    for row in &rs.rows {
                        let got_k = row[0].as_i64().expect("k is INT");
                        let v = row[1].as_str().expect("v is TEXT").to_string();
                        assert!(
                            v == format!("base-{got_k}") || v == format!("tx-{got_k}"),
                            "torn read: k={got_k} paired with v={v:?}"
                        );
                    }
                    reads.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            }));
        }

        // Writer: every transaction touches exactly TOUCHED_PER_TX rows
        // of the 200-row table, then rolls back. Readers may see the
        // uncommitted state mid-flight (table-lock semantics, as in the
        // paper's MySQL 3.23) but never a torn row, and each rollback
        // must restore the exact pre-transaction image.
        for tx in 0..WRITER_TXS {
            let k = (tx as i64 * 7) % SEED_ROWS;
            db.exec("BEGIN", &[]).unwrap();
            for j in 0..3 {
                let nk = SEED_ROWS + tx as i64 * 3 + j;
                db.exec(
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(nk), Value::from(format!("tx-{nk}"))],
                )
                .unwrap();
            }
            db.exec(
                "UPDATE t SET v = ? WHERE k = ?",
                &[Value::from(format!("tx-{k}")), Value::Int(k)],
            )
            .unwrap();
            db.exec(
                "DELETE FROM t WHERE k = ?",
                &[Value::Int((k + 1) % SEED_ROWS)],
            )
            .unwrap();
            db.exec("ROLLBACK", &[]).unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    });

    // Byte-identical restoration.
    assert_eq!(snapshot(&db), before, "rollback must restore exact rows");
    // O(touched) undo: 25 transactions × 5 rows, although the table
    // held 200 rows throughout.
    assert_eq!(
        db.stats().tx_rows_undone,
        WRITER_TXS * TOUCHED_PER_TX,
        "undo work must track rows touched, not table size"
    );
    assert!(
        reads.load(Ordering::Relaxed) > 0,
        "readers made progress during the writer's transactions"
    );
}

#[test]
fn foreign_writers_wait_but_readers_overlap_an_open_tx() {
    // One transaction holds the slot; readers on other threads complete
    // while it is open (shared catalog lock), and a foreign writer
    // blocks until rollback, surviving with its own row intact.
    let db = Arc::new(Database::new());
    seed(&db);
    db.exec("BEGIN", &[]).unwrap();
    db.exec("UPDATE t SET v = 'tx-0' WHERE k = 0", &[]).unwrap();

    let reader = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            db.exec("SELECT COUNT(*) FROM t", &[])
                .unwrap()
                .scalar()
                .and_then(Value::as_i64)
                .unwrap()
        })
    };
    assert_eq!(
        reader.join().unwrap(),
        SEED_ROWS,
        "reads proceed during an open foreign transaction"
    );

    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            db.exec(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(9000), Value::from("base-9000")],
            )
            .unwrap();
        })
    };
    std::thread::sleep(std::time::Duration::from_millis(30));
    db.exec("ROLLBACK", &[]).unwrap();
    writer.join().unwrap();
    // The foreign write survived the rollback; the tx's update did not.
    let rs = db.exec("SELECT v FROM t WHERE k = 0", &[]).unwrap();
    assert_eq!(rs.scalar().and_then(Value::as_str), Some("base-0"));
    let rs = db.exec("SELECT v FROM t WHERE k = 9000", &[]).unwrap();
    assert_eq!(rs.scalar().and_then(Value::as_str), Some("base-9000"));
}
