//! Property tests for the prepared-statement path and the index
//! planner: for generated data and query shapes,
//! `exec(sql, params)` and `prepare(sql).execute(params)` must return
//! identical result sets, and a query against an indexed table must
//! agree row-for-row with the same query scanning an unindexed copy.

use proptest::prelude::*;
use sdm_metadb::{Database, Value};

/// Build twin tables with identical rows: `ti` carries hash indexes on
/// both columns plus ordered indexes (a `(k, v)` composite and a
/// single-column `v`) so every planner shape — point probe, range walk,
/// prefix walk, ordered stream — competes against `tn`'s scans.
fn twin_db(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.exec("CREATE TABLE ti (k INT, v INT)", &[]).unwrap();
    db.exec("CREATE TABLE tn (k INT, v INT)", &[]).unwrap();
    for &(k, v) in rows {
        db.exec(
            "INSERT INTO ti VALUES (?, ?)",
            &[Value::Int(k), Value::Int(v)],
        )
        .unwrap();
        db.exec(
            "INSERT INTO tn VALUES (?, ?)",
            &[Value::Int(k), Value::Int(v)],
        )
        .unwrap();
    }
    db.exec("CREATE INDEX ti_k ON ti (k)", &[]).unwrap();
    db.exec("CREATE INDEX ti_v ON ti (v)", &[]).unwrap();
    db.exec("CREATE ORDERED INDEX ti_kv ON ti (k, v)", &[])
        .unwrap();
    db.exec("CREATE ORDERED INDEX ti_vo ON ti (v)", &[])
        .unwrap();
    db
}

/// Query templates over a table `{T}`; every `?` consumes one of the
/// two generated probe parameters. The back half exercises the range
/// planner: half-open and closed windows, equality-prefix + range-tail
/// composite probes, and index-streamable ORDER BY/LIMIT shapes whose
/// row *order* must match the scanned twin's sort exactly.
const TEMPLATES: [(&str, usize); 14] = [
    ("SELECT k, v FROM {T} WHERE k = ?", 1),
    ("SELECT v FROM {T} WHERE k = ? AND v >= ?", 2),
    ("SELECT k FROM {T} WHERE k = ? OR v = ?", 2),
    ("SELECT COUNT(*), MIN(v), MAX(v) FROM {T} WHERE k = ?", 1),
    ("SELECT COUNT(k), SUM(v) FROM {T} WHERE k > ?", 1),
    ("SELECT k FROM {T} WHERE v = ? ORDER BY k DESC LIMIT 3", 1),
    ("SELECT DISTINCT k FROM {T} WHERE v >= ? ORDER BY k", 1),
    (
        "SELECT k, COUNT(*) AS n FROM {T} WHERE v = ? GROUP BY k ORDER BY k",
        1,
    ),
    (
        "SELECT k, v FROM {T} WHERE k >= ? AND k <= ? ORDER BY k, v",
        2,
    ),
    ("SELECT k, v FROM {T} WHERE k = ? AND v > ?", 2),
    ("SELECT v FROM {T} WHERE v < ? ORDER BY v", 1),
    (
        "SELECT k, v FROM {T} WHERE k = ? ORDER BY v DESC LIMIT 2",
        1,
    ),
    ("SELECT MIN(v), MAX(v) FROM {T} WHERE k = ?", 1),
    ("SELECT k, v FROM {T} WHERE k < ? AND v >= ? AND v <= ?", 3),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exec_prepared_and_indexed_paths_agree(
        rows in proptest::collection::vec((0i64..12, -4i64..4), 0..60),
        template in 0usize..14,
        p1 in 0i64..12,
        p2 in -4i64..4,
        p3 in -4i64..4,
    ) {
        let db = twin_db(&rows);
        let (shape, arity) = TEMPLATES[template];
        let params: Vec<Value> =
            [Value::Int(p1), Value::Int(p2), Value::Int(p3)][..arity].to_vec();

        let sql_indexed = shape.replace("{T}", "ti");
        let sql_scan = shape.replace("{T}", "tn");

        // exec vs prepared on the indexed table.
        let via_exec = db.exec(&sql_indexed, &params).unwrap();
        let ps = db.prepare(&sql_indexed).unwrap();
        let via_prepared = ps.execute(&db, &params).unwrap();
        prop_assert_eq!(&via_exec, &via_prepared, "exec != prepared for {}", sql_indexed);
        // Preparing again and re-executing stays stable.
        let again = db.prepare(&sql_indexed).unwrap().execute(&db, &params).unwrap();
        prop_assert_eq!(&via_exec, &again);

        // Indexed vs unindexed execution returns identical rows.
        let via_scan = db.exec(&sql_scan, &params).unwrap();
        prop_assert_eq!(
            &via_exec.rows, &via_scan.rows,
            "indexed and scanned rows differ for {}", shape
        );

        // Same statement texts never re-parse.
        db.reset_stats();
        db.exec(&sql_indexed, &params).unwrap();
        db.exec(&sql_scan, &params).unwrap();
        let stats = db.stats();
        prop_assert_eq!(stats.parse_misses, 0, "warm statements re-parsed");
    }

    #[test]
    fn mutations_keep_twin_tables_and_paths_consistent(
        rows in proptest::collection::vec((0i64..8, 0i64..8), 1..40),
        pivot in 0i64..8,
    ) {
        let db = twin_db(&rows);
        // Mutate both tables identically through prepared statements.
        let up_i = db.prepare("UPDATE ti SET v = v + 100 WHERE k = ?").unwrap();
        let up_n = db.prepare("UPDATE tn SET v = v + 100 WHERE k = ?").unwrap();
        let a = up_i.execute(&db, &[Value::Int(pivot)]).unwrap();
        let b = up_n.execute(&db, &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        let del_i = db.prepare("DELETE FROM ti WHERE v >= 100 AND k = ?").unwrap();
        let del_n = db.prepare("DELETE FROM tn WHERE v >= 100 AND k = ?").unwrap();
        let a = del_i.execute(&db, &[Value::Int(pivot)]).unwrap();
        let b = del_n.execute(&db, &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        // After updates + deletes, the indexed table still answers
        // probes identically to the scan table.
        let qi = db.exec("SELECT k, v FROM ti WHERE k = ?", &[Value::Int(pivot)]).unwrap();
        let qn = db.exec("SELECT k, v FROM tn WHERE k = ?", &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(qi.rows, qn.rows);
    }
}

// ---------------------------------------------------------------------
// Key-encoding edge cases
// ---------------------------------------------------------------------

/// Integer cells that stress the index-key encoding: NULLs, huge
/// magnitudes beyond 2^53 (whose `f64` roundings collide), and a small
/// dense range for plentiful matches.
fn edge_int() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Int(1 << 53)),
        Just(Value::Int((1 << 53) + 1)),
        Just(Value::Int(i64::MAX)),
        Just(Value::Int(i64::MIN)),
        (-3i64..4).prop_map(Value::Int),
    ]
}

/// Double cells stressing the encoding: NULLs and both zero signs.
fn edge_double() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        Just(Value::Double(0.0)),
        Just(Value::Double(-0.0)),
        Just(Value::Double(1.5)),
        Just(Value::Double(-1.5)),
        (-2i64..3).prop_map(|i| Value::Double(i as f64 * 0.25)),
    ]
}

/// Twin tables `(i INT, d DOUBLE)` with identical NULL-heavy edge-case
/// rows; `ei` indexes both columns, `en` has no indexes.
fn edge_twin_db(rows: &[(Value, Value)]) -> Database {
    let db = Database::new();
    db.exec("CREATE TABLE ei (i INT, d DOUBLE)", &[]).unwrap();
    db.exec("CREATE TABLE en (i INT, d DOUBLE)", &[]).unwrap();
    for (i, d) in rows {
        let params = [i.clone(), d.clone()];
        db.exec("INSERT INTO ei VALUES (?, ?)", &params).unwrap();
        db.exec("INSERT INTO en VALUES (?, ?)", &params).unwrap();
    }
    db.exec("CREATE INDEX ei_i ON ei (i)", &[]).unwrap();
    db.exec("CREATE INDEX ei_d ON ei (d)", &[]).unwrap();
    db.exec("CREATE ORDERED INDEX ei_id ON ei (i, d)", &[])
        .unwrap();
    db.exec("CREATE ORDERED INDEX ei_do ON ei (d)", &[])
        .unwrap();
    db
}

/// Edge-case templates; every `?` consumes one generated probe value.
/// The range shapes aim signed-zero, NULL, and beyond-2^53 values at
/// the ordered indexes' key-encoding boundaries — including NULL range
/// bounds (match nothing) and ±0.0 at a range endpoint (one key).
const EDGE_TEMPLATES: [&str; 10] = [
    "SELECT i, d FROM {T} WHERE i = ?",
    "SELECT i, d FROM {T} WHERE d = ?",
    "SELECT COUNT(*) FROM {T} WHERE i = ?",
    "SELECT COUNT(*), MIN(d), MAX(d) FROM {T} WHERE d = ?",
    "SELECT i FROM {T} WHERE d = ? AND i IS NOT NULL",
    "SELECT d FROM {T} WHERE i = ? OR d = ?",
    "SELECT i, d FROM {T} WHERE d >= ? AND d <= ?",
    "SELECT i, d FROM {T} WHERE i = ? AND d < ?",
    "SELECT d FROM {T} WHERE d > ? ORDER BY d LIMIT 4",
    "SELECT i, d FROM {T} WHERE i >= ?",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Indexed and unindexed plans must agree on SQL equality for the
    /// key-encoding edge cases: `-0.0` vs `0.0` (one bucket — an
    /// indexed probe for either finds both), integers beyond 2^53
    /// (bucket collisions re-verified by the predicate), and NULL-heavy
    /// columns (matched by neither `=` nor a range bound).
    #[test]
    fn key_encoding_edges_agree_between_indexed_and_scan(
        rows in proptest::collection::vec((edge_int(), edge_double()), 0..50),
        template in 0usize..10,
        p1 in prop_oneof![edge_int(), edge_double()],
        p2 in prop_oneof![edge_int(), edge_double()],
    ) {
        let db = edge_twin_db(&rows);
        let shape = EDGE_TEMPLATES[template];
        let arity = shape.matches('?').count();
        let params: Vec<Value> = [p1, p2][..arity].to_vec();

        let sql_indexed = shape.replace("{T}", "ei");
        let sql_scan = shape.replace("{T}", "en");

        let via_exec = db.exec(&sql_indexed, &params).unwrap();
        let via_prepared = db
            .prepare(&sql_indexed)
            .unwrap()
            .execute(&db, &params)
            .unwrap();
        prop_assert_eq!(&via_exec, &via_prepared, "exec != prepared for {}", sql_indexed);

        let via_scan = db.exec(&sql_scan, &params).unwrap();
        prop_assert_eq!(
            &via_exec.rows, &via_scan.rows,
            "indexed and scanned rows differ for {} with {:?}", shape, params
        );
    }

    /// A `-0.0` probe against a table holding `0.0` rows (and vice
    /// versa) hits through the index exactly as a full scan does.
    #[test]
    fn negative_zero_probes_match_scan(
        zeros in proptest::collection::vec(
            prop_oneof![Just(Value::Double(0.0)), Just(Value::Double(-0.0)), Just(Value::Null)],
            1..30,
        ),
        probe in prop_oneof![
            Just(Value::Double(0.0)),
            Just(Value::Double(-0.0)),
            Just(Value::Int(0)),
        ],
    ) {
        let rows: Vec<(Value, Value)> =
            zeros.into_iter().map(|d| (Value::Int(0), d)).collect();
        let db = edge_twin_db(&rows);
        let expected = rows_stored_nonnull(&rows);
        let via_index = db
            .exec("SELECT d FROM ei WHERE d = ?", std::slice::from_ref(&probe))
            .unwrap();
        let via_scan = db.exec("SELECT d FROM en WHERE d = ?", &[probe]).unwrap();
        prop_assert_eq!(&via_index.rows, &via_scan.rows);
        prop_assert_eq!(via_index.rows.len(), expected, "every ±0.0 row must be found");
    }
}

/// How many of the generated rows hold a non-NULL double (those must
/// all match a ±0.0 probe).
fn rows_stored_nonnull(rows: &[(Value, Value)]) -> usize {
    rows.iter().filter(|(_, d)| !d.is_null()).count()
}
