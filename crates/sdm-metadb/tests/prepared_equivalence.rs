//! Property tests for the prepared-statement path and the index
//! planner: for generated data and query shapes,
//! `exec(sql, params)` and `prepare(sql).execute(params)` must return
//! identical result sets, and a query against an indexed table must
//! agree row-for-row with the same query scanning an unindexed copy.

use proptest::prelude::*;
use sdm_metadb::{Database, Value};

/// Build twin tables with identical rows: `ti` carries secondary
/// indexes on both columns, `tn` has none.
fn twin_db(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.exec("CREATE TABLE ti (k INT, v INT)", &[]).unwrap();
    db.exec("CREATE TABLE tn (k INT, v INT)", &[]).unwrap();
    for &(k, v) in rows {
        db.exec(
            "INSERT INTO ti VALUES (?, ?)",
            &[Value::Int(k), Value::Int(v)],
        )
        .unwrap();
        db.exec(
            "INSERT INTO tn VALUES (?, ?)",
            &[Value::Int(k), Value::Int(v)],
        )
        .unwrap();
    }
    db.exec("CREATE INDEX ti_k ON ti (k)", &[]).unwrap();
    db.exec("CREATE INDEX ti_v ON ti (v)", &[]).unwrap();
    db
}

/// Query templates over a table `{T}`; every `?` consumes one of the
/// two generated probe parameters.
const TEMPLATES: [(&str, usize); 8] = [
    ("SELECT k, v FROM {T} WHERE k = ?", 1),
    ("SELECT v FROM {T} WHERE k = ? AND v >= ?", 2),
    ("SELECT k FROM {T} WHERE k = ? OR v = ?", 2),
    ("SELECT COUNT(*), MIN(v), MAX(v) FROM {T} WHERE k = ?", 1),
    ("SELECT COUNT(k), SUM(v) FROM {T} WHERE k > ?", 1),
    ("SELECT k FROM {T} WHERE v = ? ORDER BY k DESC LIMIT 3", 1),
    ("SELECT DISTINCT k FROM {T} WHERE v >= ? ORDER BY k", 1),
    (
        "SELECT k, COUNT(*) AS n FROM {T} WHERE v = ? GROUP BY k ORDER BY k",
        1,
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exec_prepared_and_indexed_paths_agree(
        rows in proptest::collection::vec((0i64..12, -4i64..4), 0..60),
        template in 0usize..8,
        p1 in 0i64..12,
        p2 in -4i64..4,
    ) {
        let db = twin_db(&rows);
        let (shape, arity) = TEMPLATES[template];
        let params: Vec<Value> = [Value::Int(p1), Value::Int(p2)][..arity].to_vec();

        let sql_indexed = shape.replace("{T}", "ti");
        let sql_scan = shape.replace("{T}", "tn");

        // exec vs prepared on the indexed table.
        let via_exec = db.exec(&sql_indexed, &params).unwrap();
        let ps = db.prepare(&sql_indexed).unwrap();
        let via_prepared = ps.execute(&db, &params).unwrap();
        prop_assert_eq!(&via_exec, &via_prepared, "exec != prepared for {}", sql_indexed);
        // Preparing again and re-executing stays stable.
        let again = db.prepare(&sql_indexed).unwrap().execute(&db, &params).unwrap();
        prop_assert_eq!(&via_exec, &again);

        // Indexed vs unindexed execution returns identical rows.
        let via_scan = db.exec(&sql_scan, &params).unwrap();
        prop_assert_eq!(
            &via_exec.rows, &via_scan.rows,
            "indexed and scanned rows differ for {}", shape
        );

        // Same statement texts never re-parse.
        db.reset_stats();
        db.exec(&sql_indexed, &params).unwrap();
        db.exec(&sql_scan, &params).unwrap();
        let stats = db.stats();
        prop_assert_eq!(stats.parse_misses, 0, "warm statements re-parsed");
    }

    #[test]
    fn mutations_keep_twin_tables_and_paths_consistent(
        rows in proptest::collection::vec((0i64..8, 0i64..8), 1..40),
        pivot in 0i64..8,
    ) {
        let db = twin_db(&rows);
        // Mutate both tables identically through prepared statements.
        let up_i = db.prepare("UPDATE ti SET v = v + 100 WHERE k = ?").unwrap();
        let up_n = db.prepare("UPDATE tn SET v = v + 100 WHERE k = ?").unwrap();
        let a = up_i.execute(&db, &[Value::Int(pivot)]).unwrap();
        let b = up_n.execute(&db, &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        let del_i = db.prepare("DELETE FROM ti WHERE v >= 100 AND k = ?").unwrap();
        let del_n = db.prepare("DELETE FROM tn WHERE v >= 100 AND k = ?").unwrap();
        let a = del_i.execute(&db, &[Value::Int(pivot)]).unwrap();
        let b = del_n.execute(&db, &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        // After updates + deletes, the indexed table still answers
        // probes identically to the scan table.
        let qi = db.exec("SELECT k, v FROM ti WHERE k = ?", &[Value::Int(pivot)]).unwrap();
        let qn = db.exec("SELECT k, v FROM tn WHERE k = ?", &[Value::Int(pivot)]).unwrap();
        prop_assert_eq!(qi.rows, qn.rows);
    }
}
