//! Property tests for the compiled expression path and the join
//! planner:
//!
//! * random expression trees over adversarial values (NULL, NaN,
//!   signed zero, integers beyond 2^53, `i64::MIN`) must evaluate
//!   identically through the compiled instruction-list program and the
//!   AST walker — same value bits, same truthiness, same errors;
//! * the three join strategies (merge over two ordered indexes,
//!   index-nested-loop probes, hash fallback) must return identical
//!   result sets in identical order for the same data.
//!
//! The AST walker (`eval_ast`) is called here on purpose: it is the
//! equivalence oracle the compiled path is checked against.

use proptest::prelude::*;
use sdm_metadb::eval::{compile, eval_ast, truthy};
use sdm_metadb::sql::ast::{BinOp, Expr};
use sdm_metadb::{ColType, Column, Database, DbResult, Schema, Value};

// ------------------------------------------------------------ expressions

/// Adversarial literal pool: every value class the compiler's constant
/// interning, NULL propagation, and numeric promotion must preserve.
fn lit_pool() -> Vec<Value> {
    vec![
        Value::Null,
        Value::Int(0),
        Value::Int(1),
        Value::Int(-1),
        Value::Int(i64::MIN),
        Value::Int(i64::MAX),
        Value::Int(1 << 53),
        Value::Int((1 << 53) + 1),
        Value::Double(0.0),
        Value::Double(-0.0),
        Value::Double(f64::NAN),
        Value::Double(f64::INFINITY),
        Value::Double(-1.5),
        Value::Double(9_007_199_254_740_993.0),
        Value::Text(String::new()),
        Value::Text("a".into()),
    ]
}

const BINOPS: [BinOp; 12] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
    BinOp::And,
    BinOp::Or,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
];

/// Deterministically grow an expression tree from a byte seed: each
/// byte picks leaf-vs-node and the node kind, so proptest's raw bytes
/// become structurally diverse trees without a recursive strategy.
fn build_expr(seed: &mut std::slice::Iter<'_, u8>, depth: u32, pool: &[Value]) -> Expr {
    let b = *seed.next().unwrap_or(&0) as usize;
    if depth == 0 || b < 72 {
        return match b % 3 {
            0 => Expr::Lit(pool[b % pool.len()].clone()),
            1 => Expr::Col(format!("c{}", b % 4)),
            _ => Expr::Param(b % 2),
        };
    }
    match b % 15 {
        k @ 0..=11 => Expr::Binary {
            op: BINOPS[k],
            lhs: Box::new(build_expr(seed, depth - 1, pool)),
            rhs: Box::new(build_expr(seed, depth - 1, pool)),
        },
        12 => Expr::Not(Box::new(build_expr(seed, depth - 1, pool))),
        13 => Expr::Neg(Box::new(build_expr(seed, depth - 1, pool))),
        _ => Expr::IsNull {
            expr: Box::new(build_expr(seed, depth - 1, pool)),
            negated: b % 2 == 1,
        },
    }
}

fn test_schema() -> Schema {
    Schema::new(vec![
        Column {
            name: "c0".into(),
            ctype: ColType::Int,
        },
        Column {
            name: "c1".into(),
            ctype: ColType::Double,
        },
        Column {
            name: "c2".into(),
            ctype: ColType::Text,
        },
        Column {
            name: "c3".into(),
            ctype: ColType::Int,
        },
    ])
    .unwrap()
}

/// Bit-exact value equality: NaN equals NaN, `-0.0` differs from
/// `0.0`. Plain `PartialEq` would miss both.
fn same_value(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Double(x), Value::Double(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

fn same_result<T, F: Fn(&T, &T) -> bool>(
    a: &DbResult<T>,
    b: &DbResult<T>,
    eq: F,
) -> Result<(), String>
where
    T: std::fmt::Debug,
{
    match (a, b) {
        (Ok(x), Ok(y)) if eq(x, y) => Ok(()),
        (Err(x), Err(y)) if format!("{x:?}") == format!("{y:?}") => Ok(()),
        _ => Err(format!("compiled {a:?} != ast {b:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tentpole invariant: for any expression the compiler accepts,
    /// the instruction-list program and the AST walk agree on the exact
    /// value (bit-for-bit), the SQL truthiness, and any error — over
    /// rows drawn from the same adversarial pool.
    #[test]
    fn compiled_program_matches_ast_walk(
        seed in proptest::collection::vec(0u8..255, 1..48),
        row_picks in proptest::collection::vec(0usize..16, 4),
        param_picks in proptest::collection::vec(0usize..16, 2),
    ) {
        let pool = lit_pool();
        let schema = test_schema();
        let expr = build_expr(&mut seed.iter(), 5, &pool);
        let row: Vec<Value> = row_picks.iter().map(|&i| pool[i].clone()).collect();
        let params: Vec<Value> = param_picks.iter().map(|&i| pool[i].clone()).collect();

        // Compilation may decline (register-depth cap); the executor
        // then walks the AST for every row, so there is nothing to
        // compare — but with depth 5 it must not decline.
        let prog = compile(&expr, &schema);
        prop_assert!(prog.is_some(), "depth-5 tree failed to compile: {expr:?}");
        let prog = prog.unwrap();

        let compiled_v = prog.eval_value(&row, &params);
        let ast_v = eval_ast(&expr, &schema, &row, &params);
        if let Err(m) = same_result(&compiled_v, &ast_v, same_value) {
            prop_assert!(false, "value mismatch for {expr:?}: {m}");
        }

        let compiled_t = prog.eval_truthy(&row, &params);
        let ast_t = eval_ast(&expr, &schema, &row, &params).map(|v| truthy(&v));
        if let Err(m) = same_result(&compiled_t, &ast_t, |a, b| a == b) {
            prop_assert!(false, "truthiness mismatch for {expr:?}: {m}");
        }
    }
}

// ------------------------------------------------------------------ joins

/// Three databases with identical data whose index layouts force the
/// three join strategies: both sides runid-led ordered (merge), inner
/// side only (index-nested-loop), no useful index (hash fallback).
fn join_dbs(rows_l: &[(Option<i64>, i64)], rows_r: &[(Option<i64>, i64)]) -> [Database; 3] {
    let dbs = [Database::new(), Database::new(), Database::new()];
    for db in &dbs {
        db.exec("CREATE TABLE l (k INT, v INT)", &[]).unwrap();
        db.exec("CREATE TABLE r (k INT, w INT)", &[]).unwrap();
        for &(k, v) in rows_l {
            let kv = k.map_or(Value::Null, Value::Int);
            db.exec("INSERT INTO l VALUES (?, ?)", &[kv, Value::Int(v)])
                .unwrap();
        }
        for &(k, w) in rows_r {
            let kv = k.map_or(Value::Null, Value::Int);
            db.exec("INSERT INTO r VALUES (?, ?)", &[kv, Value::Int(w)])
                .unwrap();
        }
    }
    // Merge: both sides ordered on the join key.
    dbs[0]
        .exec("CREATE ORDERED INDEX l_k ON l (k)", &[])
        .unwrap();
    dbs[0]
        .exec("CREATE ORDERED INDEX r_k ON r (k)", &[])
        .unwrap();
    // INL: only the inner (right) side is indexed.
    dbs[1]
        .exec("CREATE ORDERED INDEX r_k ON r (k, w)", &[])
        .unwrap();
    dbs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge, index-nested-loop, and hash joins must be observationally
    /// identical: same columns, same rows, same row order — including
    /// NULL join keys (matched by no strategy) and duplicate keys
    /// (cross-producted by all of them).
    #[test]
    fn join_strategies_agree_on_rows_and_order(
        rows_l in proptest::collection::vec((0i64..6, -3i64..3), 0..24),
        rows_r in proptest::collection::vec((0i64..6, -3i64..3), 0..24),
        null_every in 2usize..5,
        filtered in 0usize..2,
    ) {
        // Every `null_every`-th key becomes NULL: joins must skip it.
        let mk = |rows: &[(i64, i64)]| -> Vec<(Option<i64>, i64)> {
            rows.iter()
                .enumerate()
                .map(|(i, &(k, v))| ((i % null_every != 0).then_some(k), v))
                .collect()
        };
        let (rows_l, rows_r) = (mk(&rows_l), mk(&rows_r));
        let dbs = join_dbs(&rows_l, &rows_r);
        let sql = if filtered == 0 {
            "SELECT * FROM l INNER JOIN r ON l.k = r.k"
        } else {
            "SELECT * FROM l INNER JOIN r ON l.k = r.k WHERE l.v <= r.w AND l.k > 1"
        };
        let merge = dbs[0].exec(sql, &[]).unwrap();
        let inl = dbs[1].exec(sql, &[]).unwrap();
        let hash = dbs[2].exec(sql, &[]).unwrap();
        prop_assert_eq!(&merge, &inl, "merge != index-nested-loop for {}", sql);
        prop_assert_eq!(&merge, &hash, "merge != hash for {}", sql);

        // Each layout exercised the strategy it was built to force.
        let (sm, si, sh) = (dbs[0].stats(), dbs[1].stats(), dbs[2].stats());
        prop_assert!(sm.join_merge_joins >= 1, "merge layout never merge-joined");
        prop_assert_eq!(sm.join_hash_builds, 0);
        // One probe per non-NULL outer (left) row.
        if rows_l.iter().any(|(k, _)| k.is_some()) {
            prop_assert!(si.join_index_probes >= 1, "INL layout never probed");
        }
        prop_assert_eq!(si.join_hash_builds, 0);
        prop_assert!(sh.join_hash_builds >= 1, "unindexed layout never hash-joined");
    }
}
