//! Property tests for the typed statement layer, extending
//! `prepared_equivalence.rs` one layer up: for generated filters,
//! orders, and limits, a compiled typed `Stmt` must return row-identical
//! results to (a) the equivalent raw-SQL text executed through the
//! parse path, (b) its own `to_sql()` rendering re-parsed, and (c) the
//! same typed query against an unindexed twin table — while touching no
//! SQL text itself.

use proptest::prelude::*;
use sdm_metadb::stmt::{param, Filter, Query, Relation, Stmt, TypedColumn};
use sdm_metadb::{Database, Value};

sdm_metadb::relation! {
    /// Indexed twin.
    pub struct TiRow in "ti" as TiCol {
        /// Key.
        pub k: i64 => K,
        /// Value.
        pub v: i64 => V,
    }
    indexes { "ti_k" on k, "ti_v" on v }
    ordered { "ti_kv" on (k, v), "ti_vo" on (v) }
}

sdm_metadb::relation! {
    /// Unindexed twin.
    pub struct TnRow in "tn" as TnCol {
        /// Key.
        pub k: i64 => K,
        /// Value.
        pub v: i64 => V,
    }
}

/// Build twin tables with identical rows from the relation descriptors.
fn twin_db(rows: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.exec_stmt(&TiRow::TABLE.create_table(), &[]).unwrap();
    db.exec_stmt(&TnRow::TABLE.create_table(), &[]).unwrap();
    let ins_i = sdm_metadb::stmt::Insert::<TiRow>::prepared();
    let ins_n = sdm_metadb::stmt::Insert::<TnRow>::prepared();
    for &(k, v) in rows {
        let row = &[Value::Int(k), Value::Int(v)];
        db.exec_stmt(&ins_i, row).unwrap();
        db.exec_stmt(&ins_n, row).unwrap();
    }
    for ix in TiRow::TABLE.create_indexes() {
        db.exec_stmt(&ix, &[]).unwrap();
    }
    db
}

/// One generated comparison: column k/v and operator. The parameter
/// slot is positional (first comparison takes `?` 0, the second `?` 1)
/// so the typed statement and its SQL rendering agree on numbering.
#[derive(Debug, Clone, Copy)]
struct Cmp {
    on_v: bool,
    op: usize, // 0..6 → eq ne lt le gt ge
}

/// A generated query shape over the (k, v) twins.
#[derive(Debug, Clone, Copy)]
struct Shape {
    first: Cmp,
    second: Option<(bool, Cmp)>, // (use OR, cmp)
    order_on_v: bool,
    order_desc: bool,
    limit: Option<usize>,
    count: bool,
}

fn cmp_filter<R: Relation, C: TypedColumn<R>>(c: Cmp, slot: usize, k: C, v: C) -> Filter<R> {
    let col = if c.on_v { v } else { k };
    let rhs = param(slot);
    match c.op {
        0 => col.eq(rhs),
        1 => col.ne(rhs),
        2 => col.lt(rhs),
        3 => col.le(rhs),
        4 => col.gt(rhs),
        _ => col.ge(rhs),
    }
}

fn build_typed<R: Relation, C: TypedColumn<R>>(s: Shape, k: C, v: C) -> Stmt {
    let mut f = cmp_filter(s.first, 0, k, v);
    if let Some((use_or, c2)) = s.second {
        let g = cmp_filter(c2, 1, k, v);
        f = if use_or { f.or(g) } else { f.and(g) };
    }
    let mut q = Query::<R>::filter(f);
    if s.count {
        // Aggregates order/limit over output names; a plain COUNT(*)
        // takes neither.
        return q.count().compile();
    }
    q = if s.order_on_v {
        q.order_by_desc(v)
    } else if s.order_desc {
        q.order_by_desc(k)
    } else {
        q.order_by(k)
    };
    if let Some(lim) = s.limit {
        q = q.limit(lim);
    }
    q.compile()
}

/// The equivalent SQL text, written by hand the way the retired call
/// sites did (this test file is the one place above the engine allowed
/// to format SQL).
fn build_sql(s: Shape, table: &str) -> String {
    let cmp_sql = |c: Cmp| {
        let col = if c.on_v { "v" } else { "k" };
        let op = ["=", "!=", "<", "<=", ">", ">="][c.op];
        format!("{col} {op} ?")
    };
    let mut sql = format!(
        "SELECT {} FROM {table} WHERE {}",
        if s.count { "COUNT(*)" } else { "*" },
        cmp_sql(s.first)
    );
    if let Some((use_or, c2)) = s.second {
        sql = format!(
            "SELECT {} FROM {table} WHERE ({}) {} ({})",
            if s.count { "COUNT(*)" } else { "*" },
            cmp_sql(s.first),
            if use_or { "OR" } else { "AND" },
            cmp_sql(c2),
        );
    }
    if s.count {
        return sql;
    }
    if s.order_on_v {
        sql.push_str(" ORDER BY v DESC");
    } else if s.order_desc {
        sql.push_str(" ORDER BY k DESC");
    } else {
        sql.push_str(" ORDER BY k");
    }
    if let Some(lim) = s.limit {
        sql.push_str(&format!(" LIMIT {lim}"));
    }
    sql
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    (any::<bool>(), 0usize..6).prop_map(|(on_v, op)| Cmp { on_v, op })
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        cmp_strategy(),
        (any::<bool>(), any::<bool>(), cmp_strategy()),
        (any::<bool>(), any::<bool>()),
        (any::<bool>(), 0usize..5),
        any::<bool>(),
    )
        .prop_map(
            |(
                first,
                (has_second, use_or, c2),
                (order_on_v, order_desc),
                (has_limit, lim),
                count,
            )| {
                Shape {
                    first,
                    second: has_second.then_some((use_or, c2)),
                    order_on_v,
                    order_desc,
                    limit: has_limit.then_some(lim),
                    count,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn typed_statements_match_raw_sql_and_unindexed_twin(
        rows in proptest::collection::vec((0i64..10, -5i64..5), 0..50),
        shape in shape_strategy(),
        p1 in 0i64..10,
        p2 in -5i64..5,
    ) {
        let db = twin_db(&rows);
        let params = [Value::Int(p1), Value::Int(p2)];

        // Typed, against the indexed twin — compiled once, no SQL text.
        let typed_i = build_typed(shape, TiCol::K, TiCol::V);
        db.reset_stats();
        let via_typed = db.exec_stmt(&typed_i, &params).unwrap();
        prop_assert_eq!(db.stats().sql_texts, 0, "typed path touched SQL text");

        // The same shape as raw SQL text through the parse path.
        let sql = build_sql(shape, "ti");
        let via_text = db.exec(&sql, &params).unwrap();
        prop_assert_eq!(&via_typed, &via_text, "typed != raw for {}", sql);

        // The typed statement's own rendering, re-parsed.
        let rendered = Stmt::parse(&typed_i.to_sql()).unwrap();
        let via_rendered = db.exec_stmt(&rendered, &params).unwrap();
        prop_assert_eq!(&via_typed.rows, &via_rendered.rows,
            "to_sql round-trip diverged: {}", typed_i.to_sql());

        // Same typed shape over the unindexed twin: planner equivalence.
        let typed_n = build_typed(shape, TnCol::K, TnCol::V);
        let via_scan = db.exec_stmt(&typed_n, &params).unwrap();
        prop_assert_eq!(&via_typed.rows, &via_scan.rows,
            "indexed and scanned rows differ for {:?}", shape);

        // Replaying the compiled statement with fresh parameters stays
        // consistent with the text path.
        let params2 = [Value::Int((p1 + 3) % 10), Value::Int(p2)];
        let a = db.exec_stmt(&typed_i, &params2).unwrap();
        let b = db.exec(&sql, &params2).unwrap();
        prop_assert_eq!(&a, &b);
    }

    /// The range builders (`between`, `prefix_range`) agree with the
    /// unindexed twin and their own `to_sql()` re-parse — row sets AND
    /// row order, streamed or sorted.
    #[test]
    fn typed_range_builders_match_scan_and_rendering(
        rows in proptest::collection::vec((0i64..10, -5i64..5), 0..50),
        key in 0i64..10,
        lo in -5i64..5,
        hi in -5i64..5,
    ) {
        let db = twin_db(&rows);

        // Equality-prefix + closed-range composite probe.
        let q_i = Query::<TiRow>::prefix_range(TiCol::K, param(0), TiCol::V, param(1), param(2))
            .order_by(TiCol::V)
            .compile();
        let q_n = Query::<TnRow>::prefix_range(TnCol::K, param(0), TnCol::V, param(1), param(2))
            .order_by(TnCol::V)
            .compile();
        let params = [Value::Int(key), Value::Int(lo), Value::Int(hi)];
        db.reset_stats();
        let a = db.exec_stmt(&q_i, &params).unwrap();
        prop_assert_eq!(db.stats().sql_texts, 0, "typed path touched SQL text");
        prop_assert_eq!(
            db.stats().full_scans, 0,
            "prefix_range must ride the (k, v) composite (probe or stream)"
        );
        let b = db.exec_stmt(&q_n, &params).unwrap();
        prop_assert_eq!(&a.rows, &b.rows, "prefix_range: indexed != scan");
        let c = db.exec_stmt(&Stmt::parse(&q_i.to_sql()).unwrap(), &params).unwrap();
        prop_assert_eq!(&a.rows, &c.rows, "prefix_range to_sql round-trip diverged");

        // Standalone between + top-k: streamed off the ordered `v`
        // index on one side, partial-sorted on the other.
        let q_i = Query::<TiRow>::filter(TiCol::V.between(param(0), param(1)))
            .order_by_desc(TiCol::V)
            .limit(3)
            .compile();
        let q_n = Query::<TnRow>::filter(TnCol::V.between(param(0), param(1)))
            .order_by_desc(TnCol::V)
            .limit(3)
            .compile();
        let params = [Value::Int(lo), Value::Int(hi)];
        let a = db.exec_stmt(&q_i, &params).unwrap();
        let b = db.exec_stmt(&q_n, &params).unwrap();
        prop_assert_eq!(&a.rows, &b.rows, "between top-k: indexed != scan");
        let c = db.exec_stmt(&Stmt::parse(&q_i.to_sql()).unwrap(), &params).unwrap();
        prop_assert_eq!(&a.rows, &c.rows, "between to_sql round-trip diverged");
    }

    #[test]
    fn typed_mutations_match_raw_sql(
        rows in proptest::collection::vec((0i64..8, 0i64..8), 1..40),
        pivot in 0i64..8,
    ) {
        use sdm_metadb::stmt::{Delete, Update};
        let db = twin_db(&rows);
        // Typed update on ti; the same update as text on tn.
        let up = Update::<TiRow>::new()
            .set(TiCol::V, param(0))
            .filter(TiCol::K.eq(param(1)))
            .compile();
        let a = db.exec_stmt(&up, &[Value::Int(100), Value::Int(pivot)]).unwrap();
        let b = db.exec(
            "UPDATE tn SET v = ? WHERE k = ?",
            &[Value::Int(100), Value::Int(pivot)],
        ).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        let del = Delete::<TiRow>::filter(TiCol::V.ge(param(0)).and(TiCol::K.eq(param(1))))
            .compile();
        let a = db.exec_stmt(&del, &[Value::Int(100), Value::Int(pivot)]).unwrap();
        let b = db.exec(
            "DELETE FROM tn WHERE v >= ? AND k = ?",
            &[Value::Int(100), Value::Int(pivot)],
        ).unwrap();
        prop_assert_eq!(a.affected, b.affected);

        // The twins still agree row-for-row afterwards.
        let qi = db.exec_stmt(
            &Query::<TiRow>::all().order_by(TiCol::K).order_by(TiCol::V).compile(),
            &[],
        ).unwrap();
        let qn = db.exec_stmt(
            &Query::<TnRow>::all().order_by(TnCol::K).order_by(TnCol::V).compile(),
            &[],
        ).unwrap();
        prop_assert_eq!(qi.rows, qn.rows);
    }
}

// ---------------------------------------------------------------------
// Key-encoding edge cases through the typed layer
// ---------------------------------------------------------------------

sdm_metadb::relation! {
    /// Indexed twin with a DOUBLE key (±0.0 edge cases) and an INT
    /// payload column fed huge and NULL values.
    pub struct TdRow in "td" as TdCol {
        /// Double key.
        pub d: f64 => D,
        /// Integer payload.
        pub n: i64 => N,
    }
    indexes { "td_d" on d, "td_n" on n }
    ordered { "td_dn" on (d, n) }
}

sdm_metadb::relation! {
    /// Unindexed twin of [`TdRow`].
    pub struct TdnRow in "tdn" as TdnCol {
        /// Double key.
        pub d: f64 => D,
        /// Integer payload.
        pub n: i64 => N,
    }
}

/// Edge-case cell generators: signed zeros + NULL for the double key,
/// huge (>2^53) and NULL values for the int payload.
fn edge_cell() -> impl Strategy<Value = (Value, Value)> {
    let d = prop_oneof![
        Just(Value::Double(0.0)),
        Just(Value::Double(-0.0)),
        Just(Value::Double(2.5)),
        Just(Value::Null),
    ];
    let n = prop_oneof![
        Just(Value::Int(1 << 53)),
        Just(Value::Int((1 << 53) + 1)),
        Just(Value::Int(i64::MIN)),
        Just(Value::Null),
        (0i64..3).prop_map(Value::Int),
    ];
    (d, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed statements over NULL-heavy, signed-zero, huge-integer rows
    /// return identical rows through the indexed twin, the unindexed
    /// twin, and the `to_sql()` re-parse — so the `IndexKey` encoding
    /// can never make an indexed plan disagree with a scan.
    #[test]
    fn typed_key_encoding_edges_agree(
        rows in proptest::collection::vec(edge_cell(), 0..40),
        probe_d in prop_oneof![
            Just(Value::Double(0.0)),
            Just(Value::Double(-0.0)),
            Just(Value::Int(0)),
            Just(Value::Null),
        ],
        probe_n in prop_oneof![
            Just(Value::Int(1 << 53)),
            Just(Value::Int((1 << 53) + 1)),
            Just(Value::Int(1)),
        ],
    ) {
        let db = Database::new();
        db.exec_stmt(&TdRow::TABLE.create_table(), &[]).unwrap();
        db.exec_stmt(&TdnRow::TABLE.create_table(), &[]).unwrap();
        for ix in TdRow::TABLE.create_indexes() {
            db.exec_stmt(&ix, &[]).unwrap();
        }
        let ins_i = sdm_metadb::stmt::Insert::<TdRow>::prepared();
        let ins_n = sdm_metadb::stmt::Insert::<TdnRow>::prepared();
        for (d, n) in &rows {
            let row = [d.clone(), n.clone()];
            db.exec_stmt(&ins_i, &row).unwrap();
            db.exec_stmt(&ins_n, &row).unwrap();
        }

        // Parameter slots stay positional within each shape so the
        // typed statement and its `to_sql()` rendering agree on `?`
        // numbering.
        let shapes: [(Stmt, Stmt, Vec<Value>); 3] = [
            (
                Query::<TdRow>::filter(TdCol::D.eq(param(0))).compile(),
                Query::<TdnRow>::filter(TdnCol::D.eq(param(0))).compile(),
                vec![probe_d.clone()],
            ),
            (
                Query::<TdRow>::filter(TdCol::N.eq(param(0))).compile(),
                Query::<TdnRow>::filter(TdnCol::N.eq(param(0))).compile(),
                vec![probe_n.clone()],
            ),
            (
                Query::<TdRow>::filter(TdCol::D.eq(param(0)).and(TdCol::N.ne(param(1))))
                    .count()
                    .compile(),
                Query::<TdnRow>::filter(TdnCol::D.eq(param(0)).and(TdnCol::N.ne(param(1))))
                    .count()
                    .compile(),
                vec![probe_d.clone(), probe_n.clone()],
            ),
        ];
        for (typed_i, typed_n, params) in &shapes {
            db.reset_stats();
            let via_indexed = db.exec_stmt(typed_i, params).unwrap();
            prop_assert_eq!(db.stats().sql_texts, 0, "typed path touched SQL text");
            let via_scan = db.exec_stmt(typed_n, params).unwrap();
            prop_assert_eq!(&via_indexed.rows, &via_scan.rows,
                "indexed != scan for probe {:?}", params);
            let rendered = Stmt::parse(&typed_i.to_sql()).unwrap();
            let via_rendered = db.exec_stmt(&rendered, params).unwrap();
            prop_assert_eq!(&via_indexed.rows, &via_rendered.rows);
        }
        // A NULL probe returns nothing from either plan.
        if probe_d.is_null() {
            let rs = db
                .exec_stmt(&shapes[0].0, &[Value::Null, Value::Int(0)])
                .unwrap();
            prop_assert!(rs.is_empty(), "NULL = NULL must never match");
        }
    }
}
