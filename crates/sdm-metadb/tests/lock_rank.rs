//! The runtime half of the lock-ladder check: the `parking_lot` shim's
//! rank checker must trip on an upward acquisition in debug builds.
//!
//! The static analyzer proves the ladder for the lock names it models;
//! this test proves the *dynamic* net underneath catches an inversion
//! the analyzer could miss (reflection, renamed guards, future code).

#![cfg(debug_assertions)]

use parking_lot::{Mutex, RwLock};
use sdm_metadb::db::{LOCK_RANK_CATALOG, LOCK_RANK_LEAF};

/// Taking a leaf-ranked mutex and then a catalog-ranked RwLock is the
/// inversion of `Database`'s documented order, and must panic.
#[test]
#[should_panic(expected = "lock ladder violation")]
fn upward_acquisition_panics_in_debug() {
    let leaf = Mutex::new(0u32).with_rank(LOCK_RANK_LEAF);
    let catalog = RwLock::new(0u32).with_rank(LOCK_RANK_CATALOG);
    let _stats = leaf.lock();
    let _catalog = catalog.write(); // stats → catalog: upward, panics
}

/// The documented order itself must stay panic-free.
#[test]
fn downward_acquisition_is_clean() {
    let catalog = RwLock::new(0u32).with_rank(LOCK_RANK_CATALOG);
    let leaf = Mutex::new(0u32).with_rank(LOCK_RANK_LEAF);
    let _catalog = catalog.read();
    let _stats = leaf.lock();
}
