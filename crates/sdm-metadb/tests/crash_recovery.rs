//! Crash-recovery property tests: kill the database at *every* point.
//!
//! The durability contract (`src/wal/`): a transaction whose COMMIT
//! returned is recovered exactly; a transaction that never committed —
//! rolled back, or in flight when the crash hit — leaves no trace. These
//! tests enforce the contract mechanically:
//!
//! * run a workload against the fault-injectable in-memory backend,
//!   recording the oracle state at every WAL byte boundary;
//! * then simulate a crash at **every byte** of the log (truncation) and
//!   at corrupted positions (torn writes flipping bits inside a frame),
//!   reopen, and demand the recovered state equal the oracle state of
//!   the last boundary at or before the cut;
//! * plus live `crash_after_bytes` faults (the storage dies mid-append),
//!   checkpoint crash windows, and the real file backend with a
//!   physically truncated segment.

use proptest::prelude::*;
use sdm_metadb::{Database, DbError, DbResult, MemPersisted, MemStorage, Value, WalFaults};

// ---------------------------------------------------------------- workload

/// One workload step. Every variant is applied through SQL autocommit or
/// an explicit transaction, so each completed op is a committed (and
/// therefore durable) transaction — one oracle boundary.
#[derive(Debug, Clone)]
enum Op {
    /// Autocommit `INSERT INTO t VALUES (k, v)`.
    Insert(i64, i64),
    /// Autocommit `UPDATE t SET v = v WHERE k = k`.
    Update(i64, i64),
    /// Autocommit `DELETE FROM t WHERE k = k`.
    Delete(i64),
    /// Autocommit `DELETE FROM t` (logs a CLEAR record).
    Clear,
    /// `BEGIN; INSERT…; COMMIT` — all rows or none.
    TxCommit(Vec<(i64, i64)>),
    /// `BEGIN; INSERT…; ROLLBACK` — must never resurrect.
    TxRollback(Vec<(i64, i64)>),
    /// `CREATE INDEX tk ON t (k)` / `DROP INDEX tk ON t` (idempotence
    /// errors ignored: an invalid DDL statement logs nothing).
    CreateIndex,
    DropIndex,
    /// `CREATE TABLE u …` / `DROP TABLE u` (ignored when wrong-state).
    CreateTable2,
    DropTable2,
}

/// Apply one op. Wrong-state DDL errors (index/table already there or
/// missing) are tolerated — the executor pre-validates, so a rejected
/// statement appends nothing to the log and mutates nothing. Every
/// *other* error (a failed fsync above all) propagates: the op did not
/// durably happen.
fn apply(db: &Database, op: &Op) -> DbResult<()> {
    // Wrong-state DDL is a no-op, not a failure.
    let ddl = |r: DbResult<sdm_metadb::ResultSet>| match r {
        Ok(_)
        | Err(DbError::IndexExists(_))
        | Err(DbError::NoSuchIndex(_))
        | Err(DbError::TableExists(_))
        | Err(DbError::NoSuchTable(_)) => Ok(()),
        Err(e) => Err(e),
    };
    match op {
        Op::Insert(k, v) => {
            db.exec(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(*k), Value::Int(*v)],
            )?;
        }
        Op::Update(k, v) => {
            db.exec(
                "UPDATE t SET v = ? WHERE k = ?",
                &[Value::Int(*v), Value::Int(*k)],
            )?;
        }
        Op::Delete(k) => {
            db.exec("DELETE FROM t WHERE k = ?", &[Value::Int(*k)])?;
        }
        Op::Clear => {
            db.exec("DELETE FROM t", &[])?;
        }
        Op::TxCommit(rows) => {
            db.exec("BEGIN", &[])?;
            for (k, v) in rows {
                db.exec(
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(*k), Value::Int(*v)],
                )?;
            }
            db.exec("COMMIT", &[])?;
        }
        Op::TxRollback(rows) => {
            db.exec("BEGIN", &[])?;
            for (k, v) in rows {
                db.exec(
                    "INSERT INTO t VALUES (?, ?)",
                    &[Value::Int(*k), Value::Int(*v)],
                )?;
            }
            db.exec("ROLLBACK", &[])?;
        }
        Op::CreateIndex => ddl(db.exec("CREATE INDEX tk ON t (k)", &[]))?,
        Op::DropIndex => ddl(db.exec("DROP INDEX tk ON t", &[]))?,
        Op::CreateTable2 => ddl(db.exec("CREATE TABLE u (a INT)", &[]))?,
        Op::DropTable2 => ddl(db.exec("DROP TABLE u", &[]))?,
    }
    Ok(())
}

/// Observable database state: the ordered rows of `t` and `u`, `None`
/// when the table does not exist. Index presence is exercised through
/// replay (CREATE/DROP INDEX records) but equality is judged on rows.
type State = (Option<Vec<Vec<Value>>>, Option<Vec<Vec<Value>>>);

fn dump(db: &Database, table: &str) -> Option<Vec<Vec<Value>>> {
    let sql = match table {
        "t" => "SELECT k, v FROM t ORDER BY k, v",
        _ => "SELECT a FROM u ORDER BY a",
    };
    db.exec(sql, &[]).ok().map(|rs| rs.rows)
}

fn state(db: &Database) -> State {
    (dump(db, "t"), dump(db, "u"))
}

/// Reopen a database from a snapshot plus a (possibly cut) log.
fn reopen(snapshot: Option<Vec<u8>>, log: &[u8]) -> Database {
    let (storage, _h) = MemStorage::from_persisted(MemPersisted {
        snapshot,
        segments: vec![log.to_vec()],
    });
    Database::open_with_storage(Box::new(storage)).unwrap()
}

/// Run `ops` against a fresh in-memory durable database (creating table
/// `t` first) and return the full log plus the oracle: `(boundary,
/// state)` pairs, starting at `(0, empty-pre-create state)`.
fn run_workload(ops: &[Op]) -> (Vec<u8>, Vec<(u64, State)>) {
    let (storage, h) = MemStorage::new();
    let db = Database::open_with_storage(Box::new(storage)).unwrap();
    let mut oracle: Vec<(u64, State)> = vec![(0, state(&db))];
    db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
    oracle.push((h.log_len(), state(&db)));
    for op in ops {
        apply(&db, op).unwrap();
        oracle.push((h.log_len(), state(&db)));
    }
    let log = h.persisted().log_bytes();
    assert_eq!(log.len() as u64, h.log_len());
    (log, oracle)
}

/// The oracle state for a crash at byte `cut`: the last boundary at or
/// before the cut — everything past it is an uncommitted torn tail.
fn expected_at(oracle: &[(u64, State)], cut: u64) -> &State {
    &oracle
        .iter()
        .rev()
        .find(|(b, _)| *b <= cut)
        .expect("boundary 0 always present")
        .1
}

// ----------------------------------------------------- every-byte cuts

/// A fixed workload covering every redo record kind, cut at every
/// single byte of the log. Deterministic twin of the proptest below, so
/// a regression fails without shrinking.
#[test]
fn scripted_workload_survives_a_cut_at_every_byte() {
    let ops = vec![
        Op::Insert(1, 10),
        Op::Insert(2, 20),
        Op::CreateIndex,
        Op::TxCommit(vec![(3, 30), (4, 40)]),
        Op::Update(2, 21),
        Op::TxRollback(vec![(9, 90)]),
        Op::Delete(1),
        Op::CreateTable2,
        Op::DropIndex,
        Op::Clear,
        Op::DropTable2,
        Op::Insert(5, 50),
    ];
    let (log, oracle) = run_workload(&ops);
    assert!(log.len() > 200, "workload produced a real log");
    for cut in 0..=log.len() {
        let db = reopen(None, &log[..cut]);
        assert_eq!(
            &state(&db),
            expected_at(&oracle, cut as u64),
            "cut at byte {cut} of {}",
            log.len()
        );
    }
}

/// Rolled-back work must not resurrect at *any* cut point — even a cut
/// that lands inside the rolled-back transaction's own frames.
#[test]
fn rolled_back_rows_never_resurrect_at_any_cut() {
    let marker = 777;
    let ops = vec![
        Op::Insert(1, 10),
        Op::TxRollback(vec![(marker, marker)]),
        Op::Insert(2, 20),
    ];
    let (log, _) = run_workload(&ops);
    for cut in 0..=log.len() {
        let db = reopen(None, &log[..cut]);
        if let Some(rows) = dump(&db, "t") {
            assert!(
                !rows.iter().any(|r| r[0] == Value::Int(marker)),
                "rolled-back row resurrected at cut {cut}"
            );
        }
    }
}

/// Monotonic txids across reopens: recovery must restart the txid
/// counter past everything in the log — including aborted transactions —
/// or a reused txid could make old frames look committed.
#[test]
fn txids_stay_monotonic_across_reopen() {
    let ops = vec![
        Op::Insert(1, 1),
        Op::TxRollback(vec![(2, 2)]),
        Op::Insert(3, 3),
    ];
    let (log, oracle) = run_workload(&ops);
    let db = reopen(None, &log);
    db.exec("INSERT INTO t VALUES (4, 4)", &[]).unwrap();
    let info = db.recovery_info().unwrap();
    assert!(info.last_committed_tx > 0);
    assert_eq!(
        dump(&db, "t").unwrap().len(),
        oracle.last().unwrap().1 .0.as_ref().unwrap().len() + 1
    );
}

// ------------------------------------------------------ random workloads

fn arb_op() -> impl Strategy<Value = Op> {
    (
        0u8..10,
        0i64..8,
        0i64..100,
        proptest::collection::vec((0i64..8, 0i64..100), 1..4),
    )
        .prop_map(|(sel, k, v, rows)| match sel {
            0 | 1 => Op::Insert(k, v),
            2 => Op::Update(k, v),
            3 => Op::Delete(k),
            4 => Op::Clear,
            5 => Op::TxCommit(rows),
            6 => Op::TxRollback(rows),
            7 => Op::CreateIndex,
            8 => Op::DropIndex,
            _ => {
                if k % 2 == 0 {
                    Op::CreateTable2
                } else {
                    Op::DropTable2
                }
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random workloads, every-byte cuts: for each cut the recovered
    /// state equals the last committed oracle state. This is the
    /// paper-facing guarantee: no lost committed transaction, no
    /// resurrected uncommitted one, at any crash point.
    #[test]
    fn recovered_state_is_last_committed_at_every_cut(
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let (log, oracle) = run_workload(&ops);
        for cut in 0..=log.len() {
            let db = reopen(None, &log[..cut]);
            prop_assert_eq!(
                &state(&db),
                expected_at(&oracle, cut as u64),
                "cut at byte {} of {}", cut, log.len()
            );
        }
    }

    /// Torn writes: flip a byte inside the log (not just truncate).
    /// CRC validation must stop replay at the frame containing the
    /// corruption, landing on the last boundary before it.
    #[test]
    fn torn_write_corruption_recovers_to_a_prior_boundary(
        ops in proptest::collection::vec(arb_op(), 1..8),
        poke in 0usize..4096,
        flip in 1u8..255,
    ) {
        let (log, oracle) = run_workload(&ops);
        // CREATE TABLE t always logs, so the log is never empty.
        prop_assert!(!log.is_empty());
        let poke = poke % log.len();
        let mut torn = log.clone();
        torn[poke] ^= flip;
        let db = reopen(None, &torn);
        let got = state(&db);
        // The corrupted frame starts at or after the last boundary
        // ≤ poke; replay keeps everything before that frame, and a
        // mid-transaction stop discards the uncommitted pieces — so the
        // recovered state is *some* boundary state at or before poke's.
        let valid: Vec<&State> = oracle
            .iter()
            .filter(|(b, _)| *b <= poke as u64)
            .map(|(_, s)| s)
            .collect();
        prop_assert!(
            valid.contains(&&got),
            "corruption at byte {} recovered to a non-boundary state", poke
        );
    }

    /// Live crash: the storage itself dies mid-append after a random
    /// byte budget. Ops fail from that point on; the harvested log must
    /// recover to the state after the last *successful* op.
    #[test]
    fn live_crash_after_n_bytes_keeps_every_acknowledged_commit(
        ops in proptest::collection::vec(arb_op(), 1..10),
        budget in 1u64..2000,
    ) {
        let (storage, h) =
            MemStorage::with_faults(WalFaults::none().crash_after_bytes(budget));
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        let mut last_ok: Option<State> = None;
        if db.exec("CREATE TABLE t (k INT, v INT)", &[]).is_ok() {
            last_ok = Some(state(&db));
            for op in &ops {
                // After the crash point every durable op errors; the
                // first failure ends the run (the process "died").
                if apply(&db, op).is_err() {
                    break;
                }
                last_ok = Some(state(&db));
            }
        }
        let p = h.persisted();
        let (storage2, _h2) = MemStorage::from_persisted(p);
        let db2 = Database::open_with_storage(Box::new(storage2)).unwrap();
        if let Some(exp) = last_ok {
            prop_assert_eq!(state(&db2), exp, "acknowledged commit lost");
        } else {
            prop_assert_eq!(state(&db2), (None, None));
        }
    }

    /// Checkpoint crash window: cut the post-checkpoint log at every
    /// byte. The snapshot floor holds — recovery never regresses below
    /// the checkpointed state, and replays exactly the committed suffix.
    #[test]
    fn checkpoint_then_cuts_replay_exactly_the_committed_suffix(
        pre in proptest::collection::vec(arb_op(), 1..6),
        post in proptest::collection::vec(arb_op(), 1..6),
    ) {
        let (storage, h) = MemStorage::new();
        let db = Database::open_with_storage(Box::new(storage)).unwrap();
        db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
        for op in &pre {
            apply(&db, op).unwrap();
        }
        db.checkpoint().unwrap();
        let mut oracle: Vec<(u64, State)> = vec![(h.log_len(), state(&db))];
        for op in &post {
            apply(&db, op).unwrap();
            oracle.push((h.log_len(), state(&db)));
        }
        let p = h.persisted();
        prop_assert!(p.snapshot.is_some(), "checkpoint installed a snapshot");
        let log = p.log_bytes();
        for cut in 0..=log.len() {
            let db2 = reopen(p.snapshot.clone(), &log[..cut]);
            let exp = &oracle
                .iter()
                .rev()
                .find(|(b, _)| *b <= cut as u64)
                .unwrap_or(&oracle[0])
                .1;
            prop_assert_eq!(&state(&db2), exp, "cut at byte {}", cut);
            let info = db2.recovery_info().unwrap();
            prop_assert!(info.snapshot_last_tx > 0, "recovery used the snapshot");
        }
    }
}

// --------------------------------------------------------- checkpoints

/// Back-to-back checkpoints are idempotent, and a torn snapshot install
/// (crash during checkpoint) leaves the previous snapshot + log intact.
#[test]
fn checkpoint_is_idempotent_and_survives_torn_install() {
    let (storage, h) = MemStorage::new();
    let db = Database::open_with_storage(Box::new(storage)).unwrap();
    db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
    db.exec("INSERT INTO t VALUES (1, 10)", &[]).unwrap();
    let c1 = db.checkpoint().unwrap();
    let c2 = db.checkpoint().unwrap();
    assert!(c2 >= c1, "checkpoint txid floor is monotonic");
    let healthy = h.persisted();

    // Crash during a later checkpoint's snapshot install: the install
    // is atomic, so the torn attempt changes nothing.
    db.exec("INSERT INTO t VALUES (2, 20)", &[]).unwrap();
    h.set_faults(WalFaults::none().torn_snapshot());
    assert!(db.checkpoint().is_err(), "torn install must surface");
    let after = h.persisted();
    assert_eq!(
        after.snapshot, healthy.snapshot,
        "torn install corrupted the snapshot"
    );
    // Snapshot + surviving log still recover everything committed.
    let (storage2, _h2) = MemStorage::from_persisted(after);
    let db2 = Database::open_with_storage(Box::new(storage2)).unwrap();
    assert_eq!(
        dump(&db2, "t").unwrap(),
        vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(2), Value::Int(20)],
        ]
    );
}

// -------------------------------------------------------- file backend

/// The real file backend: reopen from disk, then physically truncate
/// the tail of the newest segment (a torn commit) and reopen again.
#[test]
fn file_backend_reopens_and_discards_a_physically_torn_tail() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
        for i in 0..3 {
            db.exec(
                "INSERT INTO t VALUES (?, ?)",
                &[Value::Int(i), Value::Int(i * 10)],
            )
            .unwrap();
        }
    }
    {
        let db = Database::open(dir.path()).unwrap();
        assert_eq!(dump(&db, "t").unwrap().len(), 3, "clean reopen");
    }
    // Tear the last commit: chop 5 bytes off the newest segment — well
    // inside the final COMMIT frame (17 bytes), so insert #2 loses its
    // commit record. (The clean reopen above rotated to a fresh empty
    // segment; the torn one is the newest non-empty.)
    let mut segs: Vec<_> = std::fs::read_dir(dir.path())
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name().unwrap().to_string_lossy().starts_with("wal-")
                && p.metadata().unwrap().len() > 0
        })
        .collect();
    segs.sort();
    let newest = segs.last().expect("a non-empty wal segment exists");
    let len = newest.metadata().unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(newest)
        .unwrap();
    f.set_len(len - 5).unwrap();
    drop(f);

    let db = Database::open(dir.path()).unwrap();
    let rows = dump(&db, "t").unwrap();
    assert_eq!(rows.len(), 2, "torn final commit discarded, prefix kept");
    let info = db.recovery_info().unwrap();
    assert!(info.torn_bytes > 0, "recovery reported the torn tail");
    // The database keeps working — and the new commit is durable.
    db.exec("INSERT INTO t VALUES (9, 90)", &[]).unwrap();
    drop(db);
    let db2 = Database::open(dir.path()).unwrap();
    assert_eq!(dump(&db2, "t").unwrap().len(), 3);
}

/// File backend + checkpoint: the snapshot file appears, old segments
/// vanish, and a reopen recovers from snapshot + suffix.
#[test]
fn file_backend_checkpoint_truncates_and_recovers() {
    let dir = tempfile::tempdir().unwrap();
    {
        let db = Database::open(dir.path()).unwrap();
        db.exec("CREATE TABLE t (k INT, v INT)", &[]).unwrap();
        db.exec("INSERT INTO t VALUES (1, 10)", &[]).unwrap();
        db.checkpoint().unwrap();
        db.exec("INSERT INTO t VALUES (2, 20)", &[]).unwrap();
    }
    assert!(dir.path().join("snapshot.db").exists());
    let db = Database::open(dir.path()).unwrap();
    assert_eq!(dump(&db, "t").unwrap().len(), 2);
    let info = db.recovery_info().unwrap();
    assert!(info.snapshot_last_tx > 0, "recovered from the snapshot");
    assert_eq!(info.replayed_txs, 1, "replayed exactly the suffix commit");
}
