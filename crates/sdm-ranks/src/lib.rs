//! The workspace's lock-rank registry.
//!
//! `sdm-metadb` documents a lock ladder — locks are acquired in strictly
//! increasing rank order, equal ranks never nest — and that ladder is
//! enforced twice: dynamically by the `parking_lot` shim's debug-build
//! rank checker, and statically by `sdm-analyze`'s `ladder` dataflow.
//! Both halves used to carry their own bare integers; this crate is the
//! single table they now share, so a violation prints `catalog(20)`
//! instead of an unexplained `20` no matter which checker caught it.
//!
//! Adding a rank: add a `pub const`, list it in [`RANK_NAMES`], and give
//! the new lock its position in the ladder documented on
//! `sdm_metadb::Database`. Ranks are sparse on purpose — gaps leave room
//! for ROADMAP item 3's per-table locks without renumbering.

/// Rank of the transaction slot mutex (top of the ladder, taken first).
pub const TX: u32 = 10;
/// Rank of the catalog `RwLock` (middle of the ladder).
pub const CATALOG: u32 = 20;
/// Rank of the WAL storage-tail mutex (group-commit leader election):
/// below the catalog, above the record buffer.
pub const WAL_SYNC: u32 = 24;
/// Rank of the WAL record-buffer mutex.
pub const WAL_BUF: u32 = 26;
/// Rank shared by the leaf mutexes (`stats`, `plans`). Leaves are taken
/// alone and never nested, which sharing one rank enforces: an
/// equal-rank acquisition trips the checker like a re-entry would.
pub const LEAF: u32 = 30;

/// Every named rank, lowest (outermost) first.
pub const RANK_NAMES: &[(u32, &str)] = &[
    (TX, "tx"),
    (CATALOG, "catalog"),
    (WAL_SYNC, "wal_sync"),
    (WAL_BUF, "wal_buf"),
    (LEAF, "leaf"),
];

/// Look up the ladder name for a rank, if it has one.
pub fn name(rank: u32) -> Option<&'static str> {
    RANK_NAMES
        .iter()
        .find(|&&(r, _)| r == rank)
        .map(|&(_, n)| n)
}

/// Human-readable form of a rank: `catalog(20)` for registered ranks,
/// `rank(7)` for unregistered ones.
pub fn describe(rank: u32) -> String {
    match name(rank) {
        Some(n) => format!("{n}({rank})"),
        None => format!("rank({rank})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in RANK_NAMES.windows(2) {
            assert!(pair[0].0 < pair[1].0, "ranks must be strictly increasing");
        }
    }

    #[test]
    fn describe_names_registered_ranks() {
        assert_eq!(describe(CATALOG), "catalog(20)");
        assert_eq!(describe(LEAF), "leaf(30)");
        assert_eq!(describe(7), "rank(7)");
    }

    #[test]
    fn name_lookup() {
        assert_eq!(name(TX), Some("tx"));
        assert_eq!(name(WAL_SYNC), Some("wal_sync"));
        assert_eq!(name(0), None);
    }
}
