//! Property tests: mesh invariants across generator parameters, edge
//! extraction against a reference, format offsets, and RCM permutations.

use proptest::prelude::*;
use sdm_mesh::gen::{rt_interface_mesh, tet_box, tri_rect};
use sdm_mesh::mesh::CellKind;
use sdm_mesh::rcm::{bandwidth, invert, rcm_order};
use sdm_mesh::{CsrGraph, Uns3dLayout, UnstructuredMesh};
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tet_box_always_valid(nx in 2usize..7, ny in 2usize..7, nz in 2usize..5, jitter in 0.0f64..0.45, seed in any::<u64>()) {
        let m = tet_box(nx, ny, nz, jitter, seed);
        m.validate().unwrap();
        prop_assert_eq!(m.num_nodes(), nx * ny * nz);
        prop_assert_eq!(m.num_cells(), (nx - 1) * (ny - 1) * (nz - 1) * 5);
        // Connected-ish: every node appears in some edge for boxes >= 2^3.
        let mut touched = vec![false; m.num_nodes()];
        for &(a, b) in &m.edges {
            touched[a as usize] = true;
            touched[b as usize] = true;
        }
        prop_assert!(touched.iter().all(|&t| t));
    }

    #[test]
    fn edge_extraction_matches_reference(nx in 2usize..6, ny in 2usize..6) {
        let m = tri_rect(nx, ny);
        // Reference: set of normalized pairs from cells.
        let mut want = BTreeSet::new();
        for cell in m.cells.chunks_exact(3) {
            for (i, j) in [(0, 1), (1, 2), (0, 2)] {
                let (a, b) = (cell[i].min(cell[j]), cell[i].max(cell[j]));
                want.insert((a, b));
            }
        }
        let got: BTreeSet<(u32, u32)> = m.edges.iter().copied().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn rt_mesh_topology_independent_of_amplitude(side in 4usize..10, amp in 0.0f64..0.5, modes in 1usize..5) {
        let flat = tri_rect(side, side);
        let rt = rt_interface_mesh(side, side, amp, modes);
        prop_assert_eq!(&rt.edges, &flat.edges);
        prop_assert_eq!(&rt.cells, &flat.cells);
        rt.validate().unwrap();
    }

    #[test]
    fn layout_offsets_are_disjoint_and_ordered(edges in 1u64..500, nodes in 1u64..300, ne in 1usize..5, nn in 1usize..5) {
        let l = Uns3dLayout { total_edges: edges, total_nodes: nodes, n_edge_arrays: ne, n_node_arrays: nn };
        let mut regions: Vec<(u64, u64)> = vec![
            (l.edge1_offset(), edges * 4),
            (l.edge2_offset(), edges * 4),
        ];
        for k in 0..ne {
            regions.push((l.edge_array_offset(k), edges * 8));
        }
        for k in 0..nn {
            regions.push((l.node_array_offset(k), nodes * 8));
        }
        // Strictly increasing and gap-free up to file_len.
        let mut end = 0;
        for (off, len) in regions {
            prop_assert_eq!(off, end, "regions must be adjacent");
            end = off + len;
        }
        prop_assert_eq!(end, l.file_len());
    }

    #[test]
    fn rcm_is_permutation_and_helps_on_meshes(nx in 3usize..6, ny in 3usize..6, seed in any::<u64>()) {
        let m = tet_box(nx, ny, 3, 0.1, seed);
        let g = CsrGraph::from_edges(m.num_nodes(), &m.edges);
        let perm = rcm_order(&g);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..m.num_nodes() as u32).collect::<Vec<_>>());
        // RCM bandwidth must not exceed n (sanity) and typically helps on
        // shuffled numbering; at least require it's computed consistently.
        let bw = bandwidth(&g, &invert(&perm));
        prop_assert!(bw < m.num_nodes());
    }

    #[test]
    fn indirection_arrays_are_sorted_pairs(nx in 2usize..5, ny in 2usize..5, nz in 2usize..4) {
        let m = tet_box(nx, ny, nz, 0.0, 1);
        let (e1, e2) = m.indirection_arrays();
        prop_assert_eq!(e1.len(), m.num_edges());
        for k in 0..e1.len() {
            prop_assert!(e1[k] < e2[k], "edge {} not normalized", k);
        }
    }
}

#[test]
fn tet_cells_cover_volume() {
    // The 5-tet decomposition covers each unit cube: total tet volume
    // equals the box volume (unjittered lattice).
    let m = tet_box(4, 3, 3, 0.0, 0);
    let vol: f64 = m
        .cells
        .chunks_exact(4)
        .map(|t| {
            let p = |i: usize| m.coords[t[i] as usize];
            let (a, b, c, d) = (p(0), p(1), p(2), p(3));
            let u = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let v = [c[0] - a[0], c[1] - a[1], c[2] - a[2]];
            let w = [d[0] - a[0], d[1] - a[1], d[2] - a[2]];
            let det = u[0] * (v[1] * w[2] - v[2] * w[1]) - u[1] * (v[0] * w[2] - v[2] * w[0])
                + u[2] * (v[0] * w[1] - v[1] * w[0]);
            det.abs() / 6.0
        })
        .sum();
    let expect = 3.0 * 2.0 * 2.0;
    assert!(
        (vol - expect).abs() < 1e-9,
        "tet volumes {vol} != box volume {expect}"
    );
}

#[test]
fn cellkind_metadata() {
    assert_eq!(CellKind::Triangle.arity(), 3);
    assert_eq!(CellKind::Tetrahedron.arity(), 4);
    let e = UnstructuredMesh::edges_from_cells(CellKind::Triangle, &[0, 1, 2]);
    assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
}
