//! Mesh representation.

use serde::{Deserialize, Serialize};

/// Cell topology of a mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    /// Triangles (3 nodes per cell).
    Triangle,
    /// Tetrahedra (4 nodes per cell).
    Tetrahedron,
}

impl CellKind {
    /// Nodes per cell.
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Triangle => 3,
            CellKind::Tetrahedron => 4,
        }
    }

    /// Local node-index pairs forming each cell's edges.
    pub fn edge_pattern(&self) -> &'static [(usize, usize)] {
        match self {
            CellKind::Triangle => &[(0, 1), (1, 2), (0, 2)],
            CellKind::Tetrahedron => &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        }
    }
}

/// An unstructured mesh: node coordinates, unique undirected edges, and
/// (optionally) the generating cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnstructuredMesh {
    /// Node coordinates (z = 0 for 2-D meshes).
    pub coords: Vec<[f64; 3]>,
    /// Unique undirected edges as `(lo, hi)` node-id pairs, sorted.
    pub edges: Vec<(u32, u32)>,
    /// Cell kind.
    pub cell_kind: CellKind,
    /// Cell connectivity, `cell_kind.arity()` node ids per cell.
    pub cells: Vec<u32>,
}

impl UnstructuredMesh {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.coords.len()
    }

    /// Number of unique edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len() / self.cell_kind.arity()
    }

    /// The paper's indirection arrays: `edge1[i]`, `edge2[i]` are the two
    /// node ids of edge `i`.
    pub fn indirection_arrays(&self) -> (Vec<i32>, Vec<i32>) {
        let mut e1 = Vec::with_capacity(self.edges.len());
        let mut e2 = Vec::with_capacity(self.edges.len());
        for &(a, b) in &self.edges {
            e1.push(a as i32);
            e2.push(b as i32);
        }
        (e1, e2)
    }

    /// Extract unique sorted edges from cell connectivity.
    pub fn edges_from_cells(kind: CellKind, cells: &[u32]) -> Vec<(u32, u32)> {
        let arity = kind.arity();
        assert_eq!(
            cells.len() % arity,
            0,
            "cell array length must be a multiple of arity"
        );
        let pattern = kind.edge_pattern();
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cells.len() / arity * pattern.len());
        for cell in cells.chunks_exact(arity) {
            for &(i, j) in pattern {
                let (a, b) = (cell[i], cell[j]);
                edges.push(if a < b { (a, b) } else { (b, a) });
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Per-node degree (number of incident edges).
    pub fn degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes()];
        for &(a, b) in &self.edges {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        deg
    }

    /// Validity check: edge and cell node ids in range, edges sorted &
    /// deduplicated, no self-loops.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_nodes() as u32;
        for (i, &(a, b)) in self.edges.iter().enumerate() {
            if a >= n || b >= n {
                return Err(format!("edge {i} references node out of range"));
            }
            if a >= b {
                return Err(format!(
                    "edge {i} not in (lo, hi) form or self-loop: ({a}, {b})"
                ));
            }
            if i > 0 && self.edges[i - 1] >= (a, b) {
                return Err(format!("edges not strictly sorted at {i}"));
            }
        }
        if !self.cells.len().is_multiple_of(self.cell_kind.arity()) {
            return Err("cell array length not a multiple of arity".into());
        }
        if let Some(&bad) = self.cells.iter().find(|&&c| c >= n) {
            return Err(format!("cell references node {bad} out of range"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles sharing an edge: nodes 0-3, cells (0,1,2), (1,2,3).
    fn two_triangles() -> UnstructuredMesh {
        let cells = vec![0, 1, 2, 1, 2, 3];
        let edges = UnstructuredMesh::edges_from_cells(CellKind::Triangle, &cells);
        UnstructuredMesh {
            coords: vec![
                [0.0, 0.0, 0.0],
                [1.0, 0.0, 0.0],
                [0.0, 1.0, 0.0],
                [1.0, 1.0, 0.0],
            ],
            edges,
            cell_kind: CellKind::Triangle,
            cells,
        }
    }

    #[test]
    fn shared_edge_deduplicated() {
        let m = two_triangles();
        // 3 + 3 edges with (1,2) shared = 5 unique.
        assert_eq!(m.num_edges(), 5);
        assert!(m.edges.contains(&(1, 2)));
        m.validate().unwrap();
    }

    #[test]
    fn indirection_arrays_split() {
        let m = two_triangles();
        let (e1, e2) = m.indirection_arrays();
        assert_eq!(e1.len(), 5);
        for i in 0..5 {
            assert!(e1[i] < e2[i]);
        }
    }

    #[test]
    fn degrees_sum_to_twice_edges() {
        let m = two_triangles();
        let deg = m.degrees();
        assert_eq!(deg.iter().sum::<u32>() as usize, 2 * m.num_edges());
        assert_eq!(deg[1], 3); // node 1 touches 0,2,3
    }

    #[test]
    fn tet_edge_pattern_has_six() {
        assert_eq!(CellKind::Tetrahedron.edge_pattern().len(), 6);
        let edges = UnstructuredMesh::edges_from_cells(CellKind::Tetrahedron, &[0, 1, 2, 3]);
        assert_eq!(edges.len(), 6);
    }

    #[test]
    fn validate_catches_out_of_range() {
        let mut m = two_triangles();
        m.edges.push((2, 99));
        assert!(m.validate().is_err());
    }

    #[test]
    fn validate_catches_unsorted() {
        let mut m = two_triangles();
        m.edges.swap(0, 1);
        assert!(m.validate().is_err());
    }
}
