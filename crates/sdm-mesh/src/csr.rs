//! Compressed sparse row adjacency.

/// An undirected graph in CSR form (both directions stored), the input
/// format of the partitioner (MeTis uses the same `xadj`/`adjncy` pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// Row pointers: neighbours of node `v` are
    /// `adjncy[xadj[v]..xadj[v+1]]`.
    pub xadj: Vec<usize>,
    /// Concatenated neighbour lists, each sorted ascending.
    pub adjncy: Vec<u32>,
}

impl CsrGraph {
    /// Build from unique undirected `(lo, hi)` edges over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(a, b) in edges {
            assert!(
                (a as usize) < n && (b as usize) < n,
                "edge endpoint out of range"
            );
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut xadj = vec![0usize; n + 1];
        for v in 0..n {
            xadj[v + 1] = xadj[v] + deg[v];
        }
        let mut adjncy = vec![0u32; xadj[n]];
        let mut fill = xadj.clone();
        for &(a, b) in edges {
            adjncy[fill[a as usize]] = b;
            fill[a as usize] += 1;
            adjncy[fill[b as usize]] = a;
            fill[b as usize] += 1;
        }
        // Sort each adjacency run (deterministic iteration order).
        for v in 0..n {
            adjncy[xadj[v]..xadj[v + 1]].sort_unstable();
        }
        Self { xadj, adjncy }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbours of `v`, sorted.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adjncy[self.xadj[v]..self.xadj[v + 1]]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.xadj[v + 1] - self.xadj[v]
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> CsrGraph {
        // 0 - 1 - 2 - 3
        CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn csr_structure() {
        let g = path_graph();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted() {
        let g = CsrGraph::from_edges(4, &[(2, 3), (0, 2), (1, 2)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn symmetric() {
        let g = CsrGraph::from_edges(5, &[(0, 4), (1, 3), (0, 2)]);
        for v in 0..5 {
            for &u in g.neighbors(v) {
                assert!(
                    g.neighbors(u as usize).contains(&(v as u32)),
                    "asymmetric {v}-{u}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        CsrGraph::from_edges(2, &[(0, 5)]);
    }
}
