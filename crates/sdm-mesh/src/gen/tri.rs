//! Triangle meshes (Rayleigh-Taylor stand-in).
//!
//! The RT application writes a node dataset (vertices) and a triangle
//! dataset (triangles on tetrahedral faces). We generate a 2-D rectangle
//! triangulation whose interface row is perturbed sinusoidally — the
//! classic initial condition of a Rayleigh-Taylor instability — so the
//! node distribution is irregular where the physics is.

use crate::mesh::{CellKind, UnstructuredMesh};

/// Triangulate an `nx × ny` vertex rectangle (two triangles per quad,
/// diagonal direction alternating by parity).
pub fn tri_rect(nx: usize, ny: usize) -> UnstructuredMesh {
    assert!(nx >= 2 && ny >= 2, "need at least 2 vertices per axis");
    let node = |x: usize, y: usize| (y * nx + x) as u32;
    let coords: Vec<[f64; 3]> = (0..nx * ny)
        .map(|i| [(i % nx) as f64, (i / nx) as f64, 0.0])
        .collect();
    let mut cells = Vec::with_capacity((nx - 1) * (ny - 1) * 2 * 3);
    for y in 0..ny - 1 {
        for x in 0..nx - 1 {
            let (a, b, c, d) = (
                node(x, y),
                node(x + 1, y),
                node(x, y + 1),
                node(x + 1, y + 1),
            );
            if (x + y) % 2 == 0 {
                cells.extend_from_slice(&[a, b, d, a, d, c]);
            } else {
                cells.extend_from_slice(&[a, b, c, b, d, c]);
            }
        }
    }
    let edges = UnstructuredMesh::edges_from_cells(CellKind::Triangle, &cells);
    UnstructuredMesh {
        coords,
        edges,
        cell_kind: CellKind::Triangle,
        cells,
    }
}

/// RT instability mesh: a rectangle with the mid-height interface rows
/// displaced by `amplitude * sin(2π modes x / width)`. Nodes near the
/// interface carry the perturbation, decaying away from it.
pub fn rt_interface_mesh(nx: usize, ny: usize, amplitude: f64, modes: usize) -> UnstructuredMesh {
    let mut m = tri_rect(nx, ny);
    let width = (nx - 1) as f64;
    let mid = (ny - 1) as f64 / 2.0;
    for (i, c) in m.coords.iter_mut().enumerate() {
        let y = (i / nx) as f64;
        if y == 0.0 || y == (ny - 1) as f64 {
            continue; // clamp boundaries
        }
        let x = (i % nx) as f64;
        let decay = (-((y - mid) / mid).powi(2) * 8.0).exp();
        c[1] += amplitude * decay * (2.0 * std::f64::consts::PI * modes as f64 * x / width).sin();
    }
    m
}

/// The RT application's two datasets: per-vertex values (e.g. density)
/// and per-triangle values (e.g. interface flags), sized to the mesh.
pub fn rt_dataset_sizes(m: &UnstructuredMesh) -> (usize, usize) {
    (m.num_nodes(), m.num_cells())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_counts() {
        let m = tri_rect(4, 3);
        m.validate().unwrap();
        assert_eq!(m.num_nodes(), 12);
        assert_eq!(m.num_cells(), 3 * 2 * 2);
        // Euler-ish sanity for a planar triangulation of a disc-like domain.
        assert_eq!(m.num_edges(), 23);
    }

    #[test]
    fn interface_perturbs_middle_only() {
        let flat = tri_rect(9, 9);
        let rt = rt_interface_mesh(9, 9, 0.4, 2);
        // Bottom row untouched.
        for x in 0..9 {
            assert_eq!(rt.coords[x], flat.coords[x]);
        }
        // Middle row moved.
        let mid_start = 4 * 9;
        let moved = (0..9).any(|x| rt.coords[mid_start + x][1] != flat.coords[mid_start + x][1]);
        assert!(moved, "interface row must be displaced");
        // Topology unchanged.
        assert_eq!(rt.edges, flat.edges);
    }

    #[test]
    fn dataset_sizes_match_paper_shape() {
        // Paper: node data 36 MB, triangle data 74 MB per step — about
        // 2 triangles per node. Our triangulation has the same ratio.
        let m = tri_rect(100, 100);
        let (nodes, tris) = rt_dataset_sizes(&m);
        let ratio = tris as f64 / nodes as f64;
        assert!((1.5..2.5).contains(&ratio), "triangles/nodes = {ratio}");
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let a = tri_rect(6, 6);
        let b = rt_interface_mesh(6, 6, 0.0, 3);
        assert_eq!(a.coords, b.coords);
    }
}
