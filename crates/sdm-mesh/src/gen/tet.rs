//! Tetrahedral box meshes (FUN3D stand-in).
//!
//! A `nx × ny × nz` vertex grid; each cube of 8 vertices splits into five
//! tetrahedra with orientation alternating by cube parity so shared faces
//! agree. Node coordinates are jittered deterministically so the mesh is
//! genuinely irregular geometrically (and so coordinate-based partitioners
//! like RCB have real work to do). Edge counts scale like the FUN3D mesh:
//! roughly 7 edges per node, vs the paper's 18M edges / 2.2M nodes ≈ 8.2.

use rayon::prelude::*;
use sdm_sim::rng::SplitMix64;

use crate::mesh::{CellKind, UnstructuredMesh};

/// Five-tet decomposition of the unit cube, even parity. Vertex ids are
/// local corner indices: bit 0 = x, bit 1 = y, bit 2 = z.
const TETS_EVEN: [[usize; 4]; 5] = [
    [0, 1, 2, 4],
    [1, 2, 3, 7],
    [1, 4, 5, 7],
    [2, 4, 6, 7],
    [1, 2, 4, 7],
];

/// Odd-parity decomposition (mirrored) so neighbouring cubes share
/// diagonals consistently.
const TETS_ODD: [[usize; 4]; 5] = [
    [0, 1, 3, 5],
    [0, 2, 3, 6],
    [0, 4, 5, 6],
    [3, 5, 6, 7],
    [0, 3, 5, 6],
];

/// Generate a tetrahedral mesh over an `nx × ny × nz` vertex grid.
/// `jitter` perturbs interior coordinates by up to that fraction of the
/// grid spacing (0.0 gives a regular lattice). Deterministic in `seed`.
pub fn tet_box(nx: usize, ny: usize, nz: usize, jitter: f64, seed: u64) -> UnstructuredMesh {
    assert!(
        nx >= 2 && ny >= 2 && nz >= 2,
        "need at least 2 vertices per axis"
    );
    assert!((0.0..0.5).contains(&jitter), "jitter must be in [0, 0.5)");
    let nn = nx * ny * nz;
    let node = |x: usize, y: usize, z: usize| (z * ny * nx + y * nx + x) as u32;

    // Coordinates with deterministic jitter (boundary nodes stay put so
    // the domain remains a box).
    let coords: Vec<[f64; 3]> = (0..nn)
        .into_par_iter()
        .map(|i| {
            let x = i % nx;
            let y = (i / nx) % ny;
            let z = i / (nx * ny);
            let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let j = |on_boundary: bool, rng: &mut SplitMix64| {
                if on_boundary || jitter == 0.0 {
                    0.0
                } else {
                    rng.next_range_f64(-jitter, jitter)
                }
            };
            [
                x as f64 + j(x == 0 || x == nx - 1, &mut rng),
                y as f64 + j(y == 0 || y == ny - 1, &mut rng),
                z as f64 + j(z == 0 || z == nz - 1, &mut rng),
            ]
        })
        .collect();

    // Cells: five tets per cube.
    let (cx, cy, cz) = (nx - 1, ny - 1, nz - 1);
    let mut cells: Vec<u32> = Vec::with_capacity(cx * cy * cz * 5 * 4);
    for z in 0..cz {
        for y in 0..cy {
            for x in 0..cx {
                let corner = |b: usize| node(x + (b & 1), y + ((b >> 1) & 1), z + ((b >> 2) & 1));
                let tets = if (x + y + z) % 2 == 0 {
                    &TETS_EVEN
                } else {
                    &TETS_ODD
                };
                for t in tets {
                    for &v in t {
                        cells.push(corner(v));
                    }
                }
            }
        }
    }
    let edges = UnstructuredMesh::edges_from_cells(CellKind::Tetrahedron, &cells);
    UnstructuredMesh {
        coords,
        edges,
        cell_kind: CellKind::Tetrahedron,
        cells,
    }
}

/// Pick grid dimensions for approximately `target_nodes` nodes with a
/// roughly cubic aspect ratio. Used by the figure harnesses to scale the
/// FUN3D workload up and down.
pub fn dims_for_nodes(target_nodes: usize) -> (usize, usize, usize) {
    let side = (target_nodes as f64).cbrt().round().max(2.0) as usize;
    (side, side, (target_nodes / (side * side)).max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_box_is_valid() {
        let m = tet_box(3, 3, 3, 0.2, 42);
        m.validate().unwrap();
        assert_eq!(m.num_nodes(), 27);
        assert_eq!(m.num_cells(), 8 * 5);
        assert!(m.num_edges() > 27, "must be well connected");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = tet_box(4, 3, 3, 0.3, 7);
        let b = tet_box(4, 3, 3, 0.3, 7);
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.edges, b.edges);
        let c = tet_box(4, 3, 3, 0.3, 8);
        assert_ne!(a.coords, c.coords, "different seed, different jitter");
        assert_eq!(a.edges, c.edges, "topology is seed-independent");
    }

    #[test]
    fn edge_to_node_ratio_matches_fun3d_scale() {
        // Paper: 18M edges / 2.2M nodes ~ 8.2 edges per node. Our 5-tet
        // box decomposition gives ~7 for interior-dominated meshes.
        let m = tet_box(12, 12, 12, 0.1, 1);
        let ratio = m.num_edges() as f64 / m.num_nodes() as f64;
        assert!(
            (5.0..9.0).contains(&ratio),
            "edges/node ratio {ratio} out of unstructured range"
        );
    }

    #[test]
    fn no_jitter_keeps_lattice() {
        let m = tet_box(3, 2, 2, 0.0, 9);
        assert_eq!(m.coords[0], [0.0, 0.0, 0.0]);
        assert_eq!(m.coords[1], [1.0, 0.0, 0.0]);
    }

    #[test]
    fn boundary_nodes_unjittered() {
        let m = tet_box(4, 4, 4, 0.4, 3);
        // Corner node must be exactly at its lattice point.
        assert_eq!(m.coords[0], [0.0, 0.0, 0.0]);
        let last = m.coords[m.num_nodes() - 1];
        assert_eq!(last, [3.0, 3.0, 3.0]);
    }

    #[test]
    fn neighbouring_cubes_conform() {
        // Conforming decomposition leaves no duplicate edges and the mesh
        // valid; also every node should appear in at least one cell.
        let m = tet_box(4, 3, 3, 0.0, 0);
        m.validate().unwrap();
        let mut seen = vec![false; m.num_nodes()];
        for &c in &m.cells {
            seen[c as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every node must belong to a cell");
    }

    #[test]
    fn dims_for_nodes_near_target() {
        let (x, y, z) = dims_for_nodes(1000);
        let n = x * y * z;
        assert!((500..2000).contains(&n), "requested ~1000, got {n}");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_grid_rejected() {
        tet_box(1, 3, 3, 0.0, 0);
    }
}
