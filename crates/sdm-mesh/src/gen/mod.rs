//! Synthetic mesh generators standing in for the paper's inputs.

pub mod tet;
pub mod tri;

pub use tet::tet_box;
pub use tri::{rt_interface_mesh, tri_rect};
