//! The `uns3d.msh`-style raw binary mesh file.
//!
//! The paper's Figure 3 imports from a headerless binary file whose
//! layout the application knows: `edge1` then `edge2` (each `totalEdges`
//! C ints), then data arrays associated with edges (each `totalEdges`
//! doubles), then data arrays associated with nodes (each `totalNodes`
//! doubles). The FUN3D benchmark uses 4 edge arrays + 4 node arrays;
//! Figure 3's walkthrough uses 1 + 1. This module computes those offsets
//! and builds/validates file images with deterministic array contents so
//! tests can verify end-to-end imports value-by-value.

use serde::{Deserialize, Serialize};

use crate::mesh::UnstructuredMesh;

/// Byte size of the C `int` used for edge ids in the mesh file.
pub const INT_SIZE: u64 = 4;
/// Byte size of the C `double` used for data arrays.
pub const DOUBLE_SIZE: u64 = 8;

/// Layout of a `uns3d.msh`-style file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uns3dLayout {
    /// Number of edges (`totalEdges`).
    pub total_edges: u64,
    /// Number of nodes (`totalNodes`).
    pub total_nodes: u64,
    /// Number of per-edge f64 data arrays following the index arrays.
    pub n_edge_arrays: usize,
    /// Number of per-node f64 data arrays following the edge arrays.
    pub n_node_arrays: usize,
}

impl Uns3dLayout {
    /// FUN3D benchmark shape: 4 edge arrays + 4 node arrays.
    pub fn fun3d(total_edges: u64, total_nodes: u64) -> Self {
        Self {
            total_edges,
            total_nodes,
            n_edge_arrays: 4,
            n_node_arrays: 4,
        }
    }

    /// Byte offset of `edge1`.
    pub fn edge1_offset(&self) -> u64 {
        0
    }

    /// Byte offset of `edge2`.
    pub fn edge2_offset(&self) -> u64 {
        self.total_edges * INT_SIZE
    }

    /// Byte offset of the `k`-th per-edge data array (Figure 3's `x` is
    /// `k = 0`: `2 * totalEdges * sizeof(int)`).
    pub fn edge_array_offset(&self, k: usize) -> u64 {
        assert!(k < self.n_edge_arrays, "edge array index {k} out of range");
        2 * self.total_edges * INT_SIZE + k as u64 * self.total_edges * DOUBLE_SIZE
    }

    /// Byte offset of the `k`-th per-node data array.
    pub fn node_array_offset(&self, k: usize) -> u64 {
        assert!(k < self.n_node_arrays, "node array index {k} out of range");
        2 * self.total_edges * INT_SIZE
            + self.n_edge_arrays as u64 * self.total_edges * DOUBLE_SIZE
            + k as u64 * self.total_nodes * DOUBLE_SIZE
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        2 * self.total_edges * INT_SIZE
            + self.n_edge_arrays as u64 * self.total_edges * DOUBLE_SIZE
            + self.n_node_arrays as u64 * self.total_nodes * DOUBLE_SIZE
    }

    /// Deterministic synthetic value of edge array `k`, element `i`
    /// (tests verify imports against this).
    pub fn edge_value(k: usize, i: u64) -> f64 {
        (k as f64 + 1.0) * 1.0e9 + i as f64
    }

    /// Deterministic synthetic value of node array `k`, element `i`.
    pub fn node_value(k: usize, i: u64) -> f64 {
        -((k as f64 + 1.0) * 1.0e9) - i as f64
    }

    /// Build the complete file image for `mesh` (must match the layout's
    /// edge/node counts).
    pub fn build_image(&self, mesh: &UnstructuredMesh) -> Vec<u8> {
        assert_eq!(
            mesh.num_edges() as u64,
            self.total_edges,
            "edge count mismatch"
        );
        assert_eq!(
            mesh.num_nodes() as u64,
            self.total_nodes,
            "node count mismatch"
        );
        let mut img = Vec::with_capacity(self.file_len() as usize);
        let (e1, e2) = mesh.indirection_arrays();
        for v in &e1 {
            img.extend_from_slice(&v.to_ne_bytes());
        }
        for v in &e2 {
            img.extend_from_slice(&v.to_ne_bytes());
        }
        for k in 0..self.n_edge_arrays {
            for i in 0..self.total_edges {
                img.extend_from_slice(&Self::edge_value(k, i).to_ne_bytes());
            }
        }
        for k in 0..self.n_node_arrays {
            for i in 0..self.total_nodes {
                img.extend_from_slice(&Self::node_value(k, i).to_ne_bytes());
            }
        }
        debug_assert_eq!(img.len() as u64, self.file_len());
        img
    }

    /// Parse `edge1`/`edge2` back out of a file image.
    pub fn read_edges(&self, image: &[u8]) -> (Vec<i32>, Vec<i32>) {
        let n = self.total_edges as usize;
        let read_i32 =
            |bytes: &[u8], at: usize| i32::from_ne_bytes(bytes[at..at + 4].try_into().unwrap());
        let mut e1 = Vec::with_capacity(n);
        let mut e2 = Vec::with_capacity(n);
        for i in 0..n {
            e1.push(read_i32(image, self.edge1_offset() as usize + i * 4));
            e2.push(read_i32(image, self.edge2_offset() as usize + i * 4));
        }
        (e1, e2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::tet_box;

    #[test]
    fn offsets_match_figure3_arithmetic() {
        let l = Uns3dLayout {
            total_edges: 100,
            total_nodes: 40,
            n_edge_arrays: 1,
            n_node_arrays: 1,
        };
        assert_eq!(l.edge1_offset(), 0);
        assert_eq!(l.edge2_offset(), 100 * 4);
        // Figure 3: file_offset = 2 * totalEdges * sizeof(int)
        assert_eq!(l.edge_array_offset(0), 2 * 100 * 4);
        // Figure 3: file_offset += totalEdges * sizeof(double)
        assert_eq!(l.node_array_offset(0), 2 * 100 * 4 + 100 * 8);
        assert_eq!(l.file_len(), 800 + 800 + 320);
    }

    #[test]
    fn fun3d_layout_has_four_and_four() {
        let l = Uns3dLayout::fun3d(18, 4);
        assert_eq!(l.n_edge_arrays, 4);
        assert_eq!(l.n_node_arrays, 4);
        assert_eq!(l.edge_array_offset(3), 2 * 18 * 4 + 3 * 18 * 8);
    }

    #[test]
    fn image_round_trips_edges() {
        let m = tet_box(3, 3, 2, 0.0, 0);
        let l = Uns3dLayout {
            total_edges: m.num_edges() as u64,
            total_nodes: m.num_nodes() as u64,
            n_edge_arrays: 2,
            n_node_arrays: 1,
        };
        let img = l.build_image(&m);
        assert_eq!(img.len() as u64, l.file_len());
        let (e1, e2) = l.read_edges(&img);
        let (want1, want2) = m.indirection_arrays();
        assert_eq!(e1, want1);
        assert_eq!(e2, want2);
    }

    #[test]
    fn data_values_at_expected_offsets() {
        let m = tet_box(3, 2, 2, 0.0, 0);
        let l = Uns3dLayout {
            total_edges: m.num_edges() as u64,
            total_nodes: m.num_nodes() as u64,
            n_edge_arrays: 2,
            n_node_arrays: 2,
        };
        let img = l.build_image(&m);
        let f64_at =
            |off: u64| f64::from_ne_bytes(img[off as usize..off as usize + 8].try_into().unwrap());
        assert_eq!(
            f64_at(l.edge_array_offset(1)),
            Uns3dLayout::edge_value(1, 0)
        );
        assert_eq!(
            f64_at(l.edge_array_offset(0) + 8 * 3),
            Uns3dLayout::edge_value(0, 3)
        );
        assert_eq!(
            f64_at(l.node_array_offset(1) + 8),
            Uns3dLayout::node_value(1, 1)
        );
    }

    #[test]
    #[should_panic(expected = "edge count mismatch")]
    fn mismatched_mesh_rejected() {
        let m = tet_box(3, 2, 2, 0.0, 0);
        let l = Uns3dLayout::fun3d(999, m.num_nodes() as u64);
        l.build_image(&m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_array_index_panics() {
        let l = Uns3dLayout::fun3d(10, 5);
        l.edge_array_offset(4);
    }
}
