//! Reverse Cuthill-McKee node reordering.
//!
//! Not in the paper, but a natural SDM extension: renumbering nodes for
//! locality shrinks the segment count of map-array file views (more
//! adjacent global indices coalesce), which the ablation benchmarks
//! measure. Classic BFS-by-degree algorithm.

use std::collections::VecDeque;

use crate::csr::CsrGraph;

/// Compute the RCM permutation: `perm[new_id] = old_id`. Handles
/// disconnected graphs by restarting from the minimum-degree unvisited
/// node.
pub fn rcm_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_nodes();
    let mut visited = vec![false; n];
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    // Nodes sorted by degree for start selection.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| g.degree(v as usize));

    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        visited[start as usize] = true;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let mut nbrs: Vec<u32> = g
                .neighbors(v as usize)
                .iter()
                .copied()
                .filter(|&u| !visited[u as usize])
                .collect();
            nbrs.sort_by_key(|&u| g.degree(u as usize));
            for u in nbrs {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    order
}

/// Invert a permutation: `inv[old_id] = new_id`.
pub fn invert(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old as usize] = new as u32;
    }
    inv
}

/// Graph bandwidth: max |new(u) - new(v)| over edges, under `inv`
/// (`inv[old] = new`). Lower is better for locality.
pub fn bandwidth(g: &CsrGraph, inv: &[u32]) -> usize {
    let mut bw = 0usize;
    for v in 0..g.num_nodes() {
        for &u in g.neighbors(v) {
            let d = inv[v].abs_diff(inv[u as usize]) as usize;
            bw = bw.max(d);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rcm_is_permutation() {
        let g = CsrGraph::from_edges(6, &[(0, 3), (3, 5), (1, 4), (4, 2), (2, 0)]);
        let p = rcm_order(&g);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<u32>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_path() {
        // A path graph numbered badly: 0-5-1-4-2-3 as a path.
        let path = [(0u32, 5u32), (5, 1), (1, 4), (4, 2), (2, 3)];
        let g = CsrGraph::from_edges(6, &path);
        let identity: Vec<u32> = (0..6).collect();
        let before = bandwidth(&g, &identity);
        let perm = rcm_order(&g);
        let after = bandwidth(&g, &invert(&perm));
        assert_eq!(
            after, 1,
            "a path reordered by RCM has bandwidth 1, got {after}"
        );
        assert!(after < before);
    }

    #[test]
    fn disconnected_components_all_ordered() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let p = rcm_order(&g);
        assert_eq!(p.len(), 5);
        let mut sorted = p;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn invert_round_trips() {
        let perm = vec![2u32, 0, 3, 1];
        let inv = invert(&perm);
        for (new, &old) in perm.iter().enumerate() {
            assert_eq!(inv[old as usize], new as u32);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(rcm_order(&g).is_empty());
    }
}
