//! Unstructured meshes: generation, edge extraction, graphs, file format.
//!
//! The paper's workloads are a tetrahedral vertex-centered FUN3D mesh
//! (~18M edges, ~2.2M nodes, from NASA Langley) and Rayleigh-Taylor
//! tet/triangle meshes. Those inputs are unavailable, so this crate
//! generates synthetic meshes with the same structure — nodes connected
//! by edges (the `edge1`/`edge2` indirection arrays), data arrays per
//! edge and per node — and writes them in the `uns3d.msh`-style raw
//! binary layout SDM imports from.
//!
//! * [`mesh::UnstructuredMesh`] — nodes, edges, cells.
//! * [`gen`] — tetrahedral box meshes (FUN3D stand-in) and 2-D triangle
//!   meshes with a perturbed interface (Rayleigh-Taylor stand-in).
//! * [`csr::CsrGraph`] — compressed adjacency built from edge lists, the
//!   input to `sdm-partition`.
//! * [`format::Uns3dLayout`] — byte layout of the mesh file: `edge1`,
//!   `edge2` (i32 each), then edge data arrays (f64), then node data
//!   arrays (f64), exactly the offsets Figure 3 of the paper computes.
//! * [`rcm`] — reverse Cuthill-McKee reordering (locality ablation).

pub mod csr;
pub mod format;
pub mod gen;
pub mod mesh;
pub mod rcm;

pub use csr::CsrGraph;
pub use format::Uns3dLayout;
pub use mesh::{CellKind, UnstructuredMesh};
