//! A netCDF-classic veneer over [`crate::container::SciFile`].
//!
//! Mirrors the netCDF 2 programming model the paper cites as future
//! work: a file is created in **define mode**, where dimensions and
//! variables are declared; `enddef` switches to **data mode**, where
//! records are written and read. One dimension may be declared
//! *unlimited* (the record dimension); a variable whose first dimension
//! is the record dimension grows one record per `put_record`, and each
//! record maps onto one SDM timestep underneath — which is exactly the
//! "SDM as a strategy for implementing netCDF" experiment. Underneath,
//! every variable is addressed by a dataset slot the container resolved
//! once at definition time, so record I/O never re-resolves names.

use std::collections::HashMap;
use std::sync::Arc;

use sdm_core::{SdmConfig, SdmType, SharedStore};
use sdm_mpi::pod::Pod;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::attr::AttrValue;
use crate::container::{SciError, SciFile, SciResult};

/// The unlimited (record) dimension's declared length.
pub const NC_UNLIMITED: u64 = 0;

#[derive(Debug, Clone)]
struct VarDef {
    dims: Vec<String>,
    /// Whether the first dimension is the record dimension.
    has_record_dim: bool,
    /// Elements per record (product of the fixed dimensions).
    record_size: u64,
}

/// Mode of an [`NcFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Define,
    Data,
}

/// A netCDF-classic-style file.
///
/// All methods that touch data or metadata are collective across the
/// communicator, like the underlying SDM calls.
pub struct NcFile {
    sci: SciFile,
    mode: Mode,
    dims: HashMap<String, u64>,
    record_dim: Option<String>,
    vars: HashMap<String, VarDef>,
    /// Records written per record variable.
    num_records: HashMap<String, i64>,
}

impl NcFile {
    /// Create a new dataset (netCDF `nccreate`), starting in define
    /// mode. Collective.
    pub fn create(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        name: &str,
        cfg: SdmConfig,
    ) -> SciResult<Self> {
        let sci = SciFile::create(comm, pfs, store, name, cfg)?;
        Ok(Self {
            sci,
            mode: Mode::Define,
            dims: HashMap::new(),
            record_dim: None,
            vars: HashMap::new(),
            num_records: HashMap::new(),
        })
    }

    /// Declare a dimension (`ncdimdef`). Length [`NC_UNLIMITED`] makes it
    /// the record dimension; only one is allowed. Define mode only.
    pub fn def_dim(&mut self, comm: &mut Comm, name: &str, len: u64) -> SciResult<()> {
        self.require(Mode::Define)?;
        if len == NC_UNLIMITED {
            if self.record_dim.is_some() {
                return Err(SciError::Usage(
                    "only one unlimited dimension is allowed".into(),
                ));
            }
            if self.dims.contains_key(name) {
                return Err(SciError::Usage(format!("dimension {name} already defined")));
            }
            self.record_dim = Some(name.to_string());
            self.dims.insert(name.to_string(), NC_UNLIMITED);
            // Recorded as an attribute so reopen can identify it.
            self.sci
                .set_attr(comm, "/", "_nc_record_dim", AttrValue::from(name))?;
            return Ok(());
        }
        if self.dims.contains_key(name) {
            return Err(SciError::Usage(format!("dimension {name} already defined")));
        }
        self.sci.define_dim(comm, name, len)?;
        self.dims.insert(name.to_string(), len);
        Ok(())
    }

    /// Declare a variable over dimensions (`ncvardef`), outermost first.
    /// The record dimension may only appear first. Define mode only.
    pub fn def_var(
        &mut self,
        comm: &mut Comm,
        name: &str,
        dtype: SdmType,
        dims: &[&str],
    ) -> SciResult<()> {
        self.require(Mode::Define)?;
        if dims.is_empty() {
            return Err(SciError::Usage(
                "a variable needs at least one dimension".into(),
            ));
        }
        for (i, d) in dims.iter().enumerate() {
            let len = self
                .dims
                .get(*d)
                .copied()
                .ok_or_else(|| SciError::Usage(format!("unknown dimension {d}")))?;
            if len == NC_UNLIMITED && i != 0 {
                return Err(SciError::Usage(format!(
                    "record dimension {d} may only be the first dimension"
                )));
            }
        }
        let has_record_dim = self.dims[dims[0]] == NC_UNLIMITED;
        let fixed = if has_record_dim { &dims[1..] } else { dims };
        if has_record_dim && fixed.is_empty() {
            return Err(SciError::Usage(
                "a record variable needs at least one fixed dimension".into(),
            ));
        }
        // The container dataset covers one record; records append as SDM
        // timesteps.
        self.sci
            .create_dataset(comm, &format!("/{name}"), dtype, fixed)?;
        let record_size = fixed.iter().map(|d| self.dims[*d]).product();
        self.vars.insert(
            name.to_string(),
            VarDef {
                dims: dims.iter().map(|s| s.to_string()).collect(),
                has_record_dim,
                record_size,
            },
        );
        self.num_records.insert(name.to_string(), 0);
        Ok(())
    }

    /// Attach an attribute to a variable, or to the file when `var` is
    /// `None` (`ncattput`). Allowed in both modes, as in netCDF.
    pub fn put_att(
        &mut self,
        comm: &mut Comm,
        var: Option<&str>,
        name: &str,
        value: AttrValue,
    ) -> SciResult<()> {
        let path = match var {
            None => "/".to_string(),
            Some(v) => {
                if !self.vars.contains_key(v) {
                    return Err(SciError::Usage(format!("no variable {v}")));
                }
                format!("/{v}")
            }
        };
        self.sci.set_attr(comm, &path, name, value)
    }

    /// Read an attribute (`ncattget`); local metadata query.
    pub fn get_att(&self, var: Option<&str>, name: &str) -> SciResult<Option<AttrValue>> {
        let path = match var {
            None => "/".to_string(),
            Some(v) => format!("/{v}"),
        };
        self.sci.get_attr(&path, name)
    }

    /// Leave define mode (`ncendef`). Collective (barrier through the
    /// underlying attribute write).
    pub fn enddef(&mut self, comm: &mut Comm) -> SciResult<()> {
        self.require(Mode::Define)?;
        self.sci
            .set_attr(comm, "/", "_nc_defined", AttrValue::Int(1))?;
        self.mode = Mode::Data;
        Ok(())
    }

    /// Install this rank's element map for a variable (which global
    /// elements of each record this rank holds, in local order).
    /// Data mode only.
    pub fn set_decomposition(&mut self, comm: &mut Comm, var: &str, map: &[u64]) -> SciResult<()> {
        self.require(Mode::Data)?;
        let def = self.var(var)?;
        if let Some(&m) = map.iter().max() {
            if m >= def.record_size {
                return Err(SciError::Usage(format!(
                    "map entry {m} out of range for record size {}",
                    def.record_size
                )));
            }
        }
        self.sci.set_view(comm, &format!("/{var}"), map)
    }

    /// Write one record of a record variable (`ncrecput`-style). For
    /// fixed variables, `record` must be 0. Data mode only; collective.
    pub fn put_record<T: Pod>(
        &mut self,
        comm: &mut Comm,
        var: &str,
        record: i64,
        buf: &[T],
    ) -> SciResult<()> {
        self.require(Mode::Data)?;
        let def = self.var(var)?.clone();
        if !def.has_record_dim && record != 0 {
            return Err(SciError::Usage(format!("{var} is not a record variable")));
        }
        self.sci.write(comm, &format!("/{var}"), record, buf)?;
        let n = self.num_records.entry(var.to_string()).or_insert(0);
        *n = (*n).max(record + 1);
        Ok(())
    }

    /// Read one record back (`ncrecget`-style). Data mode only; collective.
    pub fn get_record<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        var: &str,
        record: i64,
        out: &mut [T],
    ) -> SciResult<()> {
        self.require(Mode::Data)?;
        self.sci.read(comm, &format!("/{var}"), record, out)
    }

    /// Number of records written to a record variable so far.
    pub fn num_records(&self, var: &str) -> i64 {
        self.num_records.get(var).copied().unwrap_or(0)
    }

    /// Elements per record of a variable.
    pub fn record_size(&self, var: &str) -> SciResult<u64> {
        Ok(self.var(var)?.record_size)
    }

    /// Declared dimension names of a variable, outermost first.
    pub fn var_dims(&self, var: &str) -> SciResult<Vec<String>> {
        Ok(self.var(var)?.dims.clone())
    }

    /// Variable names, sorted.
    pub fn var_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.vars.keys().cloned().collect();
        v.sort();
        v
    }

    /// Close the file. Collective.
    pub fn close(self, comm: &mut Comm) -> SciResult<()> {
        self.sci.close(comm)
    }

    fn var(&self, name: &str) -> SciResult<&VarDef> {
        self.vars
            .get(name)
            .ok_or_else(|| SciError::Usage(format!("no variable {name}")))
    }

    fn require(&self, mode: Mode) -> SciResult<()> {
        if self.mode != mode {
            return Err(SciError::Usage(format!(
                "operation requires {:?} mode, file is in {:?} mode",
                mode, self.mode
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mpi::World;
    use sdm_sim::MachineConfig;

    fn fixtures() -> (Arc<Pfs>, SharedStore) {
        let db = Arc::new(sdm_metadb::Database::new());
        (
            Pfs::new(MachineConfig::test_tiny()),
            sdm_core::CachedStore::shared(&db),
        )
    }

    #[test]
    fn define_then_data_mode_flow() {
        let (pfs, store) = fixtures();
        let n = 2usize;
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut nc =
                    NcFile::create(c, &pfs, &store, "climate", SdmConfig::default()).unwrap();
                nc.def_dim(c, "time", NC_UNLIMITED).unwrap();
                nc.def_dim(c, "cell", 12).unwrap();
                nc.def_var(c, "temp", SdmType::Double, &["time", "cell"])
                    .unwrap();
                nc.put_att(c, Some("temp"), "units", AttrValue::from("K"))
                    .unwrap();
                nc.put_att(c, None, "title", AttrValue::from("toy climate"))
                    .unwrap();
                // Writing before enddef is an error.
                assert!(nc.put_record(c, "temp", 0, &[0.0f64; 6]).is_err());
                nc.enddef(c).unwrap();

                let map: Vec<u64> = (0..6).map(|i| i * 2 + c.rank() as u64).collect();
                nc.set_decomposition(c, "temp", &map).unwrap();
                for t in 0..3i64 {
                    let rec: Vec<f64> = map.iter().map(|&g| g as f64 + 100.0 * t as f64).collect();
                    nc.put_record(c, "temp", t, &rec).unwrap();
                }
                assert_eq!(nc.num_records("temp"), 3);
                let mut back = vec![0.0f64; 6];
                nc.get_record(c, "temp", 2, &mut back).unwrap();
                nc.close(c).unwrap();
                (map, back)
            }
        });
        for (map, back) in out {
            let want: Vec<f64> = map.iter().map(|&g| g as f64 + 200.0).collect();
            assert_eq!(back, want);
        }
    }

    #[test]
    fn define_mode_rules() {
        let (pfs, store) = fixtures();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut nc =
                    NcFile::create(c, &pfs, &store, "rules", SdmConfig::default()).unwrap();
                nc.def_dim(c, "t", NC_UNLIMITED).unwrap();
                // Second unlimited dim rejected.
                assert!(nc.def_dim(c, "t2", NC_UNLIMITED).is_err());
                nc.def_dim(c, "n", 4).unwrap();
                assert!(nc.def_dim(c, "n", 5).is_err(), "redefinition");
                // Record dim must come first.
                assert!(nc.def_var(c, "bad", SdmType::Double, &["n", "t"]).is_err());
                // Record-only variable rejected.
                assert!(nc.def_var(c, "bad2", SdmType::Double, &["t"]).is_err());
                nc.def_var(c, "v", SdmType::Double, &["t", "n"]).unwrap();
                assert_eq!(nc.record_size("v").unwrap(), 4);
                nc.enddef(c).unwrap();
                // Define-mode ops now fail.
                assert!(nc.def_dim(c, "later", 3).is_err());
                assert!(nc.def_var(c, "later", SdmType::Double, &["n"]).is_err());
                nc.close(c).unwrap();
            }
        });
    }

    #[test]
    fn fixed_variable_single_record() {
        let (pfs, store) = fixtures();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut nc =
                    NcFile::create(c, &pfs, &store, "fixed", SdmConfig::default()).unwrap();
                nc.def_dim(c, "n", 5).unwrap();
                nc.def_var(c, "coords", SdmType::Double, &["n"]).unwrap();
                nc.enddef(c).unwrap();
                let map: Vec<u64> = (0..5).collect();
                nc.set_decomposition(c, "coords", &map).unwrap();
                let data = [1.0f64, 2.0, 3.0, 4.0, 5.0];
                nc.put_record(c, "coords", 0, &data).unwrap();
                // Record index 1 on a fixed variable is an error.
                assert!(nc.put_record(c, "coords", 1, &data).is_err());
                let mut back = [0.0f64; 5];
                nc.get_record(c, "coords", 0, &mut back).unwrap();
                assert_eq!(back, data);
                nc.close(c).unwrap();
            }
        });
    }

    #[test]
    fn decomposition_bounds_checked() {
        let (pfs, store) = fixtures();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut nc =
                    NcFile::create(c, &pfs, &store, "bounds", SdmConfig::default()).unwrap();
                nc.def_dim(c, "n", 3).unwrap();
                nc.def_var(c, "v", SdmType::Double, &["n"]).unwrap();
                nc.enddef(c).unwrap();
                assert!(nc.set_decomposition(c, "v", &[0, 1, 7]).is_err());
                assert!(nc.set_decomposition(c, "missing", &[0]).is_err());
                nc.close(c).unwrap();
            }
        });
    }

    #[test]
    fn attributes_round_trip() {
        let (pfs, store) = fixtures();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut nc = NcFile::create(c, &pfs, &store, "atts", SdmConfig::default()).unwrap();
                nc.def_dim(c, "n", 2).unwrap();
                nc.def_var(c, "v", SdmType::Double, &["n"]).unwrap();
                nc.put_att(c, None, "version", AttrValue::Int(3)).unwrap();
                nc.put_att(c, Some("v"), "scale", AttrValue::Double(0.5))
                    .unwrap();
                assert!(nc.put_att(c, Some("w"), "x", AttrValue::Int(0)).is_err());
                assert_eq!(
                    nc.get_att(None, "version").unwrap(),
                    Some(AttrValue::Int(3))
                );
                assert_eq!(
                    nc.get_att(Some("v"), "scale").unwrap(),
                    Some(AttrValue::Double(0.5))
                );
                nc.enddef(c).unwrap();
                // Attributes are writable in data mode too.
                nc.put_att(c, None, "history", AttrValue::from("created"))
                    .unwrap();
                nc.close(c).unwrap();
            }
        });
    }
}
