//! Hierarchical, self-describing containers over SDM.
//!
//! A [`SciFile`] is the HDF-shaped object the paper's summary proposes
//! building on SDM: groups addressed by `/`-separated paths, named
//! dimensions, datasets defined over dimension lists, and typed
//! attributes on groups and datasets. Four extra metadata tables sit
//! beside SDM's six, declared as the typed relations of
//! [`crate::schema`] and accessed exclusively through compiled
//! statements; the dataset bytes themselves move through
//! [`Sdm::write_slot`] / [`Sdm::read_slot`] over slots resolved once at
//! dataset creation, so every container write is a collective
//! noncontiguous MPI-IO operation under the configured Level 1/2/3 file
//! organization with no name resolution on the data path.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use sdm_core::dataset::DatasetDesc;
use sdm_core::store::MetadataStore;
use sdm_core::{ensure_table, DatasetSlot, Sdm, SdmConfig, SdmError, SdmType, SharedStore};
use sdm_metadb::stmt::{param, Insert, Query, Update};
use sdm_metadb::{stmt_once, DbError, DbResult, Relation, TypedColumn, Value};
use sdm_mpi::pod::Pod;
use sdm_mpi::Comm;
use sdm_pfs::Pfs;

use crate::attr::AttrValue;
use crate::schema::{
    SciAttrCol, SciAttrRow, SciDatasetCol, SciDatasetRow, SciDimCol, SciDimRow, SciGroupCol,
    SciGroupRow, SCI_TABLES,
};

/// Errors from the container layer.
#[derive(Debug)]
pub enum SciError {
    /// Underlying SDM failure.
    Sdm(SdmError),
    /// Metadata database failure.
    Db(DbError),
    /// API misuse (bad path, unknown dimension, redefinition...).
    Usage(String),
}

impl std::fmt::Display for SciError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SciError::Sdm(e) => write!(f, "sdm: {e}"),
            SciError::Db(e) => write!(f, "metadata db: {e}"),
            SciError::Usage(m) => write!(f, "usage: {m}"),
        }
    }
}

impl std::error::Error for SciError {}

impl From<SdmError> for SciError {
    fn from(e: SdmError) -> Self {
        SciError::Sdm(e)
    }
}

impl From<DbError> for SciError {
    fn from(e: DbError) -> Self {
        SciError::Db(e)
    }
}

/// Container-layer result.
pub type SciResult<T> = Result<T, SciError>;

/// Description of one dataset in a container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Absolute path (`/flow/pressure`).
    pub path: String,
    /// Element type.
    pub dtype: SdmType,
    /// Dimension names, outermost first.
    pub dims: Vec<String>,
    /// Total element count (product of dimension lengths).
    pub global_size: u64,
}

struct DsEntry {
    /// Resolved once at creation/reopen: container reads and writes
    /// never re-resolve the dataset by name inside SDM.
    slot: DatasetSlot,
    info: DatasetInfo,
}

/// Set (or replace) an attribute row: `UPDATE` in place, falling back
/// to `INSERT` for a new attribute, the whole read-modify-write inside
/// one owner-aware transaction ([`sdm_metadb::Database::with_owned_tx`]
/// joins a transaction the calling thread already owns). Updating in
/// place — instead of DELETE + INSERT — means a concurrent reader can
/// never observe the attribute missing, and the transaction serializes
/// racing writers of the same attribute.
fn upsert_attr(
    store: &dyn MetadataStore,
    runid: i64,
    path: &str,
    name: &str,
    value: &AttrValue,
) -> DbResult<()> {
    let (i, d, t) = value.to_columns();
    store.database().with_owned_tx(|| {
        let update = stmt_once!(Update::<SciAttrRow>::new()
            .set(SciAttrCol::Vtype, param(0))
            .set(SciAttrCol::Ival, param(1))
            .set(SciAttrCol::Dval, param(2))
            .set(SciAttrCol::Tval, param(3))
            .filter(
                SciAttrCol::Runid
                    .eq(param(4))
                    .and(SciAttrCol::Path.eq(param(5)))
                    .and(SciAttrCol::Name.eq(param(6))),
            )
            .compile());
        let rs = store.run(
            update,
            &[
                Value::from(value.type_tag()),
                i.clone(),
                d.clone(),
                t.clone(),
                Value::Int(runid),
                Value::from(path),
                Value::from(name),
            ],
        )?;
        if rs.affected == 0 {
            store.run(
                stmt_once!(Insert::<SciAttrRow>::prepared()),
                &[
                    Value::Int(runid),
                    Value::from(path),
                    Value::from(name),
                    Value::from(value.type_tag()),
                    i,
                    d,
                    t,
                ],
            )?;
        }
        Ok(())
    })
}

/// Read an attribute row back (the query side of [`upsert_attr`]).
fn lookup_attr(
    store: &dyn MetadataStore,
    runid: i64,
    path: &str,
    name: &str,
) -> DbResult<Option<AttrValue>> {
    let rs = store.run(
        stmt_once!(Query::<SciAttrRow>::filter(
            SciAttrCol::Runid
                .eq(param(0))
                .and(SciAttrCol::Path.eq(param(1)))
                .and(SciAttrCol::Name.eq(param(2))),
        )
        .select(&[
            SciAttrCol::Vtype,
            SciAttrCol::Ival,
            SciAttrCol::Dval,
            SciAttrCol::Tval,
        ])
        .compile()),
        &[Value::Int(runid), Value::from(path), Value::from(name)],
    )?;
    Ok(rs.first().and_then(|r| {
        AttrValue::from_columns(r[0].as_str().unwrap_or_default(), &r[1], &r[2], &r[3])
    }))
}

/// A hierarchical scientific container backed by SDM.
///
/// All mutating methods are **collective** (every rank of the
/// communicator must call them with identical arguments); rank 0 writes
/// the metadata rows, exactly as SDM itself does.
pub struct SciFile {
    sdm: Sdm,
    groups: BTreeSet<String>,
    dims: BTreeMap<String, u64>,
    datasets: HashMap<String, DsEntry>,
    /// Creation order of dataset paths (= SDM group-handle order).
    order: Vec<String>,
}

fn validate_path(path: &str) -> SciResult<()> {
    if path == "/" {
        return Ok(());
    }
    if !path.starts_with('/') || path.ends_with('/') {
        return Err(SciError::Usage(format!(
            "path {path:?} must start with '/' and not end with one"
        )));
    }
    if path.split('/').skip(1).any(str::is_empty) {
        return Err(SciError::Usage(format!(
            "path {path:?} has an empty segment"
        )));
    }
    Ok(())
}

fn parent_of(path: &str) -> &str {
    match path.rfind('/') {
        Some(0) | None => "/",
        Some(i) => &path[..i],
    }
}

impl SciFile {
    /// Create a fresh container named `name` (the SDM application name).
    /// Collective.
    pub fn create(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        name: &str,
        cfg: SdmConfig,
    ) -> SciResult<Self> {
        let mut sdm = Sdm::initialize_with(comm, pfs, store, name, cfg)?;
        sdm.record_run(comm, 0)?;
        if comm.rank() == 0 {
            for desc in SCI_TABLES {
                ensure_table(store.as_ref(), desc)?;
            }
            store.run(
                stmt_once!(Insert::<SciGroupRow>::prepared()),
                &SciGroupRow {
                    runid: sdm.runid(),
                    path: "/".to_string(),
                }
                .into_row(),
            )?;
        }
        comm.barrier();
        let mut groups = BTreeSet::new();
        groups.insert("/".to_string());
        Ok(Self {
            sdm,
            groups,
            dims: BTreeMap::new(),
            datasets: HashMap::new(),
            order: Vec::new(),
        })
    }

    /// Reopen the latest container run named `name`: rebuilds the whole
    /// group/dimension/dataset tree from the metadata database, then
    /// serves reads through SDM. Collective.
    pub fn open(
        comm: &mut Comm,
        pfs: &Arc<Pfs>,
        store: &SharedStore,
        name: &str,
        cfg: SdmConfig,
    ) -> SciResult<Self> {
        let runid = store
            .latest_runid_for_app(name)?
            .ok_or_else(|| SciError::Usage(format!("no container named {name:?}")))?;
        let mut sdm = Sdm::attach(comm, pfs, store, name, runid, cfg)?;

        let mut groups = BTreeSet::new();
        let rs = store.run(
            stmt_once!(
                Query::<SciGroupRow>::filter(SciGroupCol::Runid.eq(param(0)))
                    .select(&[SciGroupCol::Path])
                    .compile()
            ),
            &[Value::Int(runid)],
        )?;
        for r in &rs.rows {
            groups.insert(r[0].as_str().unwrap_or("/").to_string());
        }
        if groups.is_empty() {
            return Err(SciError::Usage(format!(
                "{name:?} exists but is not a SciFile container"
            )));
        }

        let mut dims = BTreeMap::new();
        let rs = store.run(
            stmt_once!(Query::<SciDimRow>::filter(SciDimCol::Runid.eq(param(0)))
                .select(&[SciDimCol::Name, SciDimCol::Len])
                .compile()),
            &[Value::Int(runid)],
        )?;
        for r in &rs.rows {
            dims.insert(
                r[0].as_str().unwrap_or_default().to_string(),
                r[1].as_i64().unwrap_or(0) as u64,
            );
        }

        let rs = store.run(
            stmt_once!(
                Query::<SciDatasetRow>::filter(SciDatasetCol::Runid.eq(param(0)))
                    .select(&[
                        SciDatasetCol::Ghandle,
                        SciDatasetCol::Path,
                        SciDatasetCol::DataType,
                        SciDatasetCol::Dims,
                        SciDatasetCol::GlobalSize,
                    ])
                    .order_by(SciDatasetCol::Ghandle)
                    .compile()
            ),
            &[Value::Int(runid)],
        )?;
        let mut datasets = HashMap::new();
        let mut order = Vec::new();
        for r in &rs.rows {
            let path = r[1].as_str().unwrap_or_default().to_string();
            let dtype = match r[2].as_str() {
                Some("INTEGER") => SdmType::Int32,
                Some("INTEGER8") => SdmType::Int64,
                _ => SdmType::Double,
            };
            let dim_names: Vec<String> = match r[3].as_str() {
                Some("") | None => Vec::new(),
                Some(s) => s.split(',').map(str::to_string).collect(),
            };
            let global_size = r[4].as_i64().unwrap_or(0) as u64;
            let reg = sdm
                .group(comm)
                .dataset_desc(DatasetDesc {
                    data_type: dtype,
                    ..DatasetDesc::doubles(path.clone(), global_size)
                })
                .attach()?;
            let slot = reg.slot(&path)?;
            let info = DatasetInfo {
                path: path.clone(),
                dtype,
                dims: dim_names,
                global_size,
            };
            order.push(path.clone());
            datasets.insert(path, DsEntry { slot, info });
        }
        Ok(Self {
            sdm,
            groups,
            dims,
            datasets,
            order,
        })
    }

    /// The underlying SDM run id (metadata key).
    pub fn runid(&self) -> i64 {
        self.sdm.runid()
    }

    /// Create a group at `path` (parent must exist). Collective.
    pub fn create_group(&mut self, comm: &mut Comm, path: &str) -> SciResult<()> {
        validate_path(path)?;
        if self.groups.contains(path) {
            return Err(SciError::Usage(format!("group {path} already exists")));
        }
        let parent = parent_of(path);
        if !self.groups.contains(parent) {
            return Err(SciError::Usage(format!(
                "parent group {parent} does not exist"
            )));
        }
        if comm.rank() == 0 {
            self.sdm.store().run(
                stmt_once!(Insert::<SciGroupRow>::prepared()),
                &SciGroupRow {
                    runid: self.sdm.runid(),
                    path: path.to_string(),
                }
                .into_row(),
            )?;
        }
        comm.barrier();
        self.groups.insert(path.to_string());
        Ok(())
    }

    /// Define a named dimension of length `len`. Collective.
    pub fn define_dim(&mut self, comm: &mut Comm, name: &str, len: u64) -> SciResult<()> {
        if name.is_empty() || name.contains(',') || name.contains('/') {
            return Err(SciError::Usage(format!("bad dimension name {name:?}")));
        }
        if len == 0 {
            return Err(SciError::Usage(format!(
                "dimension {name} must have nonzero length"
            )));
        }
        if self.dims.contains_key(name) {
            return Err(SciError::Usage(format!("dimension {name} already defined")));
        }
        if comm.rank() == 0 {
            self.sdm.store().run(
                stmt_once!(Insert::<SciDimRow>::prepared()),
                &SciDimRow {
                    runid: self.sdm.runid(),
                    name: name.to_string(),
                    len: len as i64,
                }
                .into_row(),
            )?;
        }
        comm.barrier();
        self.dims.insert(name.to_string(), len);
        Ok(())
    }

    /// Length of a defined dimension.
    pub fn dim_len(&self, name: &str) -> Option<u64> {
        self.dims.get(name).copied()
    }

    /// Create a dataset at `path` over the named dimensions (outermost
    /// first); its global size is the product of their lengths.
    /// Collective.
    pub fn create_dataset(
        &mut self,
        comm: &mut Comm,
        path: &str,
        dtype: SdmType,
        dims: &[&str],
    ) -> SciResult<()> {
        validate_path(path)?;
        if self.datasets.contains_key(path) || self.groups.contains(path) {
            return Err(SciError::Usage(format!("{path} already exists")));
        }
        let parent = parent_of(path);
        if !self.groups.contains(parent) {
            return Err(SciError::Usage(format!(
                "parent group {parent} does not exist"
            )));
        }
        if dims.is_empty() {
            return Err(SciError::Usage(
                "a dataset needs at least one dimension".into(),
            ));
        }
        let mut global_size = 1u64;
        for d in dims {
            let len = self
                .dims
                .get(*d)
                .copied()
                .ok_or_else(|| SciError::Usage(format!("unknown dimension {d}")))?;
            global_size = global_size.saturating_mul(len);
        }
        let desc = DatasetDesc {
            data_type: dtype,
            ..DatasetDesc::doubles(path, global_size)
        };
        let reg = self.sdm.group(comm).dataset_desc(desc).build()?;
        let slot = reg.slot(path)?;
        if comm.rank() == 0 {
            self.sdm.store().run(
                stmt_once!(Insert::<SciDatasetRow>::prepared()),
                &SciDatasetRow {
                    runid: self.sdm.runid(),
                    ghandle: reg.group().index() as i64,
                    path: path.to_string(),
                    data_type: dtype.sql_name().to_string(),
                    dims: dims.join(","),
                    global_size: global_size as i64,
                }
                .into_row(),
            )?;
        }
        comm.barrier();
        let info = DatasetInfo {
            path: path.to_string(),
            dtype,
            dims: dims.iter().map(|s| s.to_string()).collect(),
            global_size,
        };
        self.order.push(path.to_string());
        self.datasets
            .insert(path.to_string(), DsEntry { slot, info });
        Ok(())
    }

    /// Install this rank's map array (local element → global element)
    /// for a dataset, exactly `SDM_data_view`. Collective.
    pub fn set_view(&mut self, comm: &mut Comm, path: &str, map: &[u64]) -> SciResult<()> {
        let s = self.entry(path)?.slot;
        self.sdm.set_view(comm, s, map)?;
        Ok(())
    }

    /// Collectively write a dataset at a record index (SDM timestep)
    /// through the installed view. The dataset is addressed by its
    /// resolved slot — the container's element types are only known at
    /// run time, so the element size is checked per call.
    pub fn write<T: Pod>(
        &mut self,
        comm: &mut Comm,
        path: &str,
        record: i64,
        buf: &[T],
    ) -> SciResult<()> {
        let s = self.entry(path)?.slot;
        self.sdm.write_slot(comm, s, record, buf)?;
        Ok(())
    }

    /// Collectively read a dataset at a record index through the view.
    pub fn read<T: Pod + Default>(
        &mut self,
        comm: &mut Comm,
        path: &str,
        record: i64,
        out: &mut [T],
    ) -> SciResult<()> {
        let s = self.entry(path)?.slot;
        self.sdm.read_slot(comm, s, record, out)?;
        Ok(())
    }

    /// Set (or replace) an attribute on a group or dataset. Collective.
    /// Rank 0 upserts the row inside one transaction, so a concurrent
    /// reader always sees either the old or the new value — never a
    /// missing attribute.
    pub fn set_attr(
        &mut self,
        comm: &mut Comm,
        path: &str,
        name: &str,
        value: AttrValue,
    ) -> SciResult<()> {
        if !self.groups.contains(path) && !self.datasets.contains_key(path) {
            return Err(SciError::Usage(format!("no group or dataset at {path}")));
        }
        if comm.rank() == 0 {
            upsert_attr(
                self.sdm.store().as_ref(),
                self.sdm.runid(),
                path,
                name,
                &value,
            )?;
        }
        comm.barrier();
        Ok(())
    }

    /// Read an attribute (local metadata query; no communication).
    pub fn get_attr(&self, path: &str, name: &str) -> SciResult<Option<AttrValue>> {
        Ok(lookup_attr(
            self.sdm.store().as_ref(),
            self.sdm.runid(),
            path,
            name,
        )?)
    }

    /// The container's dataset manifest joined with its registration
    /// record: one `(application, path, data_type, global_size)` row
    /// per dataset, in registration (ghandle) order. This is the
    /// paper-style cross-table report (`sci_dataset_table ⋈ run_table
    /// ON runid`); both sides carry a runid-led ordered index, so the
    /// executor merges the two index streams instead of building a
    /// per-statement hash table.
    pub fn manifest(&self) -> SciResult<Vec<(String, String, String, i64)>> {
        use sdm_core::schema::{RunCol, RunRow};
        let rs = self.sdm.store().run(
            stmt_once!(
                Query::<SciDatasetRow>::filter(SciDatasetCol::Runid.eq(param(0)))
                    .join_on::<RunRow>(SciDatasetCol::Runid, RunCol::Runid)
                    .select_right(&[RunCol::Application])
                    .select_left(&[
                        SciDatasetCol::Path,
                        SciDatasetCol::DataType,
                        SciDatasetCol::GlobalSize,
                    ])
                    .order_by_left(SciDatasetCol::Ghandle)
                    .order_by_left(SciDatasetCol::Path)
                    .compile()
            ),
            &[Value::Int(self.sdm.runid())],
        )?;
        Ok(rs
            .rows
            .into_iter()
            .map(|r| {
                (
                    r[0].as_str().unwrap_or_default().to_string(),
                    r[1].as_str().unwrap_or_default().to_string(),
                    r[2].as_str().unwrap_or_default().to_string(),
                    r[3].as_i64().unwrap_or(0),
                )
            })
            .collect())
    }

    /// All attribute names on an object, sorted.
    pub fn attr_names(&self, path: &str) -> SciResult<Vec<String>> {
        let rs = self.sdm.store().run(
            stmt_once!(Query::<SciAttrRow>::filter(
                SciAttrCol::Runid
                    .eq(param(0))
                    .and(SciAttrCol::Path.eq(param(1))),
            )
            .select(&[SciAttrCol::Name])
            .order_by(SciAttrCol::Name)
            .compile()),
            &[Value::Int(self.sdm.runid()), Value::from(path)],
        )?;
        Ok(rs
            .rows
            .iter()
            .filter_map(|r| r[0].as_str().map(str::to_string))
            .collect())
    }

    /// Dataset description, if `path` names a dataset.
    pub fn dataset_info(&self, path: &str) -> Option<&DatasetInfo> {
        self.datasets.get(path).map(|e| &e.info)
    }

    /// All group paths, sorted.
    pub fn group_paths(&self) -> Vec<String> {
        self.groups.iter().cloned().collect()
    }

    /// All dataset paths in creation order.
    pub fn dataset_paths(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Direct children (groups and datasets) of a group, sorted.
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = if path == "/" {
            "/".to_string()
        } else {
            format!("{path}/")
        };
        let mut out: Vec<String> = self
            .groups
            .iter()
            .map(String::as_str)
            .chain(self.datasets.keys().map(String::as_str))
            .filter(|p| p.starts_with(&prefix) && **p != *path && !p[prefix.len()..].contains('/'))
            .map(str::to_string)
            .collect();
        out.sort();
        out
    }

    /// Defined dimensions as `(name, len)`, sorted by name.
    pub fn dims(&self) -> Vec<(String, u64)> {
        self.dims.iter().map(|(n, &l)| (n.clone(), l)).collect()
    }

    /// Close the container: closes all cached SDM files. Collective.
    pub fn close(self, comm: &mut Comm) -> SciResult<()> {
        self.sdm.finalize(comm)?;
        Ok(())
    }

    fn entry(&self, path: &str) -> SciResult<&DsEntry> {
        self.datasets
            .get(path)
            .ok_or_else(|| SciError::Usage(format!("no dataset at {path}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_core::CachedStore;
    use sdm_metadb::Database;
    use sdm_mpi::World;
    use sdm_sim::MachineConfig;

    #[test]
    fn path_validation() {
        assert!(validate_path("/").is_ok());
        assert!(validate_path("/a/b").is_ok());
        assert!(validate_path("a/b").is_err());
        assert!(validate_path("/a/").is_err());
        assert!(validate_path("/a//b").is_err());
    }

    #[test]
    fn parent_resolution() {
        assert_eq!(parent_of("/a"), "/");
        assert_eq!(parent_of("/a/b"), "/a");
        assert_eq!(parent_of("/a/b/c"), "/a/b");
    }

    fn world_pfs() -> (Arc<Pfs>, SharedStore) {
        let db = Arc::new(Database::new());
        (
            Pfs::new(MachineConfig::test_tiny()),
            CachedStore::shared(&db),
        )
    }

    #[test]
    fn container_write_read_round_trip() {
        let (pfs, store) = world_pfs();
        let n = 2usize;
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f =
                    SciFile::create(c, &pfs, &store, "flowdb", SdmConfig::default()).unwrap();
                f.create_group(c, "/flow").unwrap();
                f.define_dim(c, "nodes", 16).unwrap();
                f.create_dataset(c, "/flow/pressure", SdmType::Double, &["nodes"])
                    .unwrap();
                // Rank r owns the odd or even global elements.
                let map: Vec<u64> = (0..8).map(|i| i * 2 + c.rank() as u64).collect();
                f.set_view(c, "/flow/pressure", &map).unwrap();
                let mine: Vec<f64> = map.iter().map(|&g| g as f64 * 1.5).collect();
                f.write(c, "/flow/pressure", 0, &mine).unwrap();
                let mut back = vec![0.0f64; 8];
                f.read(c, "/flow/pressure", 0, &mut back).unwrap();
                f.close(c).unwrap();
                (mine, back)
            }
        });
        for (mine, back) in out {
            assert_eq!(mine, back);
        }
    }

    #[test]
    fn manifest_merge_joins_datasets_with_run_registration() {
        let (pfs, store) = world_pfs();
        let out = World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f =
                    SciFile::create(c, &pfs, &store, "flowdb", SdmConfig::default()).unwrap();
                f.define_dim(c, "nodes", 8).unwrap();
                f.create_group(c, "/flow").unwrap();
                f.create_dataset(c, "/flow/pressure", SdmType::Double, &["nodes"])
                    .unwrap();
                f.create_dataset(c, "/flow/velocity", SdmType::Double, &["nodes"])
                    .unwrap();
                store.flush().unwrap();
                let before = store.database().stats();
                let manifest = f.manifest().unwrap();
                let after = store.database().stats();
                f.close(c).unwrap();
                (manifest, before, after)
            }
        });
        let (manifest, before, after) = out.into_iter().next().unwrap();
        assert_eq!(manifest.len(), 2);
        // Registration order; every row names the owning application.
        assert_eq!(manifest[0].0, "flowdb");
        assert_eq!(manifest[0].1, "/flow/pressure");
        assert_eq!(manifest[1].1, "/flow/velocity");
        assert_eq!(manifest[0].2, "DOUBLE");
        assert_eq!(manifest[0].3, 8);
        // Served by a merge join over the runid-led ordered indexes,
        // not a per-statement hash build.
        assert_eq!(after.join_merge_joins - before.join_merge_joins, 1);
        assert_eq!(after.join_hash_builds, before.join_hash_builds);
    }

    #[test]
    fn reopen_rebuilds_tree_and_reads() {
        let (pfs, store) = world_pfs();
        let n = 2usize;
        World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f =
                    SciFile::create(c, &pfs, &store, "reopen", SdmConfig::default()).unwrap();
                f.create_group(c, "/a").unwrap();
                f.create_group(c, "/a/b").unwrap();
                f.define_dim(c, "n", 10).unwrap();
                f.create_dataset(c, "/a/b/x", SdmType::Double, &["n"])
                    .unwrap();
                f.set_attr(c, "/a/b/x", "units", AttrValue::from("K"))
                    .unwrap();
                let map: Vec<u64> = (0..5).map(|i| i * 2 + c.rank() as u64).collect();
                f.set_view(c, "/a/b/x", &map).unwrap();
                let mine: Vec<f64> = map.iter().map(|&g| 100.0 + g as f64).collect();
                f.write(c, "/a/b/x", 3, &mine).unwrap();
                f.close(c).unwrap();
            }
        });
        // Second "session": rebuild from metadata alone.
        let out = World::run(n, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f = SciFile::open(c, &pfs, &store, "reopen", SdmConfig::default()).unwrap();
                assert_eq!(f.group_paths(), vec!["/", "/a", "/a/b"]);
                assert_eq!(f.dim_len("n"), Some(10));
                let info = f.dataset_info("/a/b/x").unwrap().clone();
                assert_eq!(info.global_size, 10);
                assert_eq!(info.dims, vec!["n"]);
                assert_eq!(
                    f.get_attr("/a/b/x", "units").unwrap(),
                    Some(AttrValue::from("K"))
                );
                let map: Vec<u64> = (0..5).map(|i| i * 2 + c.rank() as u64).collect();
                f.set_view(c, "/a/b/x", &map).unwrap();
                let mut back = vec![0.0f64; 5];
                f.read(c, "/a/b/x", 3, &mut back).unwrap();
                f.close(c).unwrap();
                (map, back)
            }
        });
        for (map, back) in out {
            let want: Vec<f64> = map.iter().map(|&g| 100.0 + g as f64).collect();
            assert_eq!(back, want);
        }
    }

    #[test]
    fn hierarchy_rules_enforced() {
        let (pfs, store) = world_pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f =
                    SciFile::create(c, &pfs, &store, "rules", SdmConfig::default()).unwrap();
                // Parent must exist.
                assert!(f.create_group(c, "/x/y").is_err());
                f.create_group(c, "/x").unwrap();
                f.create_group(c, "/x/y").unwrap();
                // No duplicates.
                assert!(f.create_group(c, "/x").is_err());
                // Dataset needs known dims and an existing parent.
                assert!(f
                    .create_dataset(c, "/x/d", SdmType::Double, &["nope"])
                    .is_err());
                f.define_dim(c, "k", 4).unwrap();
                assert!(f
                    .create_dataset(c, "/zz/d", SdmType::Double, &["k"])
                    .is_err());
                f.create_dataset(c, "/x/d", SdmType::Double, &["k"])
                    .unwrap();
                // A dataset path cannot be reused.
                assert!(f
                    .create_dataset(c, "/x/d", SdmType::Double, &["k"])
                    .is_err());
                // Dim redefinition rejected.
                assert!(f.define_dim(c, "k", 9).is_err());
                f.close(c).unwrap();
            }
        });
    }

    #[test]
    fn children_listing() {
        let (pfs, store) = world_pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f = SciFile::create(c, &pfs, &store, "tree", SdmConfig::default()).unwrap();
                f.create_group(c, "/a").unwrap();
                f.create_group(c, "/b").unwrap();
                f.create_group(c, "/a/sub").unwrap();
                f.define_dim(c, "n", 2).unwrap();
                f.create_dataset(c, "/a/data", SdmType::Double, &["n"])
                    .unwrap();
                assert_eq!(f.children("/"), vec!["/a", "/b"]);
                assert_eq!(f.children("/a"), vec!["/a/data", "/a/sub"]);
                assert!(f.children("/b").is_empty());
                f.close(c).unwrap();
            }
        });
    }

    #[test]
    fn attributes_upsert_and_list() {
        let (pfs, store) = world_pfs();
        World::run(2, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f =
                    SciFile::create(c, &pfs, &store, "attrs", SdmConfig::default()).unwrap();
                f.set_attr(c, "/", "title", AttrValue::from("RT run"))
                    .unwrap();
                f.set_attr(c, "/", "steps", AttrValue::Int(5)).unwrap();
                f.set_attr(c, "/", "steps", AttrValue::Int(7)).unwrap(); // replace
                assert_eq!(f.get_attr("/", "steps").unwrap(), Some(AttrValue::Int(7)));
                assert_eq!(f.attr_names("/").unwrap(), vec!["steps", "title"]);
                assert_eq!(f.get_attr("/", "missing").unwrap(), None);
                assert!(f.set_attr(c, "/nope", "a", AttrValue::Int(0)).is_err());
                f.close(c).unwrap();
            }
        });
    }

    #[test]
    fn attr_upsert_is_never_observably_missing() {
        // The satellite guarantee of the transactional upsert: while one
        // thread replaces an attribute's value over and over, a reader
        // must always observe *some* value — the old or the new, never a
        // gap (the DELETE-then-INSERT shape this replaced had one).
        use sdm_core::SqlStore;
        let db = Arc::new(Database::new());
        let store: SharedStore = SqlStore::shared(&db);
        for desc in SCI_TABLES {
            ensure_table(store.as_ref(), desc).unwrap();
        }
        upsert_attr(store.as_ref(), 1, "/", "steps", &AttrValue::Int(0)).unwrap();
        let writer = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for k in 1..=300i64 {
                    upsert_attr(store.as_ref(), 1, "/", "steps", &AttrValue::Int(k)).unwrap();
                }
            })
        };
        let mut seen = Vec::new();
        while !writer.is_finished() {
            let got = lookup_attr(store.as_ref(), 1, "/", "steps").unwrap();
            assert!(got.is_some(), "reader observed a missing attribute");
            seen.push(got.unwrap());
        }
        writer.join().unwrap();
        assert_eq!(
            lookup_attr(store.as_ref(), 1, "/", "steps").unwrap(),
            Some(AttrValue::Int(300))
        );
        // Observed values are monotone: upserts replace, never duplicate.
        let ints: Vec<i64> = seen.iter().filter_map(AttrValue::as_i64).collect();
        assert!(ints.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn attr_lookups_probe_the_runid_index() {
        // The generated `sci_attr_table (runid)` index must carry
        // attribute lookups: no full scans once the tables are warm.
        use sdm_core::SqlStore;
        let db = Arc::new(Database::new());
        let store: SharedStore = SqlStore::shared(&db);
        for desc in SCI_TABLES {
            ensure_table(store.as_ref(), desc).unwrap();
        }
        for runid in 0..50i64 {
            upsert_attr(store.as_ref(), runid, "/", "title", &AttrValue::from("r")).unwrap();
        }
        db.reset_stats();
        assert!(lookup_attr(store.as_ref(), 25, "/", "title")
            .unwrap()
            .is_some());
        let stats = db.stats();
        assert_eq!(stats.full_scans, 0, "attr lookup fell back to a scan");
        assert_eq!(stats.index_scans, 1, "attr lookup must probe the index");
        // The probe touched only runid-25 candidates, not all 50 rows.
        assert!(
            stats.rows_scanned <= 2,
            "scanned {} rows",
            stats.rows_scanned
        );
    }

    #[test]
    fn multidim_dataset_size() {
        let (pfs, store) = world_pfs();
        World::run(1, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut f = SciFile::create(c, &pfs, &store, "md", SdmConfig::default()).unwrap();
                f.define_dim(c, "x", 6).unwrap();
                f.define_dim(c, "y", 7).unwrap();
                f.create_dataset(c, "/grid", SdmType::Double, &["x", "y"])
                    .unwrap();
                assert_eq!(f.dataset_info("/grid").unwrap().global_size, 42);
                f.close(c).unwrap();
            }
        });
    }
}
