//! The container layer's metadata tables as typed [`Relation`]s.
//!
//! Four `sci_*` tables sit beside SDM's six Figure-4 tables. Like them,
//! each is described once by a static descriptor — DDL and the
//! secondary indexes are generated from it via [`sdm_core::ensure_table`],
//! and every query in [`crate::container`] is a typed statement. Every
//! container lookup filters by run, so each table carries one ordered
//! composite index led by `runid`: run-only queries walk the prefix,
//! and the narrower (runid, key) probes resolve to a single bucket.
//! The second key column matches each table's point-lookup shape — and
//! for `sci_dataset_table` it also streams the reopen listing
//! (`ORDER BY ghandle`) straight off the index, sort-free. No SQL text
//! exists anywhere in this crate.

use sdm_metadb::relation;
use sdm_metadb::stmt::{Relation, TableDesc};

relation! {
    /// One `sci_group_table` row: a group path in a container's
    /// hierarchy.
    pub struct SciGroupRow in "sci_group_table" as SciGroupCol {
        /// Owning container run.
        pub runid: i64 => Runid,
        /// Absolute group path (`/flow`).
        pub path: String => Path,
    }
    ordered { "sci_group_runid_path" on (runid, path) }
}

relation! {
    /// One `sci_dim_table` row: a named dimension.
    pub struct SciDimRow in "sci_dim_table" as SciDimCol {
        /// Owning container run.
        pub runid: i64 => Runid,
        /// Dimension name.
        pub name: String => Name,
        /// Dimension length.
        pub len: i64 => Len,
    }
    ordered { "sci_dim_runid_name" on (runid, name) }
}

relation! {
    /// One `sci_dataset_table` row: a dataset defined over dimensions.
    pub struct SciDatasetRow in "sci_dataset_table" as SciDatasetCol {
        /// Owning container run.
        pub runid: i64 => Runid,
        /// SDM group handle the dataset was registered under (reopen
        /// order).
        pub ghandle: i64 => Ghandle,
        /// Absolute dataset path.
        pub path: String => Path,
        /// Element type name.
        pub data_type: String => DataType,
        /// Comma-joined dimension names, outermost first.
        pub dims: String => Dims,
        /// Total element count.
        pub global_size: i64 => GlobalSize,
    }
    ordered { "sci_dataset_runid_ghandle" on (runid, ghandle) }
}

relation! {
    /// One `sci_attr_table` row: a typed attribute on a group or
    /// dataset, stored across three nullable value columns.
    pub struct SciAttrRow in "sci_attr_table" as SciAttrCol {
        /// Owning container run.
        pub runid: i64 => Runid,
        /// Path of the annotated object.
        pub path: String => Path,
        /// Attribute name.
        pub name: String => Name,
        /// Value type tag (`INT` / `DOUBLE` / `TEXT`).
        pub vtype: String => Vtype,
        /// Integer payload (NULL unless `vtype = INT`).
        pub ival: i64 => Ival,
        /// Double payload (NULL unless `vtype = DOUBLE`).
        pub dval: f64 => Dval,
        /// Text payload (NULL unless `vtype = TEXT`).
        pub tval: String => Tval,
    }
    ordered { "sci_attr_runid_path" on (runid, path) }
}

/// The container layer's tables, in creation order.
pub const SCI_TABLES: [&TableDesc; 4] = [
    &SciGroupRow::TABLE,
    &SciDimRow::TABLE,
    &SciDatasetRow::TABLE,
    &SciAttrRow::TABLE,
];
