//! Typed attributes for containers (the HDF/netCDF annotation model).

use sdm_metadb::Value;

/// An attribute value attached to a group or dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// 64-bit integer attribute.
    Int(i64),
    /// 64-bit float attribute.
    Double(f64),
    /// Text attribute.
    Text(String),
}

impl AttrValue {
    /// Type tag stored in the attribute table.
    pub fn type_tag(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "INT",
            AttrValue::Double(_) => "DOUBLE",
            AttrValue::Text(_) => "TEXT",
        }
    }

    /// Encode into the three nullable storage columns `(ival, dval, tval)`.
    pub(crate) fn to_columns(&self) -> (Value, Value, Value) {
        match self {
            AttrValue::Int(i) => (Value::Int(*i), Value::Null, Value::Null),
            AttrValue::Double(d) => (Value::Null, Value::Double(*d), Value::Null),
            AttrValue::Text(s) => (Value::Null, Value::Null, Value::Text(s.clone())),
        }
    }

    /// Decode from `(type_tag, ival, dval, tval)` columns.
    pub(crate) fn from_columns(tag: &str, i: &Value, d: &Value, t: &Value) -> Option<Self> {
        match tag {
            "INT" => i.as_i64().map(AttrValue::Int),
            "DOUBLE" => d.as_f64().map(AttrValue::Double),
            "TEXT" => t.as_str().map(|s| AttrValue::Text(s.to_string())),
            _ => None,
        }
    }

    /// Integer view, if an Int.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            AttrValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Float view (Int promotes), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttrValue::Int(i) => Some(*i as f64),
            AttrValue::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// Text view, if Text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::Int(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::Double(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Text(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_round_trip() {
        for v in [
            AttrValue::Int(-3),
            AttrValue::Double(2.5),
            AttrValue::from("units: m/s"),
        ] {
            let (i, d, t) = v.to_columns();
            let back = AttrValue::from_columns(v.type_tag(), &i, &d, &t).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn views_and_conversions() {
        assert_eq!(AttrValue::from(7i64).as_i64(), Some(7));
        assert_eq!(AttrValue::from(7i64).as_f64(), Some(7.0));
        assert_eq!(AttrValue::from(1.5).as_f64(), Some(1.5));
        assert_eq!(AttrValue::from("x").as_str(), Some("x"));
        assert_eq!(AttrValue::from("x").as_i64(), None);
        assert_eq!(AttrValue::from(1.5).as_str(), None);
    }

    #[test]
    fn bad_tag_decodes_none() {
        assert_eq!(
            AttrValue::from_columns("BLOB", &Value::Null, &Value::Null, &Value::Null),
            None
        );
    }
}
