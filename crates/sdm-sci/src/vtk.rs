//! Legacy-VTK ASCII output — the paper's visualization direction.
//!
//! Simulation results written through SDM live as raw binary arrays plus
//! database metadata; a viewer wants a self-contained mesh+fields file.
//! This module renders an [`UnstructuredMesh`] with attached point and
//! cell scalar fields into the legacy VTK 2.0 ASCII format and stores it
//! in the PFS, where a visualization process can read it back.
//!
//! Writing is a rank-0 post-processing step (visualization output is
//! not a collective hot path); the data arrays are typically gathered
//! with `Comm::gatherv` or read back through `Sdm::read` first.

use std::fmt::Write as _;
use std::sync::Arc;

use sdm_mesh::{CellKind, UnstructuredMesh};
use sdm_pfs::Pfs;

use crate::container::{SciError, SciResult};

/// A named scalar field.
#[derive(Debug, Clone)]
pub struct ScalarField<'a> {
    /// Field name as shown to the viewer.
    pub name: &'a str,
    /// One value per point (or per cell, depending on where it is used).
    pub values: &'a [f64],
}

impl<'a> ScalarField<'a> {
    /// Convenience constructor.
    pub fn new(name: &'a str, values: &'a [f64]) -> Self {
        Self { name, values }
    }
}

/// VTK cell-type codes for the mesh kinds we generate.
fn vtk_cell_type(kind: CellKind) -> u8 {
    match kind {
        CellKind::Triangle => 5,     // VTK_TRIANGLE
        CellKind::Tetrahedron => 10, // VTK_TETRA
    }
}

/// Render a mesh with fields into legacy VTK ASCII.
///
/// Errors if any field's length does not match its association
/// (points for `point_fields`, cells for `cell_fields`).
pub fn render_vtk(
    title: &str,
    mesh: &UnstructuredMesh,
    point_fields: &[ScalarField<'_>],
    cell_fields: &[ScalarField<'_>],
) -> Result<String, String> {
    let np = mesh.num_nodes();
    let nc = mesh.num_cells();
    for f in point_fields {
        if f.values.len() != np {
            return Err(format!(
                "point field {} has {} values for {np} points",
                f.name,
                f.values.len()
            ));
        }
    }
    for f in cell_fields {
        if f.values.len() != nc {
            return Err(format!(
                "cell field {} has {} values for {nc} cells",
                f.name,
                f.values.len()
            ));
        }
    }
    let arity = mesh.cell_kind.arity();
    // Preallocate roughly: coordinates dominate.
    let mut out = String::with_capacity(64 + np * 36 + nc * (arity + 1) * 8);
    out.push_str("# vtk DataFile Version 2.0\n");
    // Titles are a single line in the format.
    let title_line: String = title
        .chars()
        .map(|c| if c == '\n' { ' ' } else { c })
        .collect();
    let _ = writeln!(out, "{title_line}");
    out.push_str("ASCII\nDATASET UNSTRUCTURED_GRID\n");

    let _ = writeln!(out, "POINTS {np} double");
    for p in &mesh.coords {
        let _ = writeln!(out, "{} {} {}", p[0], p[1], p[2]);
    }

    let _ = writeln!(out, "CELLS {nc} {}", nc * (arity + 1));
    for cell in mesh.cells.chunks_exact(arity) {
        let _ = write!(out, "{arity}");
        for &n in cell {
            let _ = write!(out, " {n}");
        }
        out.push('\n');
    }

    let _ = writeln!(out, "CELL_TYPES {nc}");
    let code = vtk_cell_type(mesh.cell_kind);
    for _ in 0..nc {
        let _ = writeln!(out, "{code}");
    }

    if !point_fields.is_empty() {
        let _ = writeln!(out, "POINT_DATA {np}");
        for f in point_fields {
            let _ = writeln!(out, "SCALARS {} double 1\nLOOKUP_TABLE default", f.name);
            for v in f.values {
                let _ = writeln!(out, "{v}");
            }
        }
    }
    if !cell_fields.is_empty() {
        let _ = writeln!(out, "CELL_DATA {nc}");
        for f in cell_fields {
            let _ = writeln!(out, "SCALARS {} double 1\nLOOKUP_TABLE default", f.name);
            for v in f.values {
                let _ = writeln!(out, "{v}");
            }
        }
    }
    Ok(out)
}

/// Render and store a VTK file in the PFS at `name`, charging the write
/// to virtual time `now`. Returns the completion time.
pub fn write_vtk(
    pfs: &Arc<Pfs>,
    name: &str,
    title: &str,
    mesh: &UnstructuredMesh,
    point_fields: &[ScalarField<'_>],
    cell_fields: &[ScalarField<'_>],
    now: f64,
) -> SciResult<f64> {
    let body = render_vtk(title, mesh, point_fields, cell_fields).map_err(SciError::Usage)?;
    let (f, t) = pfs
        .open_or_create(name, now)
        .map_err(|e| SciError::Usage(e.to_string()))?;
    let t = pfs
        .write_at(&f, 0, body.as_bytes(), t)
        .map_err(|e| SciError::Usage(e.to_string()))?;
    Ok(pfs.close(&f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdm_mesh::gen::tet_box;
    use sdm_sim::MachineConfig;

    fn small_mesh() -> UnstructuredMesh {
        tet_box(3, 3, 3, 0.0, 1)
    }

    #[test]
    fn header_and_counts() {
        let m = small_mesh();
        let p: Vec<f64> = (0..m.num_nodes()).map(|i| i as f64).collect();
        let body = render_vtk("test mesh", &m, &[ScalarField::new("pressure", &p)], &[]).unwrap();
        let mut lines = body.lines();
        assert_eq!(lines.next(), Some("# vtk DataFile Version 2.0"));
        assert_eq!(lines.next(), Some("test mesh"));
        assert_eq!(lines.next(), Some("ASCII"));
        assert_eq!(lines.next(), Some("DATASET UNSTRUCTURED_GRID"));
        assert_eq!(
            lines.next(),
            Some(format!("POINTS {} double", m.num_nodes()).as_str())
        );
        assert!(body.contains(&format!("CELL_TYPES {}", m.num_cells())));
        assert!(body.contains(&format!("POINT_DATA {}", m.num_nodes())));
        assert!(body.contains("SCALARS pressure double 1"));
    }

    #[test]
    fn cells_block_is_consistent() {
        let m = small_mesh();
        let body = render_vtk("t", &m, &[], &[]).unwrap();
        let arity = m.cell_kind.arity();
        let cells_header = format!("CELLS {} {}", m.num_cells(), m.num_cells() * (arity + 1));
        assert!(body.contains(&cells_header), "missing {cells_header}");
        // Every connectivity line starts with the arity and has arity+1
        // numbers.
        let after = body.split(&cells_header).nth(1).unwrap();
        for line in after.lines().skip(1).take(m.num_cells()) {
            let nums: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(nums.len(), arity + 1, "bad connectivity line: {line}");
            assert_eq!(nums[0], arity.to_string());
        }
        // Tetrahedra carry VTK code 10.
        assert!(body.contains("\n10\n"));
    }

    #[test]
    fn field_length_mismatch_rejected() {
        let m = small_mesh();
        let short = vec![0.0; 2];
        assert!(render_vtk("t", &m, &[ScalarField::new("x", &short)], &[]).is_err());
        assert!(render_vtk("t", &m, &[], &[ScalarField::new("y", &short)]).is_err());
    }

    #[test]
    fn newlines_in_title_flattened() {
        let m = small_mesh();
        let body = render_vtk("two\nlines", &m, &[], &[]).unwrap();
        assert_eq!(body.lines().nth(1), Some("two lines"));
    }

    #[test]
    fn write_lands_in_pfs() {
        let m = small_mesh();
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let cellvals: Vec<f64> = (0..m.num_cells()).map(|i| i as f64 * 0.5).collect();
        let done = write_vtk(
            &pfs,
            "out.vtk",
            "vis",
            &m,
            &[],
            &[ScalarField::new("rank", &cellvals)],
            0.0,
        )
        .unwrap();
        assert!(done > 0.0);
        let len = pfs.file_len("out.vtk").unwrap();
        assert!(len > 0);
        let (f, _) = pfs.open("out.vtk", 0.0).unwrap();
        let mut head = vec![0u8; 26];
        pfs.read_exact_at(&f, 0, &mut head, 0.0).unwrap();
        assert_eq!(&head, b"# vtk DataFile Version 2.0");
        // The cell field made it in.
        let mut all = vec![0u8; len as usize];
        pfs.read_exact_at(&f, 0, &mut all, 0.0).unwrap();
        let text = String::from_utf8(all).unwrap();
        assert!(text.contains("CELL_DATA"));
        assert!(text.contains("SCALARS rank double 1"));
    }
}
