//! Self-describing scientific data containers built **on top of SDM**.
//!
//! The paper's summary names two directions of future work: supporting
//! visualization applications, and investigating "whether SDM can
//! effectively be used as a strategy for implementing libraries such as
//! HDF and netCDF". This crate implements both, using only the public
//! SDM surface:
//!
//! * [`attr::AttrValue`] — typed attributes (the HDF/netCDF annotation
//!   model: int / double / text).
//! * [`container::SciFile`] — a hierarchical container: groups addressed
//!   by `/`-separated paths, named dimensions, datasets defined over
//!   dimensions, and attributes on any object. Metadata lives in the
//!   same embedded database as SDM's six tables, as the four typed
//!   relations of [`schema`] — every container statement is a typed
//!   `sdm_metadb::stmt::Stmt`, never SQL text;
//!   dataset bytes move through `Sdm::write`/`Sdm::read`, i.e. with
//!   collective noncontiguous MPI-IO and Level 1/2/3 file organization
//!   for free.
//! * [`netcdf::NcFile`] — a netCDF-classic veneer over [`container`]:
//!   define mode / data mode, dimensions, variables over dimension
//!   lists, one optional record (unlimited) dimension mapped onto SDM
//!   timesteps.
//! * [`vtk`] — legacy-VTK ASCII output of unstructured meshes with
//!   attached point/cell data, written into the PFS so a viewer-side
//!   process could read it (the visualization path).
//!
//! Containers are self-describing: [`container::SciFile::open`] rebuilds
//! the full group/dimension/dataset tree of a previous run from the
//! metadata database alone, then serves reads through SDM.

pub mod attr;
pub mod container;
pub mod netcdf;
pub mod schema;
pub mod vtk;

pub use attr::AttrValue;
pub use container::{DatasetInfo, SciError, SciFile, SciResult};
pub use netcdf::NcFile;
