//! Shared harness utilities for the figure reproductions.
//!
//! Each `src/bin/figN.rs` binary regenerates one figure of the paper's
//! evaluation; this library holds the common plumbing: argument parsing,
//! world setup, report aggregation, and table printing.

use std::sync::Arc;

use sdm_apps::PhaseReport;
use sdm_core::{CachedStore, SharedStore};
use sdm_metadb::Database;
use sdm_pfs::Pfs;
use sdm_sim::MachineConfig;

/// Common harness arguments (parsed from `--key value` pairs).
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Scale relative to the paper's workload (default 1/32).
    pub scale: f64,
    /// Process count override (paper defaults per figure otherwise).
    pub procs: Option<usize>,
    /// Machine preset: "origin2000" (default) or "high-open-cost".
    pub machine: String,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            scale: 1.0 / 32.0,
            procs: None,
            machine: "origin2000".into(),
            seed: 20010220,
        }
    }
}

impl HarnessArgs {
    /// Parse from `std::env::args`-style strings.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut out = Self::default();
        let argv: Vec<String> = args.collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    out.scale = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(out.scale);
                    i += 2;
                }
                "--procs" => {
                    out.procs = argv.get(i + 1).and_then(|v| v.parse().ok());
                    i += 2;
                }
                "--machine" => {
                    out.machine = argv.get(i + 1).cloned().unwrap_or(out.machine.clone());
                    i += 2;
                }
                "--seed" => {
                    out.seed = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(out.seed);
                    i += 2;
                }
                _ => i += 1,
            }
        }
        out
    }

    /// Resolve the machine preset.
    pub fn machine_config(&self) -> MachineConfig {
        match self.machine.as_str() {
            "high-open-cost" => MachineConfig::high_open_cost(),
            "test-tiny" => MachineConfig::test_tiny(),
            _ => MachineConfig::origin2000(),
        }
    }

    /// Paper-scale FUN3D node count times `scale`.
    pub fn fun3d_nodes(&self) -> usize {
        ((2_200_000.0 * self.scale) as usize).max(200)
    }

    /// Paper-scale RT node count times `scale`.
    pub fn rt_nodes(&self) -> usize {
        ((4_500_000.0 * self.scale) as usize).max(200)
    }
}

/// Fresh (pfs, metadata store) pair on a machine config. The store is
/// the default stack: a write-through cache over prepared-statement SQL.
pub fn fresh_world(cfg: &MachineConfig) -> (Arc<Pfs>, SharedStore) {
    (
        Pfs::new(cfg.clone()),
        CachedStore::shared(&Arc::new(Database::new())),
    )
}

/// Aggregate per-rank reports to the figure's bar values (max over ranks).
pub fn aggregate(reports: Vec<PhaseReport>) -> PhaseReport {
    PhaseReport::reduce_max(&reports)
}

/// Print a figure table header.
pub fn print_header(title: &str, cfg: &MachineConfig, extra: &str) {
    println!("# {title}");
    println!(
        "# machine={} servers={} stripe={}B {extra}",
        cfg.name, cfg.io_servers, cfg.stripe_size
    );
}

/// Print one labeled seconds row.
pub fn print_time_row(label: &str, phases: &[(&str, f64)]) {
    print!("{label:<28}");
    for (name, v) in phases {
        print!(" {name}={v:>9.3}s");
    }
    println!();
}

/// Print one labeled bandwidth row.
pub fn print_bw_row(label: &str, items: &[(&str, f64)]) {
    print!("{label:<28}");
    for (name, v) in items {
        print!(" {name}={v:>8.1} MB/s");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_overrides() {
        let a = HarnessArgs::parse(std::iter::empty());
        assert_eq!(a.procs, None);
        assert!((a.scale - 1.0 / 32.0).abs() < 1e-12);
        let b = HarnessArgs::parse(
            [
                "--scale",
                "0.5",
                "--procs",
                "16",
                "--machine",
                "high-open-cost",
                "--seed",
                "9",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(b.scale, 0.5);
        assert_eq!(b.procs, Some(16));
        assert_eq!(b.machine, "high-open-cost");
        assert_eq!(b.seed, 9);
        assert!(b.machine_config().io.open_cost > 0.1);
    }

    #[test]
    fn scaled_sizes_have_floors() {
        let a = HarnessArgs {
            scale: 1e-9,
            ..Default::default()
        };
        assert!(a.fun3d_nodes() >= 200);
        assert!(a.rt_nodes() >= 200);
    }
}
