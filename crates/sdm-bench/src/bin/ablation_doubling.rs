//! Ablation A3: single-pass doubling-buffer import vs the original
//! two-pass count-then-read edge scan. The paper: SDM "extends the
//! allocated memory dynamically as needed (using C function realloc) and
//! is therefore able to read the partitioned edges in a single step.
//! This contributes to the reduced cost of index distri."

use std::sync::Arc;

use sdm_apps::original::fun3d_original_import;
use sdm_apps::Fun3dWorkload;
use sdm_bench::{aggregate, print_header, HarnessArgs};
use sdm_core::{CachedStore, Sdm, SdmConfig};
use sdm_metadb::Database;
use sdm_mpi::World;
use sdm_pfs::Pfs;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    let procs = args.procs.unwrap_or(16);
    let w = Fun3dWorkload::new(args.fun3d_nodes(), procs, args.seed);
    print_header(
        "Ablation A3: doubling buffer (1 pass) vs count-then-read (2 passes)",
        &cfg,
        &format!("procs={procs} edges={}", w.mesh.num_edges()),
    );

    // Two-pass baseline: take the original import's index-distribution
    // phase (it scans the broadcast edge list twice).
    let pfs = Pfs::new(cfg.clone());
    w.stage(&pfs);
    let orig = aggregate(World::run(procs, cfg.clone(), {
        let (pfs, w) = (Arc::clone(&pfs), w.clone());
        move |c| fun3d_original_import(c, &pfs, &w).unwrap().0
    }));

    // Single-pass: SDM's ring distribution with the doubling buffer.
    let pfs = Pfs::new(cfg.clone());
    let store = CachedStore::shared(&Arc::new(Database::new()));
    w.stage(&pfs);
    let sdm = aggregate(World::run(procs, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let mut report = sdm_apps::PhaseReport::new();
            let mut s = Sdm::initialize_with(c, &pfs, &store, "a3", SdmConfig::default()).unwrap();
            let h = s
                .group(c)
                .dataset::<f64>("d", w.mesh.num_nodes() as u64)
                .build()
                .unwrap()
                .group();
            s.make_importlist(
                c,
                h,
                vec![
                    sdm_core::ImportDesc::index("edge1", &w.mesh_file),
                    sdm_core::ImportDesc::index("edge2", &w.mesh_file),
                ],
            )
            .unwrap();
            let total = w.mesh.num_edges() as u64;
            let (start, e1) = s
                .import_contiguous::<i32>(c, h, "edge1", w.layout.edge1_offset(), total)
                .unwrap();
            let (_, e2) = s
                .import_contiguous::<i32>(c, h, "edge2", w.layout.edge2_offset(), total)
                .unwrap();
            let t0 = c.now();
            s.partition_index_fresh(c, &w.partitioning_vector, start, &e1, &e2)
                .unwrap();
            report.add("index-distribution", c.now() - t0);
            report
        }
    }));

    let two_pass = orig.get("index-distribution");
    let one_pass = sdm.get("index-distribution");
    println!();
    println!("two-pass (original):      {two_pass:.3}s");
    println!("one-pass (SDM doubling):  {one_pass:.3}s");
    println!("speedup: {:.2}x", two_pass / one_pass);
    assert!(
        one_pass < two_pass,
        "single-pass distribution ({one_pass}s) must beat the two-pass scan ({two_pass}s)"
    );
    println!("PASS");
}
