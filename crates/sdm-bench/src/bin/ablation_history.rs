//! Ablation A1: history files are keyed by (problem size, process
//! count). Running on a different process count misses; pre-creating
//! histories "for the various numbers of processes of interest" hits.

use std::sync::Arc;

use sdm_apps::fun3d::{run_sdm, Fun3dOptions};
use sdm_apps::Fun3dWorkload;
use sdm_bench::{aggregate, fresh_world, print_header, HarnessArgs};
use sdm_mpi::World;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    print_header(
        "Ablation A1: history validity across process counts",
        &cfg,
        "",
    );
    let (pfs, store) = fresh_world(&cfg);

    // Register a history at p=8.
    let w8 = Fun3dWorkload::new(args.fun3d_nodes() / 4, 8, args.seed);
    w8.stage(&pfs);
    let rep = aggregate(World::run(8, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w8.clone());
        move |c| {
            let opts = Fun3dOptions {
                register_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap().report
        }
    }));
    println!(
        "register at p=8: index_distri={:.3}s",
        rep.get("index-distribution")
    );

    // Same problem at p=4: MISS (different partition shapes entirely).
    let w4 = Fun3dWorkload::new(args.fun3d_nodes() / 4, 4, args.seed);
    let miss = World::run(4, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w4.clone());
        move |c| {
            let opts = Fun3dOptions {
                use_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap().history_hit
        }
    });
    println!("replay at p=4: hits={:?} (expected all false)", miss);
    assert!(miss.iter().all(|&h| !h), "p=4 must miss a p=8 history");

    // Pre-create for p=4 too ("create it in advance for the various
    // numbers of processes of interest"), then both hit.
    World::run(4, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w4.clone());
        move |c| {
            let opts = Fun3dOptions {
                register_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap();
        }
    });
    for (p, w) in [(4usize, &w4), (8, &w8)] {
        let hits = World::run(p, cfg.clone(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                let opts = Fun3dOptions {
                    use_history: true,
                    ..Default::default()
                };
                run_sdm(c, &pfs, &store, &w, &opts).unwrap().history_hit
            }
        });
        println!("replay at p={p}: hits={hits:?}");
        assert!(hits.iter().all(|&h| h), "p={p} must hit after pre-creation");
    }
    println!("PASS: history misses across process counts, hits after pre-creation");
}
