//! Metadata-path micro-benchmark: ops/sec for the hot `MetadataStore`
//! statements, **stringly** (SQL text formatted + parsed per call, no
//! indexes) vs **typed** (statements compiled once + secondary
//! indexes), plus the `next_runid` aggregate fast path and the typed
//! session API's scoped write path. Emits `BENCH_metadb.json` for the
//! perf trajectory and asserts the invariants the refactors exist for:
//! the warmed typed hot path performs zero re-parses, zero full scans,
//! and **zero SQL-text formatting** (`typed_sql_strings_formatted`),
//! and a `TimestepScope` performs exactly **one** metadata sync and
//! **one** store transaction per timestep regardless of how many
//! datasets the step writes.
//!
//! This is also where the engine's transaction/locking invariants are
//! enforced on every run: the **mixed insert/lookup** workload must stay
//! on index probes (incremental map maintenance — no insert may trigger
//! a rebuild-on-probe), a `ROLLBACK` must undo exactly the rows the
//! transaction touched (`tx_rows_undone == tx_rows_touched`, the undo
//! log's O(touched) witness), and 4 concurrent reader threads must beat
//! one thread ≥2x where the cores exist (read-locked SELECTs).
//!
//! Run: `cargo run --release --bin bench_metadb [-- --rows 20000]`

use std::sync::Arc;
use std::time::Instant;

use sdm_core::schema::{ExecutionCol, ExecutionRow, RunCol, RunRow};
use sdm_core::{CachedStore, MetadataStore, RunRecord, Sdm, SdmConfig, SqlStore};
use sdm_metadb::eval::{compile, eval_ast, truthy};
use sdm_metadb::sql::ast::{BinOp, Expr};
use sdm_metadb::stmt::{param, Delete, Insert, Query, Relation, Stmt, TypedColumn, Update};
use sdm_metadb::{relation, Column, Database, DbResult, MemStorage, Schema, Value, WalStorage};
use sdm_mpi::World;
use sdm_pfs::Pfs;
use sdm_sim::MachineConfig;

relation! {
    /// Twin of `execution_table` with no secondary indexes: the
    /// full-scan baseline the indexed lookup is measured against.
    pub struct ExecutionNoIdxRow in "execution_noidx" as ExecutionNoIdxCol {
        /// Owning run.
        pub runid: i64 => Runid,
        /// Dataset name.
        pub dataset: String => Dataset,
        /// Timestep index.
        pub timestep: i64 => Timestep,
        /// Byte offset within the file.
        pub file_offset: i64 => FileOffset,
        /// File the burst landed in.
        pub file_name: String => FileName,
    }
}

/// Time `iters` calls of `f`; returns ops/sec.
fn ops_per_sec(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    iters as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

struct Section {
    name: &'static str,
    cold: f64,
    prepared: f64,
}

fn main() {
    let mut rows: u64 = 20_000;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if argv[i] == "--rows" {
            rows = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(rows);
            i += 2;
        } else {
            i += 1;
        }
    }
    // The lookup probes index into the populated key space; keep it
    // large enough that every (runid, timestep) probe can hit.
    rows = rows.max(128);

    let mut sections = Vec::new();

    // ---- INSERT: format+parse-per-call vs typed compiled-once ----
    // Stringly: each call renders the statement to SQL text (distinct
    // text per row, as a report generator interpolating values would)
    // and hands the string to the engine — per-call formatting, lexing,
    // and parsing, the shape the typed layer retired.
    let db = Database::new();
    db.exec_stmt(&ExecutionRow::TABLE.create_table(), &[])
        .unwrap();
    let cold_insert = ops_per_sec(rows, |i| {
        let sql = Insert::<ExecutionRow>::row(ExecutionRow {
            runid: 1,
            dataset: "p".into(),
            timestep: i as i64,
            file_offset: i as i64 * 512,
            file_name: "f.dat".into(),
        })
        .to_sql();
        db.exec(&sql, &[]).unwrap();
    });

    let db = Database::new();
    db.exec_stmt(&ExecutionRow::TABLE.create_table(), &[])
        .unwrap();
    let ins = Insert::<ExecutionRow>::prepared();
    let prep_insert = ops_per_sec(rows, |i| {
        db.exec_stmt(
            &ins,
            &[
                Value::Int(1),
                Value::from("p"),
                Value::Int(i as i64),
                Value::Int(i as i64 * 512),
                Value::from("f.dat"),
            ],
        )
        .unwrap();
    });
    sections.push(Section {
        name: "insert",
        cold: cold_insert,
        prepared: prep_insert,
    });

    // ---- Point lookup: full scan vs index probe through the store ----
    let store = SqlStore::new(Arc::new(Database::new()));
    store.ensure_schema().unwrap();
    for ts in 0..rows as i64 {
        store
            .record_execution(ts % 64, "p", ts, ts * 512, "f.dat")
            .unwrap();
    }

    // Cold: the same query over an unindexed twin of the same table
    // (identical row count and predicate), so the ratio isolates the
    // index probe. Fewer iterations keep the full scans affordable;
    // ops/sec normalizes.
    let db = store.database();
    db.exec_stmt(&ExecutionNoIdxRow::TABLE.create_table(), &[])
        .unwrap();
    let ins_noidx = Insert::<ExecutionNoIdxRow>::prepared();
    for ts in 0..rows as i64 {
        db.exec_stmt(
            &ins_noidx,
            &ExecutionNoIdxRow {
                runid: ts % 64,
                dataset: "p".into(),
                timestep: ts,
                file_offset: ts * 512,
                file_name: "f.dat".into(),
            }
            .into_row(),
        )
        .unwrap();
    }
    let lookups = 2_000u64;
    let cold_lookups = 200u64;
    let noidx_lookup = Query::<ExecutionNoIdxRow>::filter(
        ExecutionNoIdxCol::Runid
            .eq(param(0))
            .and(ExecutionNoIdxCol::Dataset.eq(param(1)))
            .and(ExecutionNoIdxCol::Timestep.eq(param(2))),
    )
    .select(&[ExecutionNoIdxCol::FileOffset, ExecutionNoIdxCol::FileName])
    .compile();
    let cold_lookup = ops_per_sec(cold_lookups, |i| {
        let rs = db
            .exec_stmt(
                &noidx_lookup,
                &[
                    Value::Int(i as i64 % 64),
                    Value::from("p"),
                    Value::Int(i as i64 % 64),
                ],
            )
            .unwrap();
        assert!(!rs.is_empty());
    });

    // Warm the typed plans with one lookup, then measure: from here on
    // the hot path must never re-parse — and never even *touch* SQL
    // text.
    store.lookup_execution(0, "p", 0).unwrap();
    db.reset_stats();
    let prep_lookup = ops_per_sec(lookups, |i| {
        let hit = store
            .lookup_execution(i as i64 % 64, "p", i as i64 % 64)
            .unwrap();
        assert!(hit.is_some());
    });
    let stats = db.stats();
    sections.push(Section {
        name: "indexed_lookup",
        cold: cold_lookup,
        prepared: prep_lookup,
    });

    // ---- Range probe: ordered (runid, timestep) walk vs full scan ----
    // A timestep window inside one run: `runid = ? AND timestep BETWEEN
    // ? AND ?`. Every 64th timestep belongs to the probed run, so a
    // 640-wide window selects ~10 rows out of `rows`. The baseline runs
    // the identical predicate over the unindexed twin; the indexed side
    // must resolve it as one equality-prefix + range walk of the
    // ordered composite, never a scan.
    let window = 640i64;
    let span = (rows as i64 - window).max(1);
    let range_q = Query::<ExecutionRow>::prefix_range(
        ExecutionCol::Runid,
        param(0),
        ExecutionCol::Timestep,
        param(1),
        param(2),
    )
    .select(&[ExecutionCol::Timestep, ExecutionCol::FileOffset])
    .compile();
    let range_noidx = Query::<ExecutionNoIdxRow>::prefix_range(
        ExecutionNoIdxCol::Runid,
        param(0),
        ExecutionNoIdxCol::Timestep,
        param(1),
        param(2),
    )
    .select(&[ExecutionNoIdxCol::Timestep, ExecutionNoIdxCol::FileOffset])
    .compile();
    let range_params = |i: u64| {
        let lo = (i as i64 * 97) % span;
        [
            Value::Int(lo % 64),
            Value::Int(lo),
            Value::Int(lo + window - 1),
        ]
    };
    let range_baseline = ops_per_sec(cold_lookups, |i| {
        let rs = db.exec_stmt(&range_noidx, &range_params(i)).unwrap();
        assert!(!rs.is_empty());
    });
    db.reset_stats();
    let range_lookup = ops_per_sec(lookups, |i| {
        let rs = db.exec_stmt(&range_q, &range_params(i)).unwrap();
        assert!(!rs.is_empty());
    });
    let range_stats = db.stats();
    assert_eq!(
        range_stats.full_scans, 0,
        "range window fell back to a full scan: {range_stats:?}"
    );
    assert_eq!(
        range_stats.plan_range_probes, lookups,
        "every window must be planned as a range probe: {range_stats:?}"
    );
    let range_speedup = range_lookup / range_baseline.max(1e-9);
    assert!(
        range_speedup >= 25.0,
        "ordered-index range probe must beat the full scan ≥25x, \
         got {range_speedup:.1}x ({range_lookup:.0} vs {range_baseline:.0} ops/s)"
    );

    // ---- Composite point probe: full (runid, timestep) key ----
    // Both key columns pinned: the planner must collapse the ordered
    // composite to a single-bucket point probe.
    let point_q = Query::<ExecutionRow>::filter(
        ExecutionCol::Runid
            .eq(param(0))
            .and(ExecutionCol::Timestep.eq(param(1))),
    )
    .select(&[ExecutionCol::FileOffset])
    .compile();
    db.reset_stats();
    let composite_probe = ops_per_sec(lookups, |i| {
        let k = i as i64 % 64;
        let rs = db
            .exec_stmt(&point_q, &[Value::Int(k), Value::Int(k)])
            .unwrap();
        assert!(!rs.is_empty());
    });
    let point_stats = db.stats();
    assert_eq!(
        point_stats.plan_point_probes, lookups,
        "full-key probes must be planned as point probes: {point_stats:?}"
    );

    // ---- Top-k: ORDER BY … LIMIT streamed off the ordered index ----
    // "Latest 10 timesteps of a run" must walk the (runid, timestep)
    // composite backwards and stop at the limit — zero sorts on the hot
    // path, witnessed by the planner counters.
    let topk_q = Query::<ExecutionRow>::filter(ExecutionCol::Runid.eq(param(0)))
        .order_by_desc(ExecutionCol::Timestep)
        .limit(10)
        .compile();
    db.reset_stats();
    let topk = ops_per_sec(lookups, |i| {
        let rs = db.exec_stmt(&topk_q, &[Value::Int(i as i64 % 64)]).unwrap();
        assert_eq!(rs.rows.len(), 10);
    });
    let topk_stats = db.stats();
    let hot_path_sorts = topk_stats.order_sorts;
    assert_eq!(
        hot_path_sorts, 0,
        "top-k hot path sorted instead of streaming: {topk_stats:?}"
    );
    assert_eq!(
        topk_stats.sorts_avoided, lookups,
        "every top-k query must stream off the ordered index: {topk_stats:?}"
    );

    // ---- Mixed insert/lookup: incremental index maintenance ----
    // The workload that used to collapse: every insert invalidated all
    // index maps, so the next probe rebuilt them over every row —
    // interleaved write/read traffic ran at full-rebuild speed. The
    // maps are now patched in place, so a probe right after an insert
    // costs the same as a probe after a thousand of them.
    let mixed_iters = 4_000u64;
    let base = rows as i64;
    db.reset_stats();
    let mixed_rw = ops_per_sec(mixed_iters, |i| {
        let ts = base + i as i64;
        store
            .record_execution(ts % 64, "p", ts, ts * 512, "f.dat")
            .unwrap();
        let hit = store
            .lookup_execution(i as i64 % 64, "p", i as i64 % 64)
            .unwrap();
        assert!(hit.is_some());
    });
    let mixed_stats = db.stats();
    assert_eq!(
        mixed_stats.full_scans, 0,
        "mixed-workload lookups fell back to full scans: {mixed_stats:?}"
    );
    assert_eq!(
        mixed_stats.index_scans, mixed_iters,
        "every mixed-workload lookup must probe an index: {mixed_stats:?}"
    );

    // ---- Concurrent readers: SELECTs hold the shared lock ----
    // 4 reader threads against one thread's throughput; reads no longer
    // funnel through the catalog write lock, so on ≥4 cores they scale
    // near-linearly (single-core CI containers can't show parallelism,
    // so the hard gate applies only where the cores exist).
    let read_threads = 4usize;
    let per_thread = 4_000u64;
    let single = ops_per_sec(per_thread, |i| {
        let hit = store
            .lookup_execution(i as i64 % 64, "p", i as i64 % 64)
            .unwrap();
        assert!(hit.is_some());
    });
    let start = Instant::now();
    std::thread::scope(|s| {
        for r in 0..read_threads as u64 {
            let store = &store;
            s.spawn(move || {
                for i in 0..per_thread {
                    let k = (i + r * 13) % 64;
                    let hit = store.lookup_execution(k as i64, "p", k as i64).unwrap();
                    assert!(hit.is_some());
                }
            });
        }
    });
    let aggregate =
        (read_threads as u64 * per_thread) as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let concurrent_read_speedup = aggregate / single.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= read_threads {
        assert!(
            concurrent_read_speedup >= 2.0,
            "4 reader threads on {cores} cores must beat one thread ≥2x, \
             got {concurrent_read_speedup:.2}x"
        );
    } else {
        assert!(
            concurrent_read_speedup > 0.2,
            "concurrent readers collapsed ({concurrent_read_speedup:.2}x on {cores} cores)"
        );
    }

    // ---- Transactions: undo log is O(rows touched) ----
    // A transaction logs row-level undo records; BEGIN never clones the
    // catalog. Touch exactly 64 rows of the (now much larger) execution
    // table — 32 inserts, 16 single-row updates, 16 single-row deletes
    // — and roll back: the engine must report exactly 64 rows undone.
    let tx_rows_touched = 64u64;
    let upd = Update::<ExecutionRow>::new()
        .set(ExecutionCol::FileOffset, param(0))
        .filter(ExecutionCol::Timestep.eq(param(1)))
        .compile();
    let del = Delete::<ExecutionRow>::filter(ExecutionCol::Timestep.eq(param(0))).compile();
    db.reset_stats();
    db.exec_stmt(&Stmt::begin(), &[]).unwrap();
    let tx_base = base + mixed_iters as i64;
    for i in 0..32 {
        store
            .record_execution(7, "tx", tx_base + i, i * 512, "tx.dat")
            .unwrap();
    }
    for i in 0..16i64 {
        // Each timestep value is unique in the table: one row per hit.
        let rs = db
            .exec_stmt(&upd, &[Value::Int(-1), Value::Int(base + i)])
            .unwrap();
        assert_eq!(rs.affected, 1);
    }
    for i in 16..32i64 {
        let rs = db.exec_stmt(&del, &[Value::Int(base + i)]).unwrap();
        assert_eq!(rs.affected, 1);
    }
    db.exec_stmt(&Stmt::rollback(), &[]).unwrap();
    let tx_rows_undone = db.stats().tx_rows_undone;
    assert_eq!(
        tx_rows_undone, tx_rows_touched,
        "rollback must undo exactly the rows touched, not the table"
    );
    let table_rows = db
        .exec_stmt(&Query::<ExecutionRow>::all().count().compile(), &[])
        .unwrap()
        .scalar()
        .and_then(Value::as_i64)
        .unwrap();
    assert!(
        table_rows as u64 > 4 * tx_rows_touched,
        "the table must dwarf the transaction for the O(touched) claim to mean anything"
    );

    // Begin→insert→rollback cycles on the big table: with clone-the-
    // catalog snapshots this paid O(table) per cycle; the undo log pays
    // O(1).
    let small_txs = 2_000u64;
    let small_tx = ops_per_sec(small_txs, |i| {
        db.exec_stmt(&Stmt::begin(), &[]).unwrap();
        store
            .record_execution(9, "cycle", tx_base + 100 + i as i64, 0, "c.dat")
            .unwrap();
        db.exec_stmt(&Stmt::rollback(), &[]).unwrap();
    });

    // ---- next_runid: MAX() fast path over a populated run_table ----
    for k in 0..512 {
        store
            .allocate_runid(if k % 2 == 0 { "fun3d" } else { "rt" })
            .unwrap();
    }
    let next_runid = ops_per_sec(lookups, |_| {
        store.latest_runid_for_app("fun3d").unwrap();
    });

    // ---- Filter evaluation: compiled program vs AST-walk twin ----
    // The predicate the executor runs per candidate row, both ways: the
    // instruction-list program (column slots, interned constants,
    // short-circuit jumps, zero allocation) against the interpreted
    // tree walk it replaced (per-node dispatch, name-hash column
    // lookups, a `Value` clone per node). Same expression, same rows,
    // same verdicts — the proptest suite pins the equivalence, this
    // section pins the price.
    let eval_schema = Schema::new(
        ExecutionRow::TABLE
            .columns
            .iter()
            .map(|c| Column {
                name: c.name.to_string(),
                ctype: c.ctype,
            })
            .collect(),
    )
    .unwrap();
    // runid = ? AND dataset = ? AND (timestep >= ? OR file_offset + 512 < ?)
    let bin = |op: BinOp, lhs: Expr, rhs: Expr| Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    };
    let filter_expr = bin(
        BinOp::And,
        bin(
            BinOp::And,
            bin(BinOp::Eq, Expr::Col("runid".into()), Expr::Param(0)),
            bin(BinOp::Eq, Expr::Col("dataset".into()), Expr::Param(1)),
        ),
        bin(
            BinOp::Or,
            bin(BinOp::Ge, Expr::Col("timestep".into()), Expr::Param(2)),
            bin(
                BinOp::Lt,
                bin(
                    BinOp::Add,
                    Expr::Col("file_offset".into()),
                    Expr::Lit(Value::Int(512)),
                ),
                Expr::Param(3),
            ),
        ),
    );
    let filter_prog = compile(&filter_expr, &eval_schema).expect("predicate compiles");
    let eval_rows: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Int(i % 64),
                Value::from("p"),
                Value::Int(i),
                Value::Int(i * 512),
                Value::from("f.dat"),
            ]
        })
        .collect();
    let filter_params = [
        Value::Int(7),
        Value::from("p"),
        Value::Int(rows as i64 / 2),
        Value::Int(4096),
    ];
    // Interleave the two variants and score each by its best pass:
    // back-to-back timing windows on a shared core let frequency drift
    // and interference skew the ratio run-to-run, while best-of-N pins
    // both sides to their least-disturbed pass.
    let eval_passes = 40u64;
    let (mut compiled_best, mut ast_best) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..eval_passes {
        let t = Instant::now();
        let mut hits = 0u64;
        for row in &eval_rows {
            if filter_prog.eval_truthy(row, &filter_params).unwrap() == Some(true) {
                hits += 1;
            }
        }
        compiled_best = compiled_best.min(t.elapsed().as_secs_f64());
        assert!(hits > 0, "predicate selected nothing");

        let t = Instant::now();
        let mut hits = 0u64;
        for row in &eval_rows {
            // analyze:allow(compiled-eval: the AST-walk baseline twin this section measures)
            let v = eval_ast(&filter_expr, &eval_schema, row, &filter_params).unwrap();
            if truthy(&v) == Some(true) {
                hits += 1;
            }
        }
        ast_best = ast_best.min(t.elapsed().as_secs_f64());
        assert!(hits > 0, "predicate selected nothing");
    }
    let filter_eval_ops = rows as f64 / compiled_best.max(1e-12);
    let filter_eval_ast_ops = rows as f64 / ast_best.max(1e-12);
    let filter_eval_speedup = filter_eval_ops / filter_eval_ast_ops.max(1e-9);
    assert!(
        filter_eval_speedup >= 3.0,
        "compiled evaluation must beat the AST walk ≥3x, got {filter_eval_speedup:.1}x \
         ({filter_eval_ops:.0} vs {filter_eval_ast_ops:.0} rows/s)"
    );

    // ---- Joins: merge + index-nested-loop off the runid indexes ----
    // The paper's cross-table history shape (runs ⋈ executions ON
    // runid) on a dedicated store: 64 recorded runs × 32 timesteps.
    // Both sides carry a runid-led ordered index, so the hot eq-join
    // must stream as a merge; the unindexed `execution_noidx` twin on
    // the left forces index-nested-loop probes into the indexed right
    // side. A hash table must never be built on this workload.
    let jstore = SqlStore::new(Arc::new(Database::new()));
    jstore.ensure_schema().unwrap();
    let join_runs = 64i64;
    let join_steps = 32i64;
    for run in 1..=join_runs {
        jstore
            .record_run(&RunRecord {
                runid: run,
                application: "fun3d".into(),
                dimension: 3,
                problem_size: 1000,
                num_timesteps: join_steps,
                date: (2001, 2, 20),
                time: (12, 0),
            })
            .unwrap();
        for ts in 0..join_steps {
            jstore
                .record_execution(run, "p", ts, ts * 512, "f.dat")
                .unwrap();
        }
    }
    let jdb = jstore.database();
    jdb.exec_stmt(&ExecutionNoIdxRow::TABLE.create_table(), &[])
        .unwrap();
    let ins_jnoidx = Insert::<ExecutionNoIdxRow>::prepared();
    for run in 1..=join_runs {
        jdb.exec_stmt(
            &ins_jnoidx,
            &ExecutionNoIdxRow {
                runid: run,
                dataset: "p".into(),
                timestep: 0,
                file_offset: 0,
                file_name: "f.dat".into(),
            }
            .into_row(),
        )
        .unwrap();
    }
    let merge_q = Query::<RunRow>::filter(RunCol::Application.eq(param(0)))
        .join_on::<ExecutionRow>(RunCol::Runid, ExecutionCol::Runid)
        .select_right(&[ExecutionCol::Timestep, ExecutionCol::FileOffset])
        .compile();
    let inl_q = Query::<ExecutionNoIdxRow>::all()
        .join_on::<ExecutionRow>(ExecutionNoIdxCol::Runid, ExecutionCol::Runid)
        .select_right(&[ExecutionCol::Timestep])
        .compile();
    let expect_pairs = (join_runs * join_steps) as usize;
    // Warm both plans (first execution compiles the predicates), then
    // measure with clean counters.
    jdb.exec_stmt(&merge_q, &[Value::from("fun3d")]).unwrap();
    jdb.exec_stmt(&inl_q, &[]).unwrap();
    let exprs_compiled_joins = jdb.stats().exprs_compiled;
    assert!(
        exprs_compiled_joins >= 1,
        "warming the join plans must compile their predicates"
    );
    jdb.reset_stats();
    let join_iters = 200u64;
    let merge_join_ops = ops_per_sec(join_iters, |_| {
        let rs = jdb.exec_stmt(&merge_q, &[Value::from("fun3d")]).unwrap();
        assert_eq!(rs.rows.len(), expect_pairs);
    });
    let inl_join_ops = ops_per_sec(join_iters, |_| {
        let rs = jdb.exec_stmt(&inl_q, &[]).unwrap();
        assert_eq!(rs.rows.len(), expect_pairs);
    });
    let join_stats = jdb.stats();
    assert_eq!(
        join_stats.join_merge_joins, join_iters,
        "every run⋈execution join must merge the ordered indexes: {join_stats:?}"
    );
    assert_eq!(
        join_stats.join_index_probes,
        join_iters * join_runs as u64,
        "the unindexed-left join must probe the indexed right side per outer row: {join_stats:?}"
    );
    assert_eq!(
        join_stats.join_hash_builds, 0,
        "no hash table may be built on the indexed join workload: {join_stats:?}"
    );
    let ast_walks_hot_path = stats.ast_eval_fallbacks + join_stats.ast_eval_fallbacks;
    assert_eq!(
        ast_walks_hot_path, 0,
        "the warmed hot path must never fall back to walking an AST"
    );

    // ---- Scoped session writes: metadata syncs per timestep ----
    // N datasets written per step through a TimestepScope must cost
    // exactly one metadata round-trip + sync (per rank) and one store
    // transaction per timestep; the legacy per-dataset path pays one
    // sync per dataset. The same world, same data, both paths.
    let procs = 4usize;
    let scope_datasets = 6usize;
    let scope_steps = 10i64;
    let global = 64u64;
    let scoped = |use_scope: bool| -> (u64, u64) {
        let pfs = Pfs::new(MachineConfig::test_tiny());
        let db = Arc::new(Database::new());
        let store = CachedStore::shared(&db);
        let syncs = World::run(procs, MachineConfig::test_tiny(), {
            let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
            move |c| {
                let mut sdm =
                    Sdm::initialize_with(c, &pfs, &store, "scoped", SdmConfig::default()).unwrap();
                let mut b = sdm.group(c);
                for d in 0..scope_datasets {
                    b = b.dataset::<f64>(format!("d{d}"), global);
                }
                let g = b.build().unwrap();
                let handles: Vec<_> = (0..scope_datasets)
                    .map(|d| g.handle::<f64>(&format!("d{d}")).unwrap())
                    .collect();
                let mine: Vec<u64> = (c.rank() as u64..global).step_by(c.size()).collect();
                for &h in &handles {
                    sdm.set_view(c, h, &mine).unwrap();
                }
                let vals: Vec<f64> = mine.iter().map(|&g| g as f64).collect();
                let before = c.counters().get("sdm.metadata_syncs");
                for t in 0..scope_steps {
                    if use_scope {
                        let mut step = sdm.timestep(c, t);
                        for &h in &handles {
                            step.write(h, &vals).unwrap();
                        }
                        step.commit().unwrap();
                    } else {
                        for &h in &handles {
                            sdm.write_handle(c, h, t, &vals).unwrap();
                        }
                    }
                }
                let after = c.counters().get("sdm.metadata_syncs");
                sdm.finalize(c).unwrap();
                after - before
            }
        });
        // World-shared counter: divide by ranks and steps to get
        // syncs-per-timestep; transactions are counted by the database
        // (rank 0 writes), minus the one `allocate_runid` reservation.
        let per_step = syncs[0] / (procs as u64 * scope_steps as u64);
        (per_step, db.stats().transactions - 1)
    };
    let (legacy_syncs_per_step, _) = scoped(false);
    let (scoped_syncs_per_step, scoped_txs) = scoped(true);
    assert_eq!(
        scoped_syncs_per_step, 1,
        "a TimestepScope must perform exactly one metadata sync per timestep"
    );
    assert_eq!(
        scoped_txs, scope_steps as u64,
        "a TimestepScope must land each step's execution rows in one transaction"
    );
    assert_eq!(
        legacy_syncs_per_step, scope_datasets as u64,
        "the legacy path pays one sync per dataset"
    );

    // The refactor's core invariant: after warmup, the typed hot path
    // never re-parses, never falls back to a full scan — and formats
    // zero SQL text (no string ever reaches the engine).
    assert_eq!(stats.parse_misses, 0, "typed path re-parsed: {stats:?}");
    assert_eq!(
        stats.sql_texts, 0,
        "typed path formatted/handled SQL text: {stats:?}"
    );
    assert_eq!(
        stats.full_scans, 0,
        "typed path fell back to full scans: {stats:?}"
    );
    assert_eq!(
        stats.index_scans, lookups,
        "every lookup must probe the index: {stats:?}"
    );

    // ---- Durability: WAL commits, group commit, recovery replay ----
    // File-backed: every autocommit INSERT is a redo append plus a
    // group-committed fsync — the durable metadata commit rate a crash
    // can never roll back past.
    let wal_dir = tempfile::tempdir().expect("wal tempdir");
    let durable_commits: u64 = 512;
    let ins_durable = Insert::<ExecutionRow>::prepared();
    let (durable_commit_ops, wal_bytes_per_commit, wal_fsyncs) = {
        let db = Database::open(wal_dir.path()).expect("open durable database");
        db.exec_stmt(&ExecutionRow::TABLE.create_table(), &[])
            .unwrap();
        let bytes_before = db.wal_appended_bytes();
        let ops = ops_per_sec(durable_commits, |i| {
            db.exec_stmt(
                &ins_durable,
                &[
                    Value::Int(1),
                    Value::from("p"),
                    Value::Int(i as i64),
                    Value::Int(i as i64 * 512),
                    Value::from("f.dat"),
                ],
            )
            .unwrap();
        });
        let per_commit = (db.wal_appended_bytes() - bytes_before) as f64 / durable_commits as f64;
        (ops, per_commit, db.stats().wal_fsyncs)
    };
    assert!(
        wal_fsyncs >= durable_commits,
        "single-threaded autocommits must fsync per commit"
    );

    // Crash recovery: reopen the directory and replay the whole log.
    let recovery_start = Instant::now();
    let recovered = Database::open(wal_dir.path()).expect("recover durable database");
    let recovery_secs = recovery_start.elapsed().as_secs_f64().max(1e-9);
    let rinfo = recovered.recovery_info().expect("durable database");
    let recovery_replay_txs = rinfo.replayed_txs as f64 / recovery_secs;
    let count_execs = Query::<ExecutionRow>::all().count().compile();
    assert_eq!(
        recovered.exec_stmt(&count_execs, &[]).unwrap().scalar(),
        Some(&Value::Int(durable_commits as i64)),
        "recovery must replay every committed insert"
    );

    // Group commit, deterministically: a backend whose fsync takes 10ms
    // forces concurrent committers to pile onto one leader flush, so
    // `group_commit_batched` counts followers that rode a shared fsync.
    #[derive(Debug)]
    struct SlowSync(MemStorage);
    impl WalStorage for SlowSync {
        fn append(&mut self, bytes: &[u8]) -> DbResult<()> {
            self.0.append(bytes)
        }
        fn sync(&mut self) -> DbResult<()> {
            std::thread::sleep(std::time::Duration::from_millis(10));
            self.0.sync()
        }
        fn rotate(&mut self) -> DbResult<()> {
            self.0.rotate()
        }
        fn drop_sealed(&mut self) -> DbResult<()> {
            self.0.drop_sealed()
        }
        fn read_segments(&self) -> DbResult<Vec<Vec<u8>>> {
            self.0.read_segments()
        }
        fn read_snapshot(&self) -> DbResult<Option<Vec<u8>>> {
            self.0.read_snapshot()
        }
        fn install_snapshot(&mut self, bytes: &[u8]) -> DbResult<()> {
            self.0.install_snapshot(bytes)
        }
    }
    let (mem, _mem_handle) = MemStorage::new();
    let slow_db =
        Arc::new(Database::open_with_storage(Box::new(SlowSync(mem))).expect("open slow-sync db"));
    slow_db
        .exec_stmt(&ExecutionRow::TABLE.create_table(), &[])
        .unwrap();
    let committers = 4;
    let handles: Vec<_> = (0..committers)
        .map(|t| {
            let db = Arc::clone(&slow_db);
            let ins = Insert::<ExecutionRow>::prepared();
            std::thread::spawn(move || {
                db.exec_stmt(
                    &ins,
                    &[
                        Value::Int(t),
                        Value::from("p"),
                        Value::Int(t),
                        Value::Int(0),
                        Value::from("f.dat"),
                    ],
                )
                .unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let group_commit_batched = slow_db.stats().group_commit_batched;
    assert!(
        group_commit_batched >= 1,
        "concurrent committers must share at least one fsync (batched = {group_commit_batched})"
    );

    println!("# bench_metadb: rows={rows} lookups={lookups}");
    for s in &sections {
        println!(
            "{:<16} stringly={:>12.0} ops/s   typed+indexed={:>12.0} ops/s   speedup={:>6.1}x",
            s.name,
            s.cold,
            s.prepared,
            s.prepared / s.cold
        );
    }
    println!(
        "range_window     scan={range_baseline:>12.0} ops/s   ordered-index={range_lookup:>12.0} ops/s   speedup={range_speedup:>6.1}x"
    );
    println!("composite_probe  {composite_probe:>12.0} ops/s (full (runid, timestep) key)");
    println!(
        "top-k stream     {topk:>12.0} ops/s ({} ordered scans, {} sorts avoided, {hot_path_sorts} sorts)",
        topk_stats.plan_ordered_scans, topk_stats.sorts_avoided
    );
    println!("next_runid       {next_runid:>12.0} ops/s (MAX fast path)");
    println!(
        "filter_eval      ast={filter_eval_ast_ops:>12.0} rows/s   compiled={filter_eval_ops:>12.0} rows/s   speedup={filter_eval_speedup:>6.1}x"
    );
    println!(
        "joins            merge={merge_join_ops:>10.0} ops/s   inl={inl_join_ops:>10.0} ops/s \
         ({} merges, {} probes, {} hash builds, {ast_walks_hot_path} ast walks)",
        join_stats.join_merge_joins, join_stats.join_index_probes, join_stats.join_hash_builds
    );
    println!("mixed_rw         {mixed_rw:>12.0} pairs/s (insert+lookup, incremental maps)");
    println!(
        "concurrent reads {concurrent_read_speedup:>11.2}x aggregate over 1 thread \
         ({read_threads} threads, {cores} cores)"
    );
    println!(
        "tx rollback      {tx_rows_undone} rows undone for {tx_rows_touched} touched \
         (table: {table_rows} rows); small tx cycles {small_tx:.0} ops/s"
    );
    println!(
        "scoped writes    {scoped_syncs_per_step} sync/timestep (legacy: {legacy_syncs_per_step}), {scoped_txs} txs / {scope_steps} steps"
    );
    println!(
        "durable commits  {durable_commit_ops:>12.0} ops/s ({wal_bytes_per_commit:.0} wal bytes/commit, \
         {wal_fsyncs} fsyncs)"
    );
    println!(
        "recovery replay  {recovery_replay_txs:>12.0} txs/s ({} txs, {} records)",
        rinfo.replayed_txs, rinfo.replayed_records
    );
    println!("group commit     {group_commit_batched} followers rode a shared fsync ({committers} committers)");

    // Machine-readable trajectory point.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"rows\": {rows},\n"));
    for s in &sections {
        json.push_str(&format!(
            "  \"{0}_cold_ops_per_sec\": {1:.1},\n  \"{0}_prepared_ops_per_sec\": {2:.1},\n",
            s.name, s.cold, s.prepared
        ));
    }
    json.push_str(&format!(
        "  \"range_lookup_ops_per_sec\": {range_lookup:.1},\n  \"range_baseline_ops_per_sec\": {range_baseline:.1},\n  \"range_speedup\": {range_speedup:.1},\n"
    ));
    json.push_str(&format!(
        "  \"composite_probe_ops_per_sec\": {composite_probe:.1},\n  \"topk_stream_ops_per_sec\": {topk:.1},\n"
    ));
    json.push_str(&format!(
        "  \"plan_point_probes\": {},\n  \"plan_range_probes\": {},\n  \"plan_ordered_scans\": {},\n  \"sorts_avoided\": {},\n  \"hot_path_sorts\": {hot_path_sorts},\n",
        point_stats.plan_point_probes,
        range_stats.plan_range_probes,
        topk_stats.plan_ordered_scans,
        topk_stats.sorts_avoided
    ));
    json.push_str(&format!("  \"next_runid_ops_per_sec\": {next_runid:.1},\n"));
    json.push_str(&format!(
        "  \"filter_eval_ops_per_sec\": {filter_eval_ops:.1},\n  \"filter_eval_ast_ops_per_sec\": {filter_eval_ast_ops:.1},\n  \"filter_eval_speedup\": {filter_eval_speedup:.1},\n"
    ));
    json.push_str(&format!(
        "  \"join_ops_per_sec\": {merge_join_ops:.1},\n  \"join_inl_ops_per_sec\": {inl_join_ops:.1},\n"
    ));
    json.push_str(&format!(
        "  \"join_merge_joins\": {},\n  \"join_index_probes\": {},\n  \"join_hash_builds\": {},\n  \"ast_walks_hot_path\": {ast_walks_hot_path},\n  \"exprs_compiled\": {exprs_compiled_joins},\n",
        join_stats.join_merge_joins,
        join_stats.join_index_probes,
        join_stats.join_hash_builds
    ));
    json.push_str(&format!(
        "  \"mixed_rw_lookup_ops_per_sec\": {mixed_rw:.1},\n"
    ));
    // `gate_armed` records whether the ≥2x scaling gate actually
    // applied on this machine: on fewer cores than reader threads the
    // speedup number is a liveness check, not a scaling measurement,
    // and must not be read as a regression.
    json.push_str(&format!(
        "  \"concurrent_read_speedup\": {concurrent_read_speedup:.2},\n  \"concurrent_read_gate_armed\": {},\n  \"concurrent_read_threads\": {read_threads},\n  \"concurrent_read_cores\": {cores},\n",
        cores >= read_threads
    ));
    json.push_str(&format!(
        "  \"tx_rows_touched\": {tx_rows_touched},\n  \"tx_rows_undone\": {tx_rows_undone},\n  \"small_tx_rollback_ops_per_sec\": {small_tx:.1},\n"
    ));
    json.push_str(&format!(
        "  \"scoped_syncs_per_timestep\": {scoped_syncs_per_step},\n  \"legacy_syncs_per_timestep\": {legacy_syncs_per_step},\n  \"scoped_store_tx_per_timestep\": {},\n",
        scoped_txs / scope_steps as u64
    ));
    json.push_str(&format!(
        "  \"durable_commit_ops_per_sec\": {durable_commit_ops:.1},\n  \"wal_bytes_per_commit\": {wal_bytes_per_commit:.1},\n  \"recovery_replay_txs_per_sec\": {recovery_replay_txs:.1},\n  \"group_commit_batched\": {group_commit_batched},\n"
    ));
    json.push_str(&format!(
        "  \"parse_misses_hot_path\": {},\n  \"full_scans_hot_path\": {},\n  \"typed_sql_strings_formatted\": {}\n}}\n",
        stats.parse_misses, stats.full_scans, stats.sql_texts
    ));
    std::fs::write("BENCH_metadb.json", json).expect("write BENCH_metadb.json");
    println!("wrote BENCH_metadb.json");
}
