//! Ablation A4: two-phase collective I/O vs independent data-sieving vs
//! naive per-segment I/O on the FUN3D interleaved node-write pattern —
//! the MPI-IO optimization stack the paper's Section 2 credits.

use std::sync::Arc;

use sdm_bench::{print_header, HarnessArgs};
use sdm_mpi::datatype::Datatype;
use sdm_mpi::io::{Hints, MpiFile};
use sdm_mpi::World;
use sdm_pfs::Pfs;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    let procs = args.procs.unwrap_or(16);
    let elems_per_rank = ((args.fun3d_nodes() / procs).max(256)) & !1;
    print_header(
        "Ablation A4: collective vs sieved vs naive noncontiguous writes",
        &cfg,
        &format!("procs={procs} elems/rank={elems_per_rank}"),
    );

    let run = |mode: &'static str| -> f64 {
        let pfs = Pfs::new(cfg.clone());
        let times = World::run(procs, cfg.clone(), {
            let pfs = Arc::clone(&pfs);
            move |c| {
                let mut f = MpiFile::open_collective(c, &pfs, "a4.dat", true).unwrap();
                // Interleaved blocks: rank r owns elements [8r, 8r+8) of
                // every record. Useful-byte density within a rank's span
                // is 8/(8·procs); the covering window density once
                // neighbouring blocks interleave is what sieving sees,
                // and blocks of 8 keep it above the sieve threshold
                // while per-element writes stay tiny for the naive path.
                let t = Datatype::resized(
                    (procs * 64) as u64,
                    Datatype::indexed_block(8, vec![c.rank() as u64 * 8], Datatype::double()),
                );
                f.set_view(c, 0, t.flatten().unwrap()).unwrap();
                let mine = vec![c.rank() as f64; elems_per_rank];
                c.barrier();
                let t0 = c.now();
                match mode {
                    "collective" => f.write_all(c, 0, &mine).unwrap(),
                    "sieved" => {
                        // ROMIO always data-sieves independent
                        // noncontiguous writes; our density threshold is
                        // a refinement knob, so pin it open here.
                        f.set_hints(Hints {
                            sieve_min_density: 0.0,
                            ..Default::default()
                        });
                        f.write_view(c, 0, &mine).unwrap();
                        c.barrier();
                    }
                    _ => {
                        // Naive: force per-segment writes by disabling sieving.
                        f.set_hints(Hints {
                            sieve_min_density: 2.0,
                            ..Default::default()
                        });
                        f.write_view(c, 0, &mine).unwrap();
                        c.barrier();
                    }
                }
                let dt = c.now() - t0;
                f.close(c);
                dt
            }
        });
        times.into_iter().fold(0.0f64, f64::max)
    };

    let coll = run("collective");
    let sieve = run("sieved");
    let naive = run("naive");
    let mb = (procs * elems_per_rank * 8) as f64 / 1e6;
    println!();
    println!("{:<14} {:>10} {:>12}", "mode", "time (s)", "MB/s");
    for (m, t) in [("collective", coll), ("sieved", sieve), ("naive", naive)] {
        println!("{m:<14} {t:>10.4} {:>12.1}", mb / t);
    }
    assert!(
        coll < sieve,
        "two-phase must beat independent sieving on interleaved data"
    );
    assert!(sieve < naive, "sieving must beat per-segment I/O");
    println!(
        "\nPASS: collective < sieved < naive ({:.1}x total spread)",
        naive / coll
    );
}
