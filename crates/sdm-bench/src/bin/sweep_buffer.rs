//! Ablation A2: "Clearly, there is an optimal buffer size that shows the
//! best I/O performance" (Figure 7 discussion). Sweep the per-process
//! data volume by varying the process count on a fixed dataset, plus the
//! collective-buffering stage size, and report write bandwidth.

use std::sync::Arc;

use sdm_apps::rt::run_sdm;
use sdm_apps::RtWorkload;
use sdm_bench::{aggregate, fresh_world, print_header, HarnessArgs};
use sdm_core::OrgLevel;
use sdm_mpi::World;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    print_header(
        "Ablation A2: per-process buffer size vs write bandwidth",
        &cfg,
        "",
    );
    println!("{:<8} {:>14} {:>12}", "procs", "MB/proc/step", "write MB/s");

    let mut bws = Vec::new();
    for procs in [4usize, 8, 16, 32, 64, 128] {
        let w = RtWorkload::new(args.rt_nodes(), procs, args.seed);
        let per_proc = w.step_bytes() as f64 / procs as f64 / 1e6;
        let (pfs, store) = fresh_world(&cfg);
        let rep = aggregate(World::run(procs, cfg.clone(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| run_sdm(c, &pfs, &store, &w, OrgLevel::Level2).unwrap()
        }));
        let bw = rep.bandwidth_mbs("write");
        println!("{procs:<8} {per_proc:>14.3} {bw:>12.1}");
        bws.push(bw);
    }
    println!();
    let best = bws.iter().cloned().fold(0.0f64, f64::max);
    let last = *bws.last().unwrap();
    assert!(
        last < best,
        "bandwidth must degrade once per-process buffers get small (best {best:.1}, 128p {last:.1})"
    );
    println!("PASS: bandwidth peaks at {best:.1} MB/s and degrades as per-process buffers shrink");
}
