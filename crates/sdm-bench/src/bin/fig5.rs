//! Figure 5: execution time for partitioning indices and data in FUN3D.
//!
//! Three configurations, each split into the paper's two bars:
//! `index distri.` and `import`:
//!   1. Original — rank-0 read + broadcast, two-pass edge scan;
//!   2. SDM without history — parallel MPI-IO import + ring distribution;
//!   3. SDM with history — replay from the history file.
//!
//! Paper shape: Original > SDM(no history) > SDM(with history), with the
//! history run's `index distri.` reduced to a contiguous history-file
//! read and its `import` shrunk by the skipped edge arrays.
//!
//! Usage: `cargo run --release -p sdm-bench --bin fig5 [--scale F]
//! [--procs N] [--machine origin2000|high-open-cost] [--seed S]`

use std::sync::Arc;

use sdm_apps::fun3d::{run_sdm, Fun3dOptions};
use sdm_apps::original::fun3d_original_import;
use sdm_apps::{Fun3dWorkload, PhaseReport};
use sdm_bench::{aggregate, fresh_world, print_header, print_time_row, HarnessArgs};
use sdm_mpi::World;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    let procs = args.procs.unwrap_or(64);
    let w = Fun3dWorkload::new(args.fun3d_nodes(), procs, args.seed);

    print_header(
        "Figure 5: FUN3D index distribution + import time",
        &cfg,
        &format!(
            "procs={procs} nodes={} edges={} import={:.1}MB (paper: 64 procs, 2.2M nodes, 18M edges, 807MB)",
            w.mesh.num_nodes(),
            w.mesh.num_edges(),
            w.import_bytes() as f64 / 1e6
        ),
    );

    // --- Original ---
    let (pfs, _db) = fresh_world(&cfg);
    w.stage(&pfs);
    let reports = World::run(procs, cfg.clone(), {
        let (pfs, w) = (Arc::clone(&pfs), w.clone());
        move |c| fun3d_original_import(c, &pfs, &w).unwrap().0
    });
    let orig = aggregate(reports);

    // --- SDM without history ---
    let (pfs, store) = fresh_world(&cfg);
    w.stage(&pfs);
    let no_hist: PhaseReport = aggregate(World::run(procs, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let opts = Fun3dOptions {
                register_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap().report
        }
    }));

    // --- SDM with history (same pfs + store: the registration persists) ---
    pfs.reset_timing();
    let results = World::run(procs, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let opts = Fun3dOptions {
                use_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap()
        }
    });
    assert!(
        results.iter().all(|r| r.history_hit),
        "history must hit on the second run"
    );
    let with_hist = aggregate(results.into_iter().map(|r| r.report).collect());

    println!();
    for (label, r) in [
        ("Original", &orig),
        ("SDM (without history)", &no_hist),
        ("SDM (with history)", &with_hist),
    ] {
        print_time_row(
            label,
            &[
                ("index_distri", r.get("index-distribution")),
                ("import", r.get("import")),
                ("total", r.get("index-distribution") + r.get("import")),
            ],
        );
    }

    // Shape checks (the paper's qualitative claims).
    let t = |r: &PhaseReport| r.get("index-distribution") + r.get("import");
    println!();
    println!(
        "shape: original/sdm = {:.2}x, no-history/history = {:.2}x",
        t(&orig) / t(&no_hist),
        t(&no_hist) / t(&with_hist)
    );
    assert!(t(&orig) > t(&no_hist), "SDM must beat the original");
    assert!(
        with_hist.get("import") <= no_hist.get("import"),
        "history skips the edge import"
    );
    // Below ~1/8 of the paper's problem the fixed metadata costs of the
    // history lookup (64 serialized DB round trips) outweigh the saved
    // ring distribution — a real crossover; the paper's 807 MB workload
    // sits far above it. Enforce the history claims only above it.
    if args.scale >= 0.1 {
        assert!(
            t(&no_hist) > t(&with_hist),
            "history must beat fresh distribution"
        );
        assert!(
            with_hist.get("index-distribution") < no_hist.get("index-distribution"),
            "history replaces the ring distribution with a contiguous read"
        );
        println!("PASS: Original > SDM(no hist) > SDM(hist), per-phase shape holds");
    } else {
        println!(
            "PASS: Original > SDM. NOTE: at scale {} the run is below the history
             crossover (metadata round trips outweigh the saved distribution);
             rerun with --scale 0.125 or larger to see the paper's full shape.",
            args.scale
        );
    }
}
