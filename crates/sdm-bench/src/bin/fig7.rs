//! Figure 7: Rayleigh-Taylor write bandwidth — Original vs SDM Level 1
//! vs SDM Level 2/3, at 32 and 64 processors (paper: ~550 MB total;
//! SDM an order of magnitude over the serialized original; 64 procs
//! slower than 32 for the same data because per-process buffers shrink).
//!
//! Usage: `cargo run --release -p sdm-bench --bin fig7 [--scale F]`

use std::sync::Arc;

use sdm_apps::rt::{run_original, run_sdm};
use sdm_apps::RtWorkload;
use sdm_bench::{aggregate, fresh_world, print_bw_row, print_header, HarnessArgs};
use sdm_core::OrgLevel;
use sdm_mpi::World;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    let proc_counts = match args.procs {
        Some(p) => vec![p],
        None => vec![32, 64],
    };

    print_header(
        "Figure 7: RT write bandwidth",
        &cfg,
        "(paper: 550MB total, 32 and 64 procs)",
    );

    let mut rows: Vec<(String, f64)> = Vec::new();
    for &procs in &proc_counts {
        let w = RtWorkload::new(args.rt_nodes(), procs, args.seed);
        println!(
            "\n-- procs={procs} nodes={} tris={} total={:.1}MB --",
            w.mesh.num_nodes(),
            w.mesh.num_cells(),
            w.total_bytes() as f64 / 1e6
        );

        // Original (serialized writes).
        let (pfs, _db) = fresh_world(&cfg);
        let orig = aggregate(World::run(procs, cfg.clone(), {
            let (pfs, w) = (Arc::clone(&pfs), w.clone());
            move |c| run_original(c, &pfs, &w).unwrap()
        }));
        let obw = orig.bandwidth_mbs("write");
        print_bw_row(&format!("Original p={procs}"), &[("write", obw)]);
        rows.push((format!("orig-{procs}"), obw));

        // SDM Level 1 and Level 2/3.
        for (label, org) in [
            ("Level 1", OrgLevel::Level1),
            ("Level 2/3", OrgLevel::Level2),
        ] {
            let (pfs, store) = fresh_world(&cfg);
            let rep = aggregate(World::run(procs, cfg.clone(), {
                let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
                move |c| run_sdm(c, &pfs, &store, &w, org).unwrap()
            }));
            let bw = rep.bandwidth_mbs("write");
            print_bw_row(&format!("SDM {label} p={procs}"), &[("write", bw)]);
            rows.push((format!("sdm-{label}-{procs}"), bw));
        }
    }

    println!();
    // Shape checks.
    let get = |k: &str| {
        rows.iter()
            .find(|(n, _)| n == k)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };
    for &procs in &proc_counts {
        let orig = get(&format!("orig-{procs}"));
        let sdm1 = get(&format!("sdm-Level 1-{procs}"));
        let sdm23 = get(&format!("sdm-Level 2/3-{procs}"));
        println!(
            "shape p={procs}: SDM/original = {:.1}x, |L1 - L2/3|/L1 = {:.3}",
            sdm23 / orig,
            (sdm1 - sdm23).abs() / sdm1
        );
        assert!(sdm23 > orig, "p={procs}: SDM must beat the original");
        if args.scale >= 0.2 {
            assert!(
                sdm23 > orig * 2.0,
                "p={procs}: SDM must significantly beat the original"
            );
            assert!(
                (sdm1 - sdm23).abs() / sdm1 < 0.35,
                "p={procs}: levels should be close on the Origin2000 model"
            );
        }
    }
    if proc_counts.len() == 2 {
        let bw32 = get("sdm-Level 2/3-32");
        let bw64 = get("sdm-Level 2/3-64");
        println!(
            "shape: SDM BW 64p/32p = {:.3}x (paper: < 1 — smaller per-process buffers)",
            bw64 / bw32
        );
        assert!(
            bw64 < bw32,
            "64 procs must be slower than 32 for the same data"
        );
    }
    if args.scale >= 0.2 {
        println!("PASS: SDM >> original; L1 ~ L2/3; BW(64) < BW(32)");
    } else {
        println!(
            "PASS: SDM > original; BW(64) < BW(32). NOTE: fixed open/view costs
             dominate at scale {}; rerun with --scale 0.25 for the paper's full gap.",
            args.scale
        );
    }
}
