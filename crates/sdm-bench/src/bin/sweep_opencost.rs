//! Ablation A5: Level 1 vs Level 3 bandwidth gap as the file-open cost
//! grows. Reproduces the paper's explanation for Figure 6: "On the SGI
//! Origin2000, the difference between three file organizations is not
//! significant because the file-open cost is small" — and its converse,
//! "if a file system has high file-open and file-close costs ... SDM can
//! generate a very small number of files."

use std::sync::Arc;

use sdm_apps::fun3d::{run_sdm, Fun3dOptions};
use sdm_apps::Fun3dWorkload;
use sdm_bench::{aggregate, print_header, HarnessArgs};
use sdm_core::CachedStore;
use sdm_core::OrgLevel;
use sdm_metadb::Database;
use sdm_mpi::World;
use sdm_pfs::Pfs;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let procs = args.procs.unwrap_or(16);
    let w = Fun3dWorkload::new(args.fun3d_nodes() / 4, procs, args.seed);
    let base = args.machine_config();
    print_header(
        "Ablation A5: open-cost sensitivity of Level 1 vs 3",
        &base,
        &format!("procs={procs}"),
    );
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "open_cost", "L1 MB/s", "L3 MB/s", "L3/L1"
    );

    let mut ratios = Vec::new();
    for mult in [1.0, 10.0, 100.0, 1000.0] {
        let mut cfg = base.clone();
        cfg.io.open_cost *= mult;
        cfg.io.close_cost *= mult;
        cfg.io.view_cost *= mult;
        let mut bws = Vec::new();
        for org in [OrgLevel::Level1, OrgLevel::Level3] {
            let pfs = Pfs::new(cfg.clone());
            let store = CachedStore::shared(&Arc::new(Database::new()));
            w.stage(&pfs);
            let rep = aggregate(World::run(procs, cfg.clone(), {
                let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
                move |c| {
                    let opts = Fun3dOptions {
                        org,
                        ..Default::default()
                    };
                    run_sdm(c, &pfs, &store, &w, &opts).unwrap().report
                }
            }));
            bws.push(rep.bandwidth_mbs("write"));
        }
        let ratio = bws[1] / bws[0];
        println!(
            "{:<14.4} {:>12.1} {:>12.1} {:>8.2}",
            cfg.io.open_cost, bws[0], bws[1], ratio
        );
        ratios.push(ratio);
    }
    println!();
    assert!(
        ratios.windows(2).all(|w| w[1] > w[0]),
        "Level 3's advantage must grow monotonically with open cost: {ratios:?}"
    );
    assert!(
        ratios[0] == ratios.iter().cloned().fold(f64::INFINITY, f64::min),
        "the gap must be smallest at the Origin2000's real (low) open cost"
    );
    println!(
        "PASS: L3/L1 advantage grows monotonically from {:.2}x to {:.2}x",
        ratios[0],
        ratios.last().unwrap()
    );
    println!(
        "(at paper scale the base gap shrinks toward 1 — Figure 6's \
         \"difference is not significant\")"
    );
}
