//! Figure 6: FUN3D write/read bandwidth under Level 1 / 2 / 3 file
//! organizations (paper: ~379 MB over 5 datasets × 2 timesteps on 64
//! procs; Level 3 best, gaps small because XFS opens are cheap).
//!
//! Usage: `cargo run --release -p sdm-bench --bin fig6 [--scale F]
//! [--procs N] [--machine origin2000|high-open-cost]`

use std::sync::Arc;

use sdm_apps::fun3d::{run_sdm, Fun3dOptions};
use sdm_apps::Fun3dWorkload;
use sdm_bench::{aggregate, fresh_world, print_bw_row, print_header, HarnessArgs};
use sdm_core::OrgLevel;
use sdm_mpi::World;

fn main() {
    let args = HarnessArgs::parse(std::env::args().skip(1));
    let cfg = args.machine_config();
    let procs = args.procs.unwrap_or(64);
    let w = Fun3dWorkload::new(args.fun3d_nodes(), procs, args.seed);
    let total_mb = (w.checkpoint_bytes() * w.timesteps as u64) as f64 / 1e6;

    print_header(
        "Figure 6: FUN3D I/O bandwidth by file organization",
        &cfg,
        &format!("procs={procs} data={total_mb:.1}MB (paper: 379MB, 64 procs)"),
    );
    println!();

    let mut write_bw = Vec::new();
    let mut read_bw = Vec::new();
    for org in OrgLevel::all() {
        let (pfs, store) = fresh_world(&cfg);
        w.stage(&pfs);
        let rep = aggregate(World::run(procs, cfg.clone(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| {
                let opts = Fun3dOptions {
                    org,
                    ..Default::default()
                };
                run_sdm(c, &pfs, &store, &w, &opts).unwrap().report
            }
        }));
        let files = pfs
            .list()
            .iter()
            .filter(|f| f.starts_with("fun3d.g0"))
            .count();
        let wbw = rep.bandwidth_mbs("write");
        let rbw = rep.bandwidth_mbs("read");
        print_bw_row(
            &format!("{} ({files} files)", org.label()),
            &[("write", wbw), ("read", rbw)],
        );
        write_bw.push(wbw);
        read_bw.push(rbw);
    }

    println!();
    println!(
        "shape: write L3/L1 = {:.3}x, read L3/L1 = {:.3}x",
        write_bw[2] / write_bw[0],
        read_bw[2] / read_bw[0]
    );
    // Paper shape: level 3 >= level 2 >= level 1 (small gaps at low open
    // cost; see --machine high-open-cost for when it matters).
    assert!(write_bw[2] >= write_bw[1] * 0.999 && write_bw[1] >= write_bw[0] * 0.999);
    assert!(read_bw[2] >= read_bw[0] * 0.999);
    println!("PASS: BW(L1) <= BW(L2) <= BW(L3)");
}
