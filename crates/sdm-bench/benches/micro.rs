//! Criterion micro-benchmarks for the mechanisms behind the figures:
//! datatype flattening and view mapping, partitioner quality/speed,
//! metadata-database operations, collectives, and two-phase I/O.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdm_mesh::gen::tet_box;
use sdm_mesh::CsrGraph;
use sdm_metadb::stmt::{Insert, Query, Relation, TypedColumn};
use sdm_metadb::{relation, Database, Value};
use sdm_mpi::datatype::Datatype;
use sdm_mpi::io::MpiFile;
use sdm_mpi::World;
use sdm_partition::{partition, Method};
use sdm_pfs::Pfs;
use sdm_sim::MachineConfig;

fn bench_datatype_flatten(c: &mut Criterion) {
    let mut g = c.benchmark_group("datatype_flatten");
    for &n in &[1_000usize, 10_000, 100_000] {
        // Worst case: every other element (no coalescing).
        let displs: Vec<u64> = (0..n as u64).map(|i| i * 2).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("strided", n), &displs, |b, d| {
            b.iter(|| {
                Datatype::indexed_block(1, d.clone(), Datatype::double())
                    .flatten()
                    .unwrap()
            })
        });
        // Best case: contiguous run (collapses to one segment).
        let contig: Vec<u64> = (0..n as u64).collect();
        g.bench_with_input(BenchmarkId::new("contiguous", n), &contig, |b, d| {
            b.iter(|| {
                Datatype::indexed_block(1, d.clone(), Datatype::double())
                    .flatten()
                    .unwrap()
            })
        });
    }
    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mesh = tet_box(12, 12, 12, 0.2, 3);
    let graph = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
    let mut g = c.benchmark_group("partitioner");
    g.sample_size(10);
    for method in [Method::Multilevel, Method::Rcb, Method::Block] {
        g.bench_function(format!("{method:?}_k8"), |b| {
            b.iter(|| partition(&graph, Some(&mesh.coords), 8, method, 1))
        });
    }
    g.finish();
}

relation! {
    /// Three-column micro-bench relation.
    pub struct WideRow in "t_wide" as WideCol {
        /// Integer key.
        pub a: i64 => A,
        /// Text payload.
        pub b: String => B,
        /// Double payload.
        pub c: f64 => C,
    }
}

relation! {
    /// Two-column micro-bench relation.
    pub struct PairRow in "t_pair" as PairCol {
        /// Integer key.
        pub a: i64 => A,
        /// Text payload.
        pub b: String => B,
    }
}

fn bench_metadb(c: &mut Criterion) {
    let mut g = c.benchmark_group("metadb");
    g.bench_function("insert", |b| {
        let db = Database::new();
        db.exec_stmt(&WideRow::TABLE.create_table(), &[]).unwrap();
        let ins = Insert::<WideRow>::prepared();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            db.exec_stmt(
                &ins,
                &[Value::Int(i), Value::from("name"), Value::Double(1.5)],
            )
            .unwrap()
        })
    });
    g.bench_function("select_filtered", |b| {
        let db = Database::new();
        db.exec_stmt(&PairRow::TABLE.create_table(), &[]).unwrap();
        let ins = Insert::<PairRow>::prepared();
        for i in 0..1000 {
            db.exec_stmt(&ins, &[Value::Int(i), Value::from("x")])
                .unwrap();
        }
        let q = Query::<PairRow>::filter(PairCol::A.ge(500i64).and(PairCol::A.lt(510i64)))
            .select(&[PairCol::A])
            .compile();
        b.iter(|| db.exec_stmt(&q, &[]).unwrap())
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);
    for &p in &[4usize, 8] {
        g.bench_function(format!("allgather_p{p}"), |b| {
            b.iter(|| {
                World::run(p, MachineConfig::test_tiny(), |comm| {
                    comm.allgather(&vec![comm.rank() as u64; 1024])
                        .unwrap()
                        .len()
                })
            })
        });
        g.bench_function(format!("alltoallv_p{p}"), |b| {
            b.iter(|| {
                World::run(p, MachineConfig::test_tiny(), |comm| {
                    let blocks = vec![vec![1u64; 512]; comm.size()];
                    comm.alltoallv(blocks).unwrap().len()
                })
            })
        });
    }
    g.finish();
}

fn bench_two_phase(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_phase_io");
    g.sample_size(10);
    let p = 8usize;
    let elems = 4096usize;
    g.throughput(Throughput::Bytes((p * elems * 8) as u64));
    g.bench_function("interleaved_write_all", |b| {
        b.iter(|| {
            let pfs = Pfs::new(MachineConfig::test_tiny());
            World::run(p, MachineConfig::test_tiny(), {
                let pfs = Arc::clone(&pfs);
                move |comm| {
                    let mut f = MpiFile::open_collective(comm, &pfs, "b.dat", true).unwrap();
                    let t = Datatype::resized(
                        (p * 8) as u64,
                        Datatype::indexed_block(1, vec![comm.rank() as u64], Datatype::double()),
                    );
                    f.set_view(comm, 0, t.flatten().unwrap()).unwrap();
                    f.write_all(comm, 0, &vec![1.0f64; elems]).unwrap();
                    f.close(comm);
                }
            })
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_datatype_flatten,
    bench_partitioner,
    bench_metadb,
    bench_collectives,
    bench_two_phase
);
criterion_main!(benches);
