//! # SDM — Scientific Data Manager for irregular applications
//!
//! Umbrella crate re-exporting the whole workspace: a from-scratch Rust
//! reproduction of *"A Scientific Data Management System for Irregular
//! Applications"* (No, Thakur, Kaushik, Freitag, Choudhary — IPPS 2001).
//!
//! Start with [`core`] (the SDM API itself) and the `examples/` directory;
//! `DESIGN.md` maps every paper system and experiment to a module.

pub use sdm_apps as apps;
pub use sdm_core as core;
pub use sdm_mesh as mesh;
pub use sdm_metadb as metadb;
pub use sdm_mpi as mpi;
pub use sdm_partition as partition;
pub use sdm_pfs as pfs;
pub use sdm_sci as sci;
pub use sdm_sim as sim;
