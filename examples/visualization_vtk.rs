//! Visualization output — the paper's other future-work direction.
//!
//! A distributed edge-sweep computes a node field through SDM's
//! partitioning machinery; the owned results are gathered and rendered
//! as a legacy-VTK unstructured grid (with the partition assignment as
//! a cell field), landing in the PFS where a viewer-side process would
//! pick it up.
//!
//! Run: `cargo run --example visualization_vtk`

use sdm::apps::fun3d::{edge_sweep_reference, RESULT_DATASETS};
use sdm::apps::Fun3dWorkload;
use sdm::core::Sdm;
use sdm::mesh::CellKind;
use sdm::pfs::Pfs;
use sdm::sci::vtk::{render_vtk, write_vtk, ScalarField};
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 4;
    let cfg = MachineConfig::origin2000();
    let w = Fun3dWorkload::new(800, nprocs, 21);
    let mesh = &w.mesh;
    println!(
        "mesh: {} nodes, {} edges, {} {} cells",
        mesh.num_nodes(),
        mesh.num_edges(),
        mesh.num_cells(),
        match mesh.cell_kind {
            CellKind::Triangle => "triangle",
            CellKind::Tetrahedron => "tetrahedral",
        },
    );

    // The node field a simulation would produce (sequential reference of
    // the same edge sweep the FUN3D template runs through SDM).
    let (e1, e2) = mesh.indirection_arrays();
    let pressure = edge_sweep_reference(&e1, &e2, mesh.num_nodes(), 0);

    // Per-node partition assignment, straight from the MeTis-style vector.
    let owner: Vec<f64> = w.partitioning_vector.iter().map(|&r| r as f64).collect();

    // Per-cell owner: the partition of the cell's first node (a common
    // visualization of a mesh decomposition).
    let arity = mesh.cell_kind.arity();
    let cell_owner: Vec<f64> = mesh
        .cells
        .chunks_exact(arity)
        .map(|cell| w.partitioning_vector[cell[0] as usize] as f64)
        .collect();

    // Validate each rank's partition against the reference machinery so
    // the picture matches what SDM would actually distribute.
    for rank in 0..nprocs as u32 {
        let pi = Sdm::partition_index_reference(&w.partitioning_vector, &e1, &e2, rank);
        for &n in &pi.owned_nodes {
            assert_eq!(w.partitioning_vector[n as usize], rank);
        }
    }

    let pfs = Pfs::new(cfg);
    let fields = [
        ScalarField::new("pressure", &pressure),
        ScalarField::new("owner_rank", &owner),
    ];
    let done = write_vtk(
        &pfs,
        "fun3d_step0.vtk",
        "FUN3D edge-sweep result, partitioned mesh",
        mesh,
        &fields,
        &[ScalarField::new("cell_owner", &cell_owner)],
        0.0,
    )
    .unwrap();

    let len = pfs.file_len("fun3d_step0.vtk").unwrap();
    println!(
        "wrote fun3d_step0.vtk: {:.1} KB, {} point fields + 1 cell field, virtual time {:.4}s",
        len as f64 / 1e3,
        fields.len(),
        done
    );

    // Quick self-check: the rendered body parses back as VTK.
    let body = render_vtk("check", mesh, &fields, &[]).unwrap();
    assert!(body.starts_with("# vtk DataFile Version 2.0"));
    assert!(body.contains(&format!("POINTS {} double", mesh.num_nodes())));
    println!("datasets available to a viewer: {RESULT_DATASETS:?} + owner_rank");
    println!("OK");
}
