//! Compare the partitioners on a synthetic tetrahedral mesh: edge cut,
//! balance, and the ghost volume each implies for SDM's index
//! distribution.
//!
//! Run: `cargo run --example partitioner_demo`

use sdm::core::Sdm;
use sdm::mesh::gen::tet_box;
use sdm::mesh::CsrGraph;
use sdm::partition::{edge_cut, imbalance, partition, Method};

fn main() {
    let k = 8;
    let mesh = tet_box(14, 14, 14, 0.2, 11);
    let graph = CsrGraph::from_edges(mesh.num_nodes(), &mesh.edges);
    let (e1, e2) = mesh.indirection_arrays();
    println!(
        "mesh: {} nodes, {} edges; partitioning into {k} parts\n",
        mesh.num_nodes(),
        mesh.num_edges()
    );
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12}",
        "method", "edge cut", "balance", "ghost nodes", "ghost edges"
    );

    for method in [
        Method::Multilevel,
        Method::Rcb,
        Method::Block,
        Method::Random,
    ] {
        let pv = partition(&graph, Some(&mesh.coords), k, method, 3);
        let cut = edge_cut(&graph, &pv);
        let bal = imbalance(&pv, k);
        // Ghosts under SDM's rule: an edge lives on every rank owning an
        // endpoint; ghost totals drive the communication volume.
        let mut ghost_nodes = 0usize;
        let mut dup_edges = 0usize;
        for r in 0..k as u32 {
            let pi = Sdm::partition_index_reference(&pv, &e1, &e2, r);
            ghost_nodes += pi.ghost_nodes.len();
            dup_edges += pi.edge_ids.len();
        }
        dup_edges -= mesh.num_edges();
        println!(
            "{:<12} {:>10} {:>10.3} {:>14} {:>12}",
            format!("{method:?}"),
            cut,
            bal,
            ghost_nodes,
            dup_edges
        );
    }
    println!("\n(lower cut => fewer ghosts => less communication in SDM)");
    println!("OK");
}
