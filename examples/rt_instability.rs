//! The Rayleigh-Taylor template: write node + triangle datasets at each
//! time step through SDM, compare the three file organizations and the
//! original serialized-writer baseline.
//!
//! Run: `cargo run --example rt_instability`

use std::sync::Arc;

use sdm::apps::rt::{run_original, run_sdm};
use sdm::apps::{PhaseReport, RtWorkload};
use sdm::core::OrgLevel;
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 8;
    let cfg = MachineConfig::origin2000();
    let w = RtWorkload::new(30_000, nprocs, 7);
    println!(
        "RT mesh: {} nodes, {} triangles; {:.1} MB per step x {} steps",
        w.mesh.num_nodes(),
        w.mesh.num_cells(),
        w.step_bytes() as f64 / 1e6,
        w.timesteps
    );

    // Original: token-serialized writes.
    let pfs = Pfs::new(cfg.clone());
    let orig = PhaseReport::reduce_max(&World::run(nprocs, cfg.clone(), {
        let (pfs, w) = (Arc::clone(&pfs), w.clone());
        move |c| run_original(c, &pfs, &w).unwrap()
    }));
    println!(
        "\noriginal (serialized):  {:>8.1} MB/s  ({} files)",
        orig.bandwidth_mbs("write"),
        pfs.list().len()
    );

    // SDM under each level.
    for org in OrgLevel::all() {
        let pfs = Pfs::new(cfg.clone());
        let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));
        let rep = PhaseReport::reduce_max(&World::run(nprocs, cfg.clone(), {
            let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
            move |c| run_sdm(c, &pfs, &store, &w, org).unwrap()
        }));
        println!(
            "SDM {:<18} {:>8.1} MB/s  ({} files)",
            format!("({}):", org.label()),
            rep.bandwidth_mbs("write"),
            pfs.list().len()
        );
    }
    println!("OK");
}
