//! SDM as a netCDF implementation strategy — the paper's future work.
//!
//! The summary of the paper says: "We plan ... to investigate whether
//! SDM can effectively be used as a strategy for implementing libraries
//! such as HDF and netCDF." This example runs that experiment: a
//! netCDF-classic style program (define mode → dimensions → variables →
//! data mode → records) whose every record lands through SDM's
//! collective noncontiguous MPI-IO, then reopens the container from its
//! self-describing metadata alone.
//!
//! Run: `cargo run --example netcdf_style`

use std::sync::Arc;

use sdm::core::{SdmConfig, SdmType};
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sci::netcdf::NC_UNLIMITED;
use sdm::sci::{AttrValue, NcFile, SciFile};
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 4;
    let cells = 4096u64;
    let steps = 3i64;
    let cfg = MachineConfig::origin2000();
    let pfs = Pfs::new(cfg.clone());
    let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));

    // ---- Session 1: a simulation writes a record variable ----
    World::run(nprocs, cfg.clone(), {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |comm| {
            let mut nc =
                NcFile::create(comm, &pfs, &store, "climate", SdmConfig::default()).unwrap();
            // Define mode: one unlimited (record) dimension + one spatial.
            nc.def_dim(comm, "time", NC_UNLIMITED).unwrap();
            nc.def_dim(comm, "cell", cells).unwrap();
            nc.def_var(comm, "temperature", SdmType::Double, &["time", "cell"])
                .unwrap();
            nc.put_att(comm, Some("temperature"), "units", AttrValue::from("K"))
                .unwrap();
            nc.put_att(comm, None, "title", AttrValue::from("toy climate run"))
                .unwrap();
            nc.enddef(comm).unwrap();

            // Data mode: interleaved decomposition (deliberately
            // irregular, so each record write is a noncontiguous
            // collective underneath).
            let mine: Vec<u64> = (comm.rank() as u64..cells).step_by(comm.size()).collect();
            nc.set_decomposition(comm, "temperature", &mine).unwrap();
            for t in 0..steps {
                let rec: Vec<f64> = mine
                    .iter()
                    .map(|&g| 273.0 + g as f64 * 0.01 + t as f64)
                    .collect();
                nc.put_record(comm, "temperature", t, &rec).unwrap();
            }
            assert_eq!(nc.num_records("temperature"), steps);
            nc.close(comm).unwrap();
        }
    });
    println!("session 1: wrote {steps} records of {cells} cells on {nprocs} ranks");
    println!("files: {:?}", pfs.list());

    // ---- Session 2: a different "program" reopens the container ----
    let checks = World::run(nprocs, cfg, {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |comm| {
            // The container layer under NcFile is self-describing, so a
            // plain SciFile sees the variable as /temperature.
            let mut f = SciFile::open(comm, &pfs, &store, "climate", SdmConfig::default()).unwrap();
            let info = f.dataset_info("/temperature").unwrap().clone();
            assert_eq!(info.global_size, cells);
            let units = f.get_attr("/temperature", "units").unwrap();
            assert_eq!(units, Some(AttrValue::from("K")));

            let mine: Vec<u64> = (comm.rank() as u64..cells).step_by(comm.size()).collect();
            f.set_view(comm, "/temperature", &mine).unwrap();
            let mut back = vec![0.0f64; mine.len()];
            f.read(comm, "/temperature", steps - 1, &mut back).unwrap();
            let want: Vec<f64> = mine
                .iter()
                .map(|&g| 273.0 + g as f64 * 0.01 + (steps - 1) as f64)
                .collect();
            assert_eq!(back, want, "rank {} read-back", comm.rank());
            f.close(comm).unwrap();
            back.len()
        }
    });
    let total: usize = checks.iter().sum();
    assert_eq!(total as u64, cells);
    println!(
        "session 2: reopened from metadata and verified record {}",
        steps - 1
    );
    println!("OK");
}
