//! Quickstart: the smallest complete SDM program, in the typed session
//! style.
//!
//! Four simulated ranks write an irregularly partitioned dataset through
//! SDM and read it back. The flow is the paper's Figure 2 — initialize,
//! register a data group, install views, write a timestep, read it back,
//! finalize — but expressed through the typed session API:
//!
//! * `sdm.group(comm)` starts a **group builder**; `build()` registers
//!   every dataset in one collective and hands back typed
//!   `DatasetHandle<f64>`s, so writes and reads are checked against the
//!   dataset's element type at compile time and never look a name up
//!   again.
//! * `sdm.timestep(comm, t)` opens a **timestep scope**; all datasets
//!   written inside it land as one collective I/O burst with exactly one
//!   metadata round-trip for the whole step (the paper's `SDM_write`
//!   paid one per dataset).
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use sdm::core::schema::ExecutionRow;
use sdm::core::Sdm;
use sdm::metadb::stmt::Query;
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 4;
    let global_size = 1000u64;
    let cfg = MachineConfig::origin2000();
    let pfs = Pfs::new(cfg.clone());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);

    let reports = World::run(nprocs, cfg, {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |comm| {
            // SDM_initialize: connect the metadata database.
            let mut sdm = Sdm::initialize(comm, &pfs, &store, "quickstart").unwrap();

            // One group, two datasets sharing type and global size
            // (like the paper's p and q), registered in one collective.
            // The handles are typed: a `DatasetHandle<f64>` only writes
            // and reads `&[f64]`.
            let g = sdm
                .group(comm)
                .dataset::<f64>("p", global_size)
                .dataset::<f64>("q", global_size)
                .build()
                .unwrap();
            let hp = g.handle::<f64>("p").unwrap();
            let hq = g.handle::<f64>("q").unwrap();

            // Views: this rank owns every nprocs-th element — a
            // deliberately irregular (interleaved) map array.
            let mine: Vec<u64> = (comm.rank() as u64..global_size)
                .step_by(comm.size())
                .collect();
            sdm.set_view(comm, hp, &mine).unwrap();
            sdm.set_view(comm, hq, &mine).unwrap();

            // Compute something per element and checkpoint both
            // datasets in one timestep scope: one collective burst, one
            // metadata sync for the whole step.
            let p: Vec<f64> = mine.iter().map(|&g| g as f64 * 1.5).collect();
            let q: Vec<f64> = mine.iter().map(|&g| -(g as f64)).collect();
            let mut step = sdm.timestep(comm, 0);
            step.write(hp, &p).unwrap();
            step.write(hq, &q).unwrap();
            step.commit().unwrap();

            // Read back through the same view and verify.
            let mut back = vec![0.0f64; mine.len()];
            sdm.read_handle(comm, hp, 0, &mut back).unwrap();
            assert_eq!(back, p, "rank {}: read-back must match", comm.rank());

            let t = comm.now();
            sdm.finalize(comm).unwrap();
            (comm.rank(), mine.len(), t)
        }
    });

    for (rank, n, t) in reports {
        println!("rank {rank}: wrote+read {n} elements, virtual time {t:.4}s");
    }
    println!("files created: {:?}", pfs.list());
    println!(
        "metadata rows: {:?}",
        db.exec_stmt(&Query::<ExecutionRow>::all().compile(), &[])
            .unwrap()
            .rows
            .len()
    );
    println!("OK");
}
