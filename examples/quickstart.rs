//! Quickstart: the smallest complete SDM program.
//!
//! Four simulated ranks write an irregularly partitioned dataset through
//! SDM and read it back — the Figure 2 flow (`initialize`,
//! `set_attributes`, `data_view`, `write`, `read`, `finalize`).
//!
//! Run: `cargo run --example quickstart`

use std::sync::Arc;

use sdm::core::dataset::make_datalist;
use sdm::core::{Sdm, SdmType};
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 4;
    let global_size = 1000u64;
    let cfg = MachineConfig::origin2000();
    let pfs = Pfs::new(cfg.clone());
    let db = Arc::new(Database::new());
    let store = sdm::core::CachedStore::shared(&db);

    let reports = World::run(nprocs, cfg, {
        let (pfs, store) = (Arc::clone(&pfs), Arc::clone(&store));
        move |comm| {
            // SDM_initialize: connect the metadata database.
            let mut sdm = Sdm::initialize(comm, &pfs, &store, "quickstart").unwrap();

            // SDM_make_datalist + SDM_set_attributes: one group, two
            // datasets sharing type and global size (like p and q).
            let ds = make_datalist(&["p", "q"], SdmType::Double, global_size);
            let h = sdm.set_attributes(comm, ds).unwrap();

            // SDM_data_view: this rank owns every nprocs-th element —
            // a deliberately irregular (interleaved) map array.
            let mine: Vec<u64> = (comm.rank() as u64..global_size)
                .step_by(comm.size())
                .collect();
            sdm.data_view(comm, h, "p", &mine).unwrap();
            sdm.data_view(comm, h, "q", &mine).unwrap();

            // Compute something per element and checkpoint it.
            let p: Vec<f64> = mine.iter().map(|&g| g as f64 * 1.5).collect();
            let q: Vec<f64> = mine.iter().map(|&g| -(g as f64)).collect();
            sdm.write(comm, h, "p", 0, &p).unwrap();
            sdm.write(comm, h, "q", 0, &q).unwrap();

            // Read back through the same view and verify.
            let mut back = vec![0.0f64; mine.len()];
            sdm.read(comm, h, "p", 0, &mut back).unwrap();
            assert_eq!(back, p, "rank {}: read-back must match", comm.rank());

            let t = comm.now();
            sdm.finalize(comm).unwrap();
            (comm.rank(), mine.len(), t)
        }
    });

    for (rank, n, t) in reports {
        println!("rank {rank}: wrote+read {n} elements, virtual time {t:.4}s");
    }
    println!("files created: {:?}", pfs.list());
    println!(
        "metadata rows: {:?}",
        db.exec(
            "SELECT dataset, timestep, file_name FROM execution_table",
            &[]
        )
        .unwrap()
        .rows
        .len()
    );
    println!("OK");
}
