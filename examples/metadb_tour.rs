//! Tour of the metadata layer: the `MetadataStore` trait over the six
//! SDM tables, typed statements compiled once (what PR 4 replaced the
//! stringly SQL surface with), raw SQL at the embedded-engine level,
//! and snapshot persistence — what MySQL did for the paper's SDM.
//!
//! Run: `cargo run --example metadb_tour`

use std::sync::Arc;

use sdm::core::schema::{ExecutionCol, ExecutionRow};
use sdm::core::{MetadataStore, RunRecord, SqlStore};
use sdm::metadb::stmt::{param, Query, TypedColumn};
use sdm::metadb::{Database, Value};

fn main() {
    let db = Arc::new(Database::new());
    let store = SqlStore::new(Arc::clone(&db));

    // The six tables of Figure 4, plus secondary indexes on the hot
    // lookup columns.
    store.ensure_schema().unwrap();
    println!("tables created: run, access_pattern, execution, import, index, index_history");

    // A run writes two datasets over three checkpoints (Level 3: one
    // file, offsets tracked per write).
    let runid = store.allocate_runid("fun3d").unwrap();
    store
        .record_run(&RunRecord {
            runid,
            application: "fun3d".into(),
            dimension: 3,
            problem_size: 2_000_000,
            num_timesteps: 3,
            date: (2001, 2, 20),
            time: (14, 30),
        })
        .unwrap();
    for ds in ["p", "q"] {
        store
            .record_access_pattern(runid, ds, "DOUBLE", "ROW_MAJOR", "IRREGULAR", 2_000_000)
            .unwrap();
    }
    let mut offset = 0i64;
    for t in 0..3 {
        for ds in ["p", "q"] {
            store
                .record_execution(runid, ds, t, offset, "fun3d.g0.dat")
                .unwrap();
            offset += 2_000_000 * 8;
        }
    }

    // Ad-hoc queries are typed statements too: built fluently over the
    // schema's column enums, compiled once, and replayed with fresh
    // parameters — no SQL text is ever formatted or parsed.
    let last_writes = Query::<ExecutionRow>::filter(
        ExecutionCol::Runid
            .eq(param(0))
            .and(ExecutionCol::Timestep.ge(1)),
    )
    .select(&[
        ExecutionCol::Dataset,
        ExecutionCol::Timestep,
        ExecutionCol::FileOffset,
    ])
    .order_by_desc(ExecutionCol::FileOffset)
    .limit(3)
    .compile();
    let rs = store.run(&last_writes, &[Value::Int(runid)]).unwrap();
    println!("\nlast three writes (newest first):");
    for row in &rs.rows {
        println!("  dataset={} t={} offset={}", row[0], row[1], row[2]);
    }
    assert_eq!(rs.len(), 3);
    let stats = db.stats();
    println!(
        "engine: {} SQL texts seen, {} parses; scans: {} indexed / {} full",
        stats.sql_texts, stats.parse_misses, stats.index_scans, stats.full_scans
    );

    // History registry: key by (problem_size, nprocs).
    store
        .record_index_registry(18_000_000, 64, 3, "fun3d.hist.18M.64")
        .unwrap();
    match store.lookup_index_registry(18_000_000, 64).unwrap() {
        Some(f) => println!("\nhistory hit for (18M, 64): {f}"),
        None => unreachable!(),
    }
    assert!(store
        .lookup_index_registry(18_000_000, 32)
        .unwrap()
        .is_none());
    println!("history miss for (18M, 32): fresh distribution required");

    // Persistence: metadata must survive across runs.
    let dir = std::env::temp_dir().join("sdm_metadb_tour.json");
    db.save(&dir).unwrap();
    let db2 = Database::load(&dir).unwrap();
    let n = db2
        .exec("SELECT * FROM execution_table", &[])
        .unwrap()
        .len();
    println!("\nreloaded snapshot: {n} execution rows survive");
    assert_eq!(n, 6);
    std::fs::remove_file(&dir).ok();
    println!("OK");
}
