//! History files in isolation: register an index distribution, replay
//! it, watch it miss on a different process count, and survive file
//! corruption by falling back to the fresh path.
//!
//! Run: `cargo run --example history_replay`

use std::sync::Arc;

use sdm::core::{Sdm, SdmConfig};
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::partition::partition_block;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

/// A small synthetic edge list: a ring over `n` nodes plus chords.
fn edges(n: usize) -> (Vec<i32>, Vec<i32>) {
    let mut e1 = Vec::new();
    let mut e2 = Vec::new();
    for i in 0..n {
        let (a, b) = (i as i32, ((i + 1) % n) as i32);
        e1.push(a.min(b));
        e2.push(a.max(b));
        if i % 3 == 0 {
            let c = ((i + n / 2) % n) as i32;
            e1.push((i as i32).min(c));
            e2.push((i as i32).max(c));
        }
    }
    (e1, e2)
}

fn run(nprocs: usize, pfs: &Arc<Pfs>, db: &Arc<Database>, label: &str) -> bool {
    // Fresh store per run: each "job" re-attaches to the shared database.
    let store = sdm::core::CachedStore::shared(db);
    let n = 600usize;
    let (e1, e2) = edges(n);
    let pv = partition_block(n, nprocs);
    let total_edges = e1.len() as u64;
    let hits = World::run(nprocs, MachineConfig::origin2000(), {
        let (pfs, store, pv, e1, e2) = (
            Arc::clone(pfs),
            Arc::clone(&store),
            pv.clone(),
            e1.clone(),
            e2.clone(),
        );
        move |c| {
            let mut sdm =
                Sdm::initialize_with(c, &pfs, &store, "hist_demo", SdmConfig::default()).unwrap();
            // Each rank holds a contiguous chunk (as an import would give).
            let chunk = e1.len().div_ceil(c.size());
            let lo = (c.rank() * chunk).min(e1.len());
            let hi = ((c.rank() + 1) * chunk).min(e1.len());
            let (pi, hit) = sdm
                .partition_index(c, &pv, total_edges, (lo as u64, &e1[lo..hi], &e2[lo..hi]))
                .unwrap();
            if !hit {
                sdm.index_registry(c, &pi, total_edges).unwrap();
            }
            hit
        }
    });
    let hit = hits.iter().all(|&h| h);
    println!(
        "{label}: history {}",
        if hit { "HIT" } else { "MISS (registered now)" }
    );
    hit
}

fn main() {
    let cfg = MachineConfig::origin2000();
    let pfs = Pfs::new(cfg);
    let db = Arc::new(Database::new());

    assert!(!run(4, &pfs, &db, "run 1 @ 4 procs"), "first run must miss");
    assert!(run(4, &pfs, &db, "run 2 @ 4 procs"), "second run must hit");
    assert!(
        !run(2, &pfs, &db, "run 3 @ 2 procs"),
        "different proc count must miss"
    );
    assert!(
        run(2, &pfs, &db, "run 4 @ 2 procs"),
        "now both counts are pre-created"
    );
    assert!(
        run(4, &pfs, &db, "run 5 @ 4 procs"),
        "4-proc history still valid"
    );

    // Corrupt the 4-proc history file: the next run must detect it
    // (checksum), fall back to fresh distribution, and deregister.
    let name = "hist_demo.hist.800.4";
    let (f, _) = pfs.open(name, 0.0).unwrap();
    pfs.write_at(&f, 20, &[0xFFu8; 8], 0.0).unwrap();
    println!("(corrupted {name})");
    assert!(
        !run(4, &pfs, &db, "run 6 @ 4 procs after corruption"),
        "corruption must force fresh"
    );
    assert!(
        run(4, &pfs, &db, "run 7 @ 4 procs"),
        "re-registered after fallback"
    );
    println!("OK");
}
