//! The FUN3D pipeline end to end at example scale: stage a synthetic
//! tetrahedral mesh, import + ring-distribute the edges, import the data
//! arrays through the partitioned maps, run the edge-sweep kernel, and
//! checkpoint results — then run again with a history file and show the
//! saved time.
//!
//! Run: `cargo run --example fun3d_checkpoint`

use std::sync::Arc;

use sdm::apps::fun3d::{run_sdm, Fun3dOptions};
use sdm::apps::{Fun3dWorkload, PhaseReport};
use sdm::metadb::Database;
use sdm::mpi::World;
use sdm::pfs::Pfs;
use sdm::sim::MachineConfig;

fn main() {
    let nprocs = 8;
    let cfg = MachineConfig::origin2000();
    // Above the history crossover: with too little data the saved ring
    // distribution is cheaper than the history lookup's metadata round
    // trips (see EXPERIMENTS.md, Figure 5).
    let w = Fun3dWorkload::new(60_000, nprocs, 42);
    println!(
        "mesh: {} nodes, {} edges; import volume {:.1} MB",
        w.mesh.num_nodes(),
        w.mesh.num_edges(),
        w.import_bytes() as f64 / 1e6
    );

    let pfs = Pfs::new(cfg.clone());
    let store = sdm::core::CachedStore::shared(&Arc::new(Database::new()));
    w.stage(&pfs);

    // First run: fresh distribution, register a history file.
    let first = World::run(nprocs, cfg.clone(), {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let opts = Fun3dOptions {
                register_history: true,
                ..Default::default()
            };
            run_sdm(c, &pfs, &store, &w, &opts).unwrap().report
        }
    });
    let first = PhaseReport::reduce_max(&first);

    // Second run: replays the index distribution from the history file.
    pfs.reset_timing();
    let second = World::run(nprocs, cfg, {
        let (pfs, store, w) = (Arc::clone(&pfs), Arc::clone(&store), w.clone());
        move |c| {
            let opts = Fun3dOptions {
                use_history: true,
                ..Default::default()
            };
            let r = run_sdm(c, &pfs, &store, &w, &opts).unwrap();
            assert!(r.history_hit, "second run must hit the history file");
            r.report
        }
    });
    let second = PhaseReport::reduce_max(&second);

    println!(
        "\n{:<22} {:>12} {:>12}",
        "phase", "fresh (s)", "history (s)"
    );
    for phase in ["import", "index-distribution", "compute", "write", "read"] {
        println!(
            "{:<22} {:>12.4} {:>12.4}",
            phase,
            first.get(phase),
            second.get(phase)
        );
    }
    let f = first.get("import") + first.get("index-distribution");
    let s = second.get("import") + second.get("index-distribution");
    println!("\nimport+distribution speedup from history: {:.2}x", f / s);
    assert!(s < f);
    println!("OK");
}
